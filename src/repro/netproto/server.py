"""The database server: session handling, query execution, result transfer.

The server wraps an embedded :class:`repro.sqldb.Database` and speaks the
message protocol defined in :mod:`repro.netproto.messages`.  It can be driven
through two transports:

* :class:`InProcessTransport` — same process, but every message still goes
  through the full encode/decode path so byte counts are real (used by tests
  and benchmarks; this is the common path for the reproduction).
* :class:`SocketServer` — a real TCP server (one thread per connection) for
  the examples that want the paper's "remote database server" topology.
"""

from __future__ import annotations

import hmac
import itertools
import secrets
import selectors
import socket
import socketserver
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..errors import (
    AuthenticationError,
    ConnectionLostError,
    CorruptionError,
    PersistenceError,
    ProtocolError,
    QueryTimeoutError,
    ReproError,
    ServerBusyError,
    WireFormatError,
)
from ..obs import MetricsRegistry, TraceSpan, new_trace_id
from ..sqldb.context import QueryContext
from ..sqldb.database import Database, StreamedResult
from ..sqldb.result import QueryResult
from . import compression as compression_mod
from .auth import UserRegistry
from .messages import (
    DEFAULT_CHUNK_ROWS,
    ERR_SATURATED,
    ERR_SESSION_LIMIT,
    ERR_SHUTTING_DOWN,
    MSG_CANCEL,
    MSG_CANCELLED,
    MSG_CHALLENGE,
    MSG_CLOSE,
    MSG_CLOSED,
    MSG_DEALLOCATE,
    MSG_DEALLOCATED,
    MSG_ERROR,
    MSG_EXECUTE_PREPARED,
    MSG_HELLO,
    MSG_LOGIN,
    MSG_LOGIN_OK,
    MSG_PREPARE,
    MSG_PREPARED,
    MSG_QUERY,
    MSG_RESULT,
    MSG_RESULT_CHUNK,
    MSG_STATS,
    MSG_STATS_RESULT,
    PROTOCOL_VERSION,
    columnar_result_messages,
    encode_result,
    error_message_for,
    streamed_result_messages,
)
from .wire import (
    decode_frame,
    decode_message,
    encode_message,
    extract_frame,
    read_frame,
)


@dataclass
class Session:
    """Per-connection server state."""

    session_id: int
    username: str | None = None
    database: str | None = None
    authenticated: bool = False
    pending_challenge: bytes | None = None
    transfer_key: bytes | None = None
    #: Negotiated wire protocol version; 1 until the client's hello says more.
    protocol_version: int = 1
    #: Capability token for out-of-band cancellation (shared with the client
    #: in ``login_ok``; a ``cancel`` message must present it).
    cancel_key: str = ""
    queries_executed: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    closed: bool = False


class ServerStats:
    """Aggregate server statistics (used by the workflow benchmarks).

    Counters are incremented concurrently from handler threads, the query
    worker pool, and the async front end's event loop, so every write goes
    through the thread-safe :class:`~repro.obs.MetricsRegistry` backing via
    :meth:`inc` — plain ``stats.x += 1`` (a lost-update race) raises
    ``AttributeError``.  Reads keep the historical attribute surface:
    ``stats.queries_executed`` returns the current counter value.

    The per-statement query log is a *bounded* ring (``query_log_limit``
    most recent statements); entries pushed out of a full ring are counted
    in ``query_log_dropped`` rather than growing the list without limit.
    """

    #: Every named counter; writes outside :meth:`inc` are rejected.
    COUNTER_NAMES = (
        "sessions_opened",
        "sessions_closed",
        "queries_executed",
        "bytes_sent",
        "bytes_received",
        "errors",
        # resilience counters: admission rejections, cooperative aborts, and
        # the connection failure modes the chaos suite exercises
        "queries_rejected",
        "queries_cancelled",
        "queries_timed_out",
        "client_disconnects",
        "idle_disconnects",
        # clients dropped for not reading a streamed result for longer than
        # ``ServerLimits.send_timeout`` (async front end backpressure guard)
        "stalled_disconnects",
        "wire_errors",
        # queries that failed with a :class:`repro.errors.CorruptionError`
        # (quarantined rows touched, checksum mismatch mid-statement)
        "corruption_errors",
        # queries slower than the server's ``slow_query_ms`` threshold
        "slow_queries",
        # statements evicted from the bounded query log
        "query_log_dropped",
    )
    _COUNTER_SET = frozenset(COUNTER_NAMES)

    #: Default capacity of the bounded query log.
    QUERY_LOG_LIMIT = 1_000

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 query_log_limit: int = QUERY_LOG_LIMIT) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {name: self._registry.counter(name)
                          for name in self.COUNTER_NAMES}
        #: End-to-end request latency (execution + encode + handoff) seen by
        #: the server, complementing the engine-side ``db.query_us``.
        self._h_query = self._registry.histogram("query_us")
        self.query_log: deque[str] = deque(maxlen=max(1, int(query_log_limit)))
        self._log_lock = threading.Lock()

    def __getattr__(self, name: str) -> int:
        # only reached when normal attribute lookup fails: counters are not
        # instance attributes precisely so reads land here
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in self._COUNTER_SET:
            raise AttributeError(
                f"ServerStats.{name} is a concurrent counter; use "
                f"stats.inc({name!r}) instead of assignment")
        super().__setattr__(name, value)

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to the named counter."""
        self._counters[name].inc(amount)

    def observe_query(self, seconds: float) -> None:
        """Record one request's end-to-end latency."""
        self._h_query.observe(seconds)

    def log_query(self, sql: str) -> None:
        """Append to the bounded query log, counting evicted entries."""
        with self._log_lock:
            log = self.query_log
            if len(log) == log.maxlen:
                self._counters["query_log_dropped"].inc()
            log.append(sql)

    def counters(self) -> dict[str, int]:
        """Counters plus latency quantiles as a flat dict (``stats`` message)."""
        return self._registry.snapshot()


@dataclass
class ServerLimits:
    """Admission-control and connection-survival knobs.

    The defaults keep a small server responsive under misbehaving clients:
    at most ``max_concurrent_queries`` statements execute at once, up to
    ``max_queue_depth`` more wait ``max_queue_wait`` seconds for a slot, and
    anything beyond that is *rejected immediately* with a structured
    retryable error instead of queueing unboundedly.  ``statement_timeout``
    caps every statement's runtime server-side (a client-requested timeout
    can only tighten it).  ``idle_timeout`` reaps connections that go quiet
    between requests; ``send_timeout`` bounds how long a slow reader can
    block a handler thread mid-result.  ``None`` disables a knob.
    """

    max_concurrent_queries: int = 8
    max_queue_depth: int = 16
    max_queue_wait: float = 5.0
    max_sessions: int | None = None
    statement_timeout: float | None = None
    idle_timeout: float | None = 300.0
    send_timeout: float | None = 30.0


class AdmissionController:
    """Bounded concurrent-query slots with a bounded, time-limited queue."""

    def __init__(self, limits: ServerLimits) -> None:
        self.limits = limits
        self._condition = threading.Condition(threading.Lock())
        self.active = 0
        self.waiting = 0
        self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    def try_acquire(self) -> str | None:
        """Claim a query slot; returns ``None`` or a rejection error code.

        Waits up to ``max_queue_wait`` seconds when all slots are busy and
        the wait queue has room; saturation beyond the queue (or a server
        drain) rejects immediately so the client can back off and retry.
        """
        limits = self.limits
        deadline = time.monotonic() + max(0.0, limits.max_queue_wait)
        with self._condition:
            if self._draining:
                return ERR_SHUTTING_DOWN
            if self.active < limits.max_concurrent_queries:
                self.active += 1
                return None
            if self.waiting >= limits.max_queue_depth:
                return ERR_SATURATED
            self.waiting += 1
            try:
                while self.active >= limits.max_concurrent_queries:
                    if self._draining:
                        return ERR_SHUTTING_DOWN
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return ERR_SATURATED
                    self._condition.wait(remaining)
                self.active += 1
                return None
            finally:
                self.waiting -= 1

    def release(self) -> None:
        with self._condition:
            self.active = max(0, self.active - 1)
            self._condition.notify_all()

    def begin_drain(self) -> None:
        """Reject new queries from now on; wake every queued waiter."""
        with self._condition:
            self._draining = True
            self._condition.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no query is active; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self.active > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(remaining)
            return True


class DatabaseServer:
    """Protocol logic: turns request messages into response messages."""

    def __init__(self, database: Database | None = None,
                 registry: UserRegistry | None = None, *,
                 default_user: str = "monetdb", default_password: str = "monetdb",
                 result_chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 workers: int = 1, stream_results: bool = True,
                 limits: ServerLimits | None = None,
                 slow_query_ms: float | None = 500.0,
                 slow_query_log_size: int = 64) -> None:
        self.database = database or Database(workers=workers)
        self.registry = registry or UserRegistry()
        self.result_chunk_rows = max(1, int(result_chunk_rows))
        #: Stream pipeline morsels to v4 clients as they complete (the
        #: first ``result_chunk`` leaves before execution finishes).  Off
        #: forces the fully-materialised v2/v3 chunking for everyone.
        self.stream_results = bool(stream_results)
        if default_user and not self.registry.has_user(default_user):
            self.registry.add_user(default_user, default_password,
                                   database=self.database.name)
        self.stats = ServerStats()
        #: Queries slower than this (milliseconds, wall clock from request
        #: to last response frame) land in :attr:`slow_query_log` with their
        #: trace id and span breakdown.  ``None`` disables slow-query
        #: tracking *and* per-query trace spans (the sampling policy: spans
        #: are only recorded while a slow-query verdict needs them).
        self.slow_query_ms = slow_query_ms
        #: Bounded ring of the most recent slow queries (oldest drop off).
        self.slow_query_log: "deque[dict[str, Any]]" = deque(
            maxlen=max(1, int(slow_query_log_size)))
        self.limits = limits or ServerLimits()
        self.admission = AdmissionController(self.limits)
        #: Chaos-test hook: called with a named fault point (``"query_start"``,
        #: ``"chunk"``) before the corresponding step; a hook that raises a
        #: :class:`ReproError` injects that failure into the normal error path.
        self.fault_hook: Callable[[str], None] | None = None
        # surface the wire-layer fault counters through SHOW STATS / the
        # stats message next to the engine's and the store's, merged with
        # the plan/result cache counters and the live connection gauge
        self.database.register_stats_source("server", self._server_counters)
        self._next_session = 1
        self._lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._active_queries: dict[int, QueryContext] = {}

    # ------------------------------------------------------------------ #
    # session management
    # ------------------------------------------------------------------ #
    def open_session(self) -> Session:
        with self._lock:
            limit = self.limits.max_sessions
            if limit is not None and len(self._sessions) >= limit:
                raise ServerBusyError(
                    f"session limit of {limit} reached",
                    code=ERR_SESSION_LIMIT)
            session = Session(session_id=self._next_session,
                              cancel_key=secrets.token_hex(8))
            self._next_session += 1
            self._sessions[session.session_id] = session
            self.stats.inc("sessions_opened")
            return session

    def close_session(self, session: Session) -> None:
        """Release everything a connection holds; safe to call repeatedly.

        Transports call this on *every* exit path — clean close, client
        disconnect, wire garbage — so a dying connection can never leak its
        session slot or leave a query running against a peer that is gone.
        """
        with self._lock:
            if session.closed:
                return
            session.closed = True
            self._sessions.pop(session.session_id, None)
            context = self._active_queries.get(session.session_id)
            self.stats.inc("sessions_closed")
        if context is not None:
            context.cancel("client disconnected")
        self._finish_query(session)

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    def _server_counters(self) -> dict[str, int]:
        """The ``server.*`` section of SHOW STATS / the ``stats`` message."""
        counters = self.stats.counters()
        counters["open_connections"] = self.active_sessions
        counters.update(self.database.cache_counters())
        return counters

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def begin_shutdown(self) -> None:
        """Stop admitting queries; in-flight statements keep running."""
        self.admission.begin_drain()

    def drain(self, timeout: float | None = 5.0) -> bool:
        """Wait for in-flight queries to finish; cancel stragglers.

        Returns ``True`` when the server went idle within ``timeout``; on
        timeout every remaining query is cooperatively cancelled and we wait
        a short grace period for the cancellations to take effect.
        """
        self.begin_shutdown()
        if self.admission.wait_idle(timeout):
            return True
        with self._lock:
            stragglers = list(self._active_queries.values())
        for context in stragglers:
            context.cancel("server shutting down")
        return self.admission.wait_idle(1.0)

    # ------------------------------------------------------------------ #
    # query slot lifecycle
    # ------------------------------------------------------------------ #
    def _register_query(self, session: Session, context: QueryContext) -> None:
        with self._lock:
            self._active_queries[session.session_id] = context

    def _finish_query(self, session: Session) -> None:
        """Drop the session's active query and free its slot (idempotent)."""
        with self._lock:
            context = self._active_queries.pop(session.session_id, None)
        if context is not None:
            self.admission.release()

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def handle_message(self, session: Session, message: dict[str, Any]) -> dict[str, Any]:
        """Process one request and produce a single response message.

        Compatibility wrapper over :meth:`handle_message_stream` for request
        types that always answer with exactly one message (everything except
        a columnar query result, which streams header + chunks).
        """
        responses = list(self.handle_message_stream(session, message))
        if len(responses) != 1:
            raise ProtocolError(
                "handle_message cannot carry a chunked response; use "
                "handle_message_stream")
        return responses[0]

    def handle_message_stream(self, session: Session,
                              message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Process one request message; yields one or more response messages.

        Chunked query results yield the ``result`` header followed by its
        ``result_chunk`` messages; everything else yields a single message.
        All fallible work happens before the first message is yielded, so an
        error is always reported as a well-formed ``error`` response.
        """
        try:
            message_type = message.get("type")
            if message_type == MSG_HELLO:
                responses: Iterable[dict[str, Any]] = (
                    self._handle_hello(session, message),)
            elif message_type == MSG_LOGIN:
                responses = (self._handle_login(session, message),)
            elif message_type in (MSG_QUERY, MSG_EXECUTE_PREPARED):
                responses = self._handle_query(session, message)
            elif message_type == MSG_PREPARE:
                responses = (self._handle_prepare(session, message),)
            elif message_type == MSG_DEALLOCATE:
                responses = (self._handle_deallocate(session, message),)
            elif message_type == MSG_CANCEL:
                # deliberately allowed pre-auth: a cancel arrives on a fresh
                # connection (the original one is busy streaming the query)
                # and is authorised by the cancel_key capability instead
                responses = (self._handle_cancel(message),)
            elif message_type == MSG_STATS:
                responses = (self._handle_stats(session),)
            elif message_type == MSG_CLOSE:
                responses = ({"type": MSG_CLOSED},)
            else:
                raise ProtocolError(f"unknown message type {message_type!r}")
        except ReproError as exc:
            responses = (self._error_response(exc),)
        yield from responses

    def _error_response(self, exc: ReproError) -> dict[str, Any]:
        """Build the structured error frame for ``exc``, updating stats."""
        self.stats.inc("errors")
        if isinstance(exc, QueryTimeoutError):
            self.stats.inc("queries_timed_out")
        if isinstance(exc, CorruptionError):
            self.stats.inc("corruption_errors")
        return error_message_for(exc)

    def _handle_stats(self, session: Session) -> dict[str, Any]:
        """``stats`` request: the flat counter snapshot (auth required)."""
        if not session.authenticated:
            raise AuthenticationError("not authenticated")
        return {"type": MSG_STATS_RESULT,
                "stats": self.database.stats_snapshot(),
                # the slow-query ring rides next to the flat counters: its
                # entries are structured (spans, SQL text), so they cannot
                # live inside the BIGINT-valued stats table itself
                "slow_queries": list(self.slow_query_log)}

    def _handle_hello(self, session: Session, message: dict[str, Any]) -> dict[str, Any]:
        username = str(message.get("username", ""))
        session.username = username
        session.database = str(message.get("database", self.database.name))
        # version-1 clients do not send a version: keep serving them the
        # row-oriented dict payload
        try:
            client_version = int(message.get("protocol_version", 1))
        except (TypeError, ValueError):
            raise ProtocolError("protocol_version must be an integer") from None
        session.protocol_version = max(1, min(client_version, PROTOCOL_VERSION))
        salt, challenge = self.registry.challenge_for(username)
        session.pending_challenge = challenge
        return {
            "type": MSG_CHALLENGE,
            "salt": salt,
            "challenge": challenge,
            "server": "repro-monetdb",
            "protocol_version": session.protocol_version,
        }

    def _handle_login(self, session: Session, message: dict[str, Any]) -> dict[str, Any]:
        if session.pending_challenge is None or session.username is None:
            raise ProtocolError("login before hello")
        response = message.get("response")
        if not isinstance(response, (bytes, bytearray)):
            raise ProtocolError("login response must be bytes")
        account = self.registry.verify(
            session.username, session.pending_challenge, bytes(response),
            database=session.database,
        )
        session.authenticated = True
        session.pending_challenge = None
        session.transfer_key = account.digest
        return {"type": MSG_LOGIN_OK, "database": account.database,
                "username": account.username,
                # cancellation capability: a cancel message on any connection
                # presenting this pair may abort this session's active query
                "session_id": session.session_id,
                "cancel_key": session.cancel_key}

    def _handle_cancel(self, message: dict[str, Any]) -> dict[str, Any]:
        """Out-of-band cancellation (modelled on PostgreSQL's cancel request).

        The requesting connection proves it is entitled to cancel by
        presenting the target session's id and secret ``cancel_key`` from
        ``login_ok``.  A bad key is indistinguishable from "no such query"
        so the reply leaks nothing about live sessions.
        """
        try:
            target_id = int(message.get("session_id", -1))
        except (TypeError, ValueError):
            raise ProtocolError("session_id must be an integer") from None
        key = str(message.get("cancel_key", ""))
        with self._lock:
            target = self._sessions.get(target_id)
            authorised = (target is not None and
                          hmac.compare_digest(target.cancel_key, key))
            context = (self._active_queries.get(target_id)
                       if authorised else None)
        found = context is not None
        if found:
            context.cancel("cancelled by client request")
            self.stats.inc("queries_cancelled")
        return {"type": MSG_CANCELLED, "found": found}

    def _handle_prepare(self, session: Session,
                        message: dict[str, Any]) -> dict[str, Any]:
        """``prepare`` request: register a named template server-side."""
        if not session.authenticated:
            raise AuthenticationError("not authenticated")
        name = str(message.get("name", ""))
        sql = str(message.get("sql", ""))
        if not name.strip():
            raise ProtocolError("prepare requires a statement name")
        if not sql.strip():
            raise ProtocolError("prepare requires statement text")
        prepared = self.database.prepare(name, sql)
        return {"type": MSG_PREPARED, "name": prepared.name,
                "parameter_count": prepared.parameter_count}

    def _handle_deallocate(self, session: Session,
                           message: dict[str, Any]) -> dict[str, Any]:
        """``deallocate`` request: drop one template (or all with no name)."""
        if not session.authenticated:
            raise AuthenticationError("not authenticated")
        name = message.get("name")
        found = self.database.deallocate(
            str(name) if name is not None else None)
        return {"type": MSG_DEALLOCATED,
                "name": name, "found": found}

    def _handle_query(self, session: Session,
                      message: dict[str, Any]) -> Iterable[dict[str, Any]]:
        if not session.authenticated:
            raise AuthenticationError("not authenticated")
        prepared_name: str | None = None
        prepared_args: list[Any] = []
        if message.get("type") == MSG_EXECUTE_PREPARED:
            prepared_name = str(message.get("name", ""))
            if not prepared_name.strip():
                raise ProtocolError("execute_prepared requires a name")
            raw_args = message.get("args")
            if raw_args is None:
                raw_args = []
            if not isinstance(raw_args, list):
                raise ProtocolError("execute_prepared args must be a list")
            prepared_args = raw_args
            sql = f"EXECUTE {prepared_name}"
        else:
            sql = str(message.get("sql", ""))
            if not sql.strip():
                raise ProtocolError("empty query")
        options = message.get("options") or {}
        compression = options.get("compression") or compression_mod.CODEC_NONE
        compression_mod.get_codec(compression)  # validate before executing
        encrypt = bool(options.get("encrypt", False))
        try:
            chunk_rows = int(options.get("chunk_rows") or self.result_chunk_rows)
        except (TypeError, ValueError):
            raise ProtocolError("chunk_rows must be an integer") from None

        encryption_key = None
        if encrypt:
            if session.transfer_key is None:
                raise ProtocolError("no transfer key available for encryption")
            encryption_key = session.transfer_key.hex()

        # observability: while slow-query tracking is enabled every query
        # carries a trace id and a span tree (the engine fills in its
        # parse/plan/execute spans); the spans are only *surfaced* for
        # queries that turn out slow — that is the sampling policy
        started = time.perf_counter()
        trace: TraceSpan | None = None
        trace_id: str | None = None
        if self.slow_query_ms is not None:
            trace_id = new_trace_id()
            trace = TraceSpan("query", start=started)
        context = QueryContext(timeout=self._effective_timeout(options),
                               trace_id=trace_id)
        context.trace = trace
        rejection = self.admission.try_acquire()
        if rejection is not None:
            self.stats.inc("queries_rejected")
            reason = ("server is shutting down"
                      if rejection == ERR_SHUTTING_DOWN
                      else "server is saturated; retry with backoff")
            raise ServerBusyError(reason, code=rejection)
        self._register_query(session, context)
        try:
            self._fault("query_start")
            if prepared_name is not None:
                # prepared executions are repeated point/small queries: the
                # materialised path (result-cache friendly) serves every
                # protocol version uniformly
                result = self.database.execute_prepared(
                    prepared_name, prepared_args, context=context)
                session.queries_executed += 1
                self.stats.inc("queries_executed")
                self.stats.log_query(sql)
            elif session.protocol_version >= 4 and self.stream_results:
                outcome = self.database.execute_stream(
                    sql, max_rows=chunk_rows, context=context)
                session.queries_executed += 1
                self.stats.inc("queries_executed")
                self.stats.log_query(sql)
                if isinstance(outcome, StreamedResult):
                    stream = streamed_result_messages(
                        outcome.pieces(),
                        statement_type=outcome.statement_type,
                        affected_rows=outcome.affected_rows,
                        compression=compression, encryption_key=encryption_key,
                        protocol_version=session.protocol_version,
                        trace_id=trace_id)
                    # pull the header eagerly: plan preparation already ran
                    # and the first morsel is computed here, so early errors
                    # still become well-formed error responses
                    header = next(stream)
                    # the query slot stays held until the stream is drained
                    # (execution continues morsel-by-morsel underneath it)
                    return self._observe_query(
                        sql, trace, trace_id, started,
                        self._release_after(session, itertools.chain(
                            (header,), self._guarded_chunks(stream))))
                result: QueryResult = outcome
            else:
                result = self.database.execute(sql, context=context)
                session.queries_executed += 1
                self.stats.inc("queries_executed")
                self.stats.log_query(sql)
        except BaseException:
            self._finish_query(session)
            raise
        # materialised result: execution is done, so free the slot before
        # the (possibly slow) encode-and-send phase
        self._finish_query(session)

        if session.protocol_version >= 2:
            stream = columnar_result_messages(
                result, chunk_rows=chunk_rows, compression=compression,
                encryption_key=encryption_key,
                protocol_version=session.protocol_version,
                trace_id=trace_id)
            # pull the header eagerly: buffer export (the fallible part of
            # encoding) happens here, so errors still become error responses
            header = next(stream)
            return self._observe_query(
                sql, trace, trace_id, started,
                itertools.chain((header,), stream),
                known_rows=result.row_count)

        encoded = encode_result(result, compression=compression,
                                encryption_key=encryption_key)
        response = {
            "type": MSG_RESULT,
            "payload": encoded.blob,
            "compressed": encoded.compressed,
            "encrypted": encoded.encrypted,
            "stats": encoded.stats.as_dict(),
        }
        if trace_id is not None:
            response["trace_id"] = trace_id
        return self._observe_query(sql, trace, trace_id, started,
                                   iter((response,)),
                                   known_rows=result.row_count)

    def _effective_timeout(self, options: dict[str, Any]) -> float | None:
        """Combine the client-requested timeout with the server-side cap."""
        raw = options.get("timeout")
        if raw is None:
            return self.limits.statement_timeout
        try:
            requested = float(raw)
        except (TypeError, ValueError):
            raise ProtocolError("timeout must be a number") from None
        if requested < 0:
            raise ProtocolError("timeout must be non-negative")
        cap = self.limits.statement_timeout
        return requested if cap is None else min(requested, cap)

    def _fault(self, point: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(point)

    def _observe_query(self, sql: str, trace: "TraceSpan | None",
                       trace_id: str | None, started: float,
                       stream: Iterator[dict[str, Any]], *,
                       known_rows: int | None = None
                       ) -> Iterator[dict[str, Any]]:
        """Relay response messages, then finish the query's observation.

        Accumulates rows and payload bytes from the relayed frames — the
        encode-and-send phase included — records the end-to-end latency in
        the ``server.query_us`` histogram, and appends a slow-query entry
        (trace id, SQL, span breakdown, transfer volume) when the query
        exceeded ``slow_query_ms``.  The accounting runs in a ``finally``,
        so streams abandoned by a vanishing client are still recorded.
        """
        rows = 0 if known_rows is None else max(0, int(known_rows))
        payload_bytes = 0
        respond_started = time.perf_counter()
        finalized = False

        def finalize() -> None:
            nonlocal finalized
            if finalized:
                return
            finalized = True
            ended = time.perf_counter()
            if trace is not None:
                trace.add("respond", respond_started, ended)
                trace.finish()
            elapsed = ended - started
            self.stats.observe_query(elapsed)
            threshold = self.slow_query_ms
            if threshold is not None and elapsed * 1000.0 >= threshold:
                self.stats.inc("slow_queries")
                self.slow_query_log.append({
                    "trace_id": trace_id or "",
                    "sql": sql,
                    "duration_ms": round(elapsed * 1000.0, 3),
                    "rows": rows,
                    "bytes": payload_bytes,
                    "spans": trace.breakdown() if trace is not None else [],
                })

        # a lazy transport may never pull past the terminal frame, so the
        # observation is finalized just before yielding it (mirroring the
        # early slot release in _release_after); the ``finally`` only covers
        # streams abandoned mid-flight by a vanishing client
        remaining: int | None = None
        try:
            for message in stream:
                message_type = message.get("type")
                if message_type == MSG_RESULT:
                    chunk_count = message.get("chunk_count")
                    if chunk_count is None:
                        remaining = 0          # legacy v1 single-blob result
                    elif int(chunk_count) >= 0:
                        remaining = int(chunk_count)  # materialised columnar
                    # streamed headers (-1): terminal chunk carries ``last``
                elif message_type == MSG_RESULT_CHUNK:
                    if known_rows is None:
                        rows += max(0, int(message.get("row_count") or 0))
                    if remaining is not None:
                        remaining -= 1
                payload = message.get("payload")
                if payload is not None:
                    payload_bytes += len(payload)
                if (message.get("last") or remaining == 0
                        or message_type == MSG_ERROR):
                    finalize()
                yield message
        finally:
            finalize()

    def _release_after(self, session: Session,
                       stream: Iterator[dict[str, Any]]
                       ) -> Iterator[dict[str, Any]]:
        """Relay ``stream`` and free the query slot when it is exhausted,
        abandoned (client disconnect closes the generator), or fails.

        The slot is released *before* yielding the terminal message (the
        ``last``-flagged chunk or an error frame): execution is complete at
        that point, and a lazy transport may never pull the generator again
        once it has the final frame.  The ``finally`` covers abandonment.
        """
        try:
            for message in stream:
                if message.get("last") or message.get("type") == MSG_ERROR:
                    self._finish_query(session)
                yield message
        finally:
            self._finish_query(session)

    def _guarded_chunks(self, stream: Iterator[dict[str, Any]]
                        ) -> Iterator[dict[str, Any]]:
        """Relay streamed chunk messages, converting a mid-stream execution
        failure into an ``error`` message (the header is already out, so the
        client sees the error while consuming chunks)."""
        try:
            for chunk in stream:
                self._fault("chunk")
                yield chunk
        except ReproError as exc:
            yield self._error_response(exc)

    # ------------------------------------------------------------------ #
    # framed entry point shared by the transports
    # ------------------------------------------------------------------ #
    def handle_frame(self, session: Session, frame_payload: bytes) -> bytes:
        """One request frame in, all response frames out (concatenated)."""
        return b"".join(self.handle_frame_stream(session, frame_payload))

    def handle_frame_stream(self, session: Session,
                            frame_payload: bytes,
                            message: dict[str, Any] | None = None
                            ) -> Iterator[bytes]:
        """One request frame in; yields each encoded response frame lazily.

        This is the streaming entry point: a chunked result is encoded one
        chunk per iteration, so transports can flush frame *i* before frame
        *i + 1* exists.  ``message`` may carry the already-decoded payload
        (the async front end peeks at the type to route frames, so it avoids
        decoding twice).
        """
        session.bytes_received += len(frame_payload)
        self.stats.inc("bytes_received", len(frame_payload))
        try:
            request = message if message is not None \
                else decode_message(frame_payload)
        except WireFormatError as exc:
            # a well-framed but undecodable payload: framing is still in
            # sync, so answer with a structured error and keep the
            # connection usable
            self.stats.inc("wire_errors")
            encoded = encode_message(self._error_response(exc))
            session.bytes_sent += len(encoded)
            self.stats.inc("bytes_sent", len(encoded))
            yield encoded
            return
        for response in self.handle_message_stream(session, request):
            encoded = encode_message(response)
            session.bytes_sent += len(encoded)
            self.stats.inc("bytes_sent", len(encoded))
            yield encoded


class InProcessTransport:
    """A client-side transport that talks to a server object in-process.

    All messages are round-tripped through the wire codec so the byte counts
    and failure modes match the socket transport.
    """

    def __init__(self, server: DatabaseServer) -> None:
        self.server = server
        self.session = server.open_session()
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self._pending: Iterator[bytes] = iter(())

    def send(self, message: dict[str, Any]) -> None:
        """Submit one request; response frames become available to receive."""
        if self.closed:
            raise ProtocolError("transport is closed")
        request = encode_message(message)
        self.bytes_sent += len(request)
        # strip the frame header the same way the socket path would
        payload, _ = decode_frame(request)
        # the stream is kept lazy: each receive() encodes one more frame,
        # mirroring how the socket transport overlaps encode and consume
        self._pending = self.server.handle_frame_stream(self.session, payload)

    def receive(self) -> dict[str, Any]:
        """Read the next response message of the in-flight request."""
        if self.closed:
            raise ProtocolError("transport is closed")
        try:
            frame = next(self._pending)
        except StopIteration:
            raise ProtocolError("no pending response message") from None
        self.bytes_received += len(frame)
        response_payload, _ = decode_frame(frame)
        return decode_message(response_payload)

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        self.send(message)
        return self.receive()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.server.close_session(self.session)


class _SocketHandler(socketserver.BaseRequestHandler):
    """One thread per client connection.

    Every exit path — clean close, idle timeout, client vanishing
    mid-``result_chunk`` stream, garbage bytes on the wire — releases the
    session and is counted in :class:`ServerStats`; none of them is allowed
    to escape as a traceback into the ``socketserver`` machinery.
    """

    def handle(self) -> None:  # pragma: no cover - exercised via integration tests
        server: "SocketServer" = self.server  # type: ignore[assignment]
        database_server = server.database_server
        limits = database_server.limits
        stats = database_server.stats
        stream = self.request.makefile("rwb")
        try:
            session = database_server.open_session()
        except ServerBusyError as exc:
            self._best_effort_error(stream, database_server, exc)
            stream.close()
            return
        try:
            while True:
                try:
                    self.request.settimeout(limits.idle_timeout)
                    payload = read_frame(stream)
                except ConnectionLostError:
                    # EOF without a close message: the client hung up (a
                    # polite close exits on MSG_CLOSE before reading EOF)
                    stats.inc("client_disconnects")
                    return
                except (socket.timeout, TimeoutError):
                    stats.inc("idle_disconnects")
                    return
                except WireFormatError as exc:
                    # frame-level garbage: the byte stream is desynchronised,
                    # so tell the client why (best effort) and hang up
                    stats.inc("wire_errors")
                    self._best_effort_error(stream, database_server, exc)
                    return
                except OSError:
                    stats.inc("client_disconnects")
                    return
                try:
                    self.request.settimeout(limits.send_timeout)
                    # write each response frame as it is encoded so the
                    # client can consume chunk i while chunk i+1 is built
                    for response_frame in database_server.handle_frame_stream(
                            session, payload):
                        stream.write(response_frame)
                        stream.flush()
                except (BrokenPipeError, ConnectionResetError, socket.timeout,
                        TimeoutError, OSError):
                    # the client went away (or stopped reading) while we were
                    # streaming result chunks; drop the connection quietly —
                    # closing the response generator frees the query slot
                    stats.inc("client_disconnects")
                    return
                try:
                    message = decode_message(payload)
                except WireFormatError:
                    continue  # already answered with a structured error
                if message.get("type") == MSG_CLOSE:
                    return
        finally:
            database_server.close_session(session)
            try:
                stream.close()
            except OSError:
                pass

    @staticmethod
    def _best_effort_error(stream: Any, database_server: DatabaseServer,
                           exc: ReproError) -> None:
        try:
            stream.write(encode_message(database_server._error_response(exc)))
            stream.flush()
        except OSError:
            pass


class SocketServer(socketserver.ThreadingTCPServer):
    """A TCP server hosting a :class:`DatabaseServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, database_server: DatabaseServer,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _SocketHandler)
        self.database_server = database_server
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> tuple[str, int]:
        """Start serving in a daemon thread; returns (host, port)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self.address

    def stop(self, drain_timeout: float | None = 5.0) -> None:
        """Graceful shutdown: stop admitting queries, drain in-flight work
        (cancelling stragglers after ``drain_timeout``), then close."""
        self.database_server.drain(drain_timeout)
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


class _AsyncConnection:
    """Per-connection state tracked by :class:`AsyncSocketServer`'s loop."""

    __slots__ = ("sock", "session", "recv_buffer", "send_lock", "send_chunks",
                 "send_bytes", "drained", "want_write", "busy", "closing",
                 "dead", "pending", "last_activity")

    def __init__(self, sock: socket.socket, session: Session) -> None:
        self.sock = sock
        self.session = session
        self.recv_buffer = bytearray()
        #: Outgoing frames; appended by worker threads (under ``send_lock``),
        #: drained by the event loop when the socket is writable.
        self.send_lock = threading.Lock()
        self.send_chunks: "deque[memoryview]" = deque()
        self.send_bytes = 0
        #: Set while the buffer is below the low-water mark; a worker
        #: streaming chunks waits on this when the reader falls behind.
        self.drained = threading.Event()
        self.drained.set()
        self.want_write = False
        #: A query worker is processing a frame for this connection (frames
        #: are handled strictly in order; more queue in ``pending``).
        self.busy = False
        self.closing = False     # flush remaining output, then close
        self.dead = False        # torn down; reject all further work
        self.pending: "deque[tuple[bytes, dict[str, Any] | None]]" = deque()
        self.last_activity = time.monotonic()


class AsyncSocketServer:
    """A single-threaded selector event loop multiplexing many connections.

    The thread-per-connection :class:`SocketServer` burns a thread (and its
    stack) per client even when the client is idle; this front end holds
    thousands of mostly-idle connections on one event loop thread.  The loop
    only ever does non-blocking work: reading bytes into per-connection
    buffers, splitting frames (:func:`repro.netproto.wire.extract_frame`),
    answering cheap control messages inline, and handing query frames to a
    bounded worker pool.  Workers stream response frames back through
    per-connection send buffers; the loop flushes them as sockets become
    writable.

    Backpressure: when a connection's send buffer passes the high-water mark
    its worker blocks on the buffer draining — pausing only that query's
    morsel flow, never the loop.  A reader stalled longer than
    ``limits.send_timeout`` is disconnected and its query cancelled, so a
    client that stops reading mid-stream cannot pin an execution slot (the
    eager-release/backpressure fix).

    The constructor/``start_background``/``stop``/``address`` surface
    matches :class:`SocketServer`, so the two front ends are drop-in
    interchangeable for tests and the CLI.
    """

    #: Send-buffer watermarks: a worker pauses above ``HIGH_WATER`` bytes
    #: and resumes once the loop drains the buffer below ``LOW_WATER``.
    HIGH_WATER = 1 << 20
    LOW_WATER = 1 << 18
    #: Per-connection cap on frames queued behind an executing query; a
    #: client that pipelines past it is dropped (protocol abuse).
    MAX_PIPELINED_FRAMES = 128

    def __init__(self, database_server: DatabaseServer,
                 host: str = "127.0.0.1", port: int = 0, *,
                 poll_interval: float = 0.25) -> None:
        self.database_server = database_server
        self.poll_interval = poll_interval
        limits = database_server.limits
        self._listener = socket.create_server((host, port), backlog=1024,
                                              reuse_port=False)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                ("accept", None))
        # wake pipe: workers nudge the loop to apply queued callbacks
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                ("wake", None))
        self._calls: "deque[Callable[[], None]]" = deque()
        slots = limits.max_concurrent_queries + limits.max_queue_depth
        self._max_inflight = slots
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=slots + 4,
                                        thread_name_prefix="query-worker")
        self._connections: set[_AsyncConnection] = set()
        self._running = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # lifecycle (mirrors SocketServer)
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        name = self._listener.getsockname()
        return name[0], name[1]

    def start_background(self) -> tuple[str, int]:
        """Start the event loop in a daemon thread; returns (host, port)."""
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name="async-server-loop")
        self._thread.start()
        return self.address

    def stop(self, drain_timeout: float | None = 5.0) -> None:
        """Graceful shutdown: drain in-flight queries, then tear down."""
        self.database_server.drain(drain_timeout)
        self._running = False
        self._notify()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._pool.shutdown(wait=True)
        try:
            self._listener.close()
        except OSError:
            pass
        for sock in (self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass

    # used by SocketServer-compatible call sites
    def serve_forever(self) -> None:  # pragma: no cover - CLI foreground mode
        self._running = True
        self._serve()

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def _serve(self) -> None:
        last_reap = time.monotonic()
        while self._running:
            events = self._selector.select(timeout=self.poll_interval)
            for key, mask in events:
                kind, conn = key.data
                if kind == "accept":
                    self._accept()
                elif kind == "wake":
                    self._drain_wake()
                else:
                    if mask & selectors.EVENT_READ:
                        self._on_readable(conn)
                    if mask & selectors.EVENT_WRITE and not conn.dead:
                        self._on_writable(conn)
            self._run_callbacks()
            now = time.monotonic()
            if now - last_reap >= self.poll_interval:
                self._reap_idle(now)
                last_reap = now
        # loop exit: tear down every connection (stop() already drained)
        for conn in list(self._connections):
            self._drop(conn, None)

    def _notify(self) -> None:
        try:
            self._wake_send.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # wake byte already pending (or shutting down)

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _call_soon(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` on the loop thread (thread-safe)."""
        self._calls.append(callback)
        self._notify()

    def _run_callbacks(self) -> None:
        while True:
            try:
                callback = self._calls.popleft()
            except IndexError:
                return
            callback()

    def _reap_idle(self, now: float) -> None:
        timeout = self.database_server.limits.idle_timeout
        if timeout is None:
            return
        stats = self.database_server.stats
        for conn in list(self._connections):
            if conn.busy:
                continue
            # unflushed output does not keep a connection alive: a client
            # that neither reads nor writes for idle_timeout is gone
            if now - conn.last_activity > timeout:
                stats.inc("idle_disconnects")
                self._drop(conn, None)

    # ------------------------------------------------------------------ #
    # accept / read / write
    # ------------------------------------------------------------------ #
    def _accept(self) -> None:
        server = self.database_server
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            try:
                session = server.open_session()
            except ServerBusyError as exc:
                # best effort: the frame is tiny, one non-blocking send
                try:
                    sock.send(encode_message(server._error_response(exc)))
                except OSError:
                    pass
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _AsyncConnection(sock, session)
            self._connections.add(conn)
            self._selector.register(sock, selectors.EVENT_READ,
                                    ("conn", conn))

    def _on_readable(self, conn: _AsyncConnection) -> None:
        stats = self.database_server.stats
        try:
            data = conn.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            stats.inc("client_disconnects")
            self._drop(conn, None)
            return
        if not data:
            if not conn.closing:
                stats.inc("client_disconnects")
            self._drop(conn, None)
            return
        conn.last_activity = time.monotonic()
        conn.recv_buffer += data
        self._pump_frames(conn)

    def _pump_frames(self, conn: _AsyncConnection) -> None:
        """Split buffered bytes into frames and route each one."""
        server = self.database_server
        while not conn.dead:
            try:
                payload = extract_frame(conn.recv_buffer)
            except WireFormatError as exc:
                # frame-level garbage: the stream is desynchronised — tell
                # the client why (best effort) and hang up, like the
                # threaded front end
                server.stats.inc("wire_errors")
                conn.recv_buffer.clear()
                conn.closing = True  # hang up once the error frame flushes
                self._enqueue_frames(
                    conn, (encode_message(server._error_response(exc)),))
                return
            if payload is None:
                return
            try:
                message: dict[str, Any] | None = decode_message(payload)
            except WireFormatError:
                message = None  # handle_frame_stream answers it structurally
            if conn.busy:
                if len(conn.pending) >= self.MAX_PIPELINED_FRAMES:
                    server.stats.inc("wire_errors")
                    self._drop(conn, None)
                    return
                conn.pending.append((payload, message))
                continue
            self._dispatch_frame(conn, payload, message)

    def _dispatch_frame(self, conn: _AsyncConnection, payload: bytes,
                        message: dict[str, Any] | None) -> None:
        """Route one frame: queries go to the worker pool, everything else
        (hello/login/cancel/stats/close/garbage) is answered inline —
        cheap, non-blocking work."""
        server = self.database_server
        message_type = message.get("type") if message is not None else None
        if message_type in (MSG_QUERY, MSG_EXECUTE_PREPARED):
            with self._inflight_lock:
                saturated = self._inflight >= self._max_inflight
                if not saturated:
                    self._inflight += 1
            if saturated:
                # the worker pool (slots + queue) is full: reject here so
                # a flood of queries cannot queue unboundedly behind it
                server.stats.inc("queries_rejected")
                error = ServerBusyError(
                    "server is saturated; retry with backoff",
                    code=ERR_SATURATED)
                self._enqueue_frames(
                    conn, (encode_message(server._error_response(error)),))
                return
            conn.busy = True
            self._pool.submit(self._run_query, conn, payload, message)
            return
        frames = list(server.handle_frame_stream(conn.session, payload,
                                                 message=message))
        if message_type == MSG_CLOSE:
            conn.closing = True  # hang up once the closed frame flushes
        self._enqueue_frames(conn, frames)

    def _on_writable(self, conn: _AsyncConnection) -> None:
        stats = self.database_server.stats
        with conn.send_lock:
            while conn.send_chunks:
                chunk = conn.send_chunks[0]
                try:
                    sent = conn.sock.send(chunk)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    stats.inc("client_disconnects")
                    self._drop(conn, None)
                    return
                conn.send_bytes -= sent
                if sent < len(chunk):
                    conn.send_chunks[0] = chunk[sent:]
                    break
                conn.send_chunks.popleft()
            if conn.send_bytes <= self.LOW_WATER:
                conn.drained.set()
            pending = bool(conn.send_chunks)
        if not pending:
            self._set_write_interest(conn, False)
            if conn.closing and not conn.busy:
                self._drop(conn, None)

    def _set_write_interest(self, conn: _AsyncConnection,
                            want: bool) -> None:
        if conn.dead or conn.want_write == want:
            return
        conn.want_write = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, ("conn", conn))
        except (KeyError, ValueError, OSError):
            pass

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _run_query(self, conn: _AsyncConnection, payload: bytes,
                   message: dict[str, Any] | None) -> None:
        """Worker-thread body: execute one query frame, streaming response
        frames into the connection's send buffer with backpressure."""
        server = self.database_server
        stream = server.handle_frame_stream(conn.session, payload,
                                            message=message)
        try:
            for frame in stream:
                if not self._enqueue_with_backpressure(conn, frame):
                    break
        finally:
            # closing the generator runs the server's _release_after
            # finally-block, freeing the admission slot even when the
            # stream was abandoned mid-flight
            stream.close()
            with self._inflight_lock:
                self._inflight -= 1
            self._call_soon(lambda: self._query_finished(conn))

    def _query_finished(self, conn: _AsyncConnection) -> None:
        """Loop-thread callback: the connection may take its next frame."""
        conn.busy = False
        conn.last_activity = time.monotonic()
        if conn.dead:
            return
        if conn.pending:
            payload, message = conn.pending.popleft()
            self._dispatch_frame(conn, payload, message)
            if not conn.busy:
                # the frame was handled inline; keep draining the backlog
                while conn.pending and not conn.busy and not conn.dead:
                    payload, message = conn.pending.popleft()
                    self._dispatch_frame(conn, payload, message)
        elif conn.closing:
            with conn.send_lock:
                pending = bool(conn.send_chunks)
            if not pending:
                self._drop(conn, None)

    def _enqueue_frames(self, conn: _AsyncConnection,
                        frames: Iterable[bytes]) -> None:
        """Loop-thread enqueue (no backpressure wait — control messages are
        small); schedules a flush."""
        if conn.dead:
            return
        with conn.send_lock:
            for frame in frames:
                conn.send_chunks.append(memoryview(frame))
                conn.send_bytes += len(frame)
        self._on_writable(conn)
        with conn.send_lock:
            pending = bool(conn.send_chunks)
        if pending:
            self._set_write_interest(conn, True)

    def _enqueue_with_backpressure(self, conn: _AsyncConnection,
                                   frame: bytes) -> bool:
        """Worker-thread enqueue.  Returns ``False`` when the connection is
        gone or the client stalled past ``send_timeout`` (the caller must
        abandon the stream; the stalled connection is dropped and its query
        cancelled)."""
        if conn.dead:
            return False
        with conn.send_lock:
            conn.send_chunks.append(memoryview(frame))
            conn.send_bytes += len(frame)
            above_high_water = conn.send_bytes > self.HIGH_WATER
        self._call_soon(lambda: self._flush_from_loop(conn))
        if not above_high_water:
            return not conn.dead
        timeout = self.database_server.limits.send_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while not conn.dead:
            conn.drained.clear()
            with conn.send_lock:
                if conn.send_bytes <= self.HIGH_WATER:
                    conn.drained.set()
                    return True
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                self._stall_disconnect(conn)
                return False
            conn.drained.wait(remaining)
        return False

    def _flush_from_loop(self, conn: _AsyncConnection) -> None:
        if conn.dead:
            return
        self._on_writable(conn)
        with conn.send_lock:
            pending = bool(conn.send_chunks)
        if pending:
            self._set_write_interest(conn, True)

    def _stall_disconnect(self, conn: _AsyncConnection) -> None:
        """A client stopped reading mid-stream past ``send_timeout``: cancel
        its query and drop the connection so the slot frees immediately."""
        self.database_server.stats.inc("stalled_disconnects")
        self._call_soon(lambda: self._drop(conn, "stalled"))

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def _drop(self, conn: _AsyncConnection,
              reason: str | None) -> None:
        """Loop-thread teardown of one connection (idempotent).

        Releases everything the connection holds: the selector slot, the
        socket, the session (which cancels its active query), and any worker
        blocked on backpressure."""
        if conn.dead:
            return
        conn.dead = True
        conn.drained.set()  # release a worker blocked on backpressure
        self._connections.discard(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        # cancels the active query (if any) and frees the session slot
        self.database_server.close_session(conn.session)


class SocketTransport:
    """Client-side transport over a TCP socket."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, message: dict[str, Any]) -> None:
        if self.closed:
            raise ProtocolError("transport is closed")
        payload = encode_message(message)
        # encode_message returns a full frame already
        self._stream.write(payload)
        self._stream.flush()
        self.bytes_sent += len(payload)

    def receive(self) -> dict[str, Any]:
        if self.closed:
            raise ProtocolError("transport is closed")
        response_payload = read_frame(self._stream)
        self.bytes_received += len(response_payload) + 6
        return decode_message(response_payload)

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        self.send(message)
        return self.receive()

    def close(self) -> None:
        if not self.closed:
            try:
                self._stream.close()
                self._socket.close()
            finally:
                self.closed = True


def start_demo_server(database: Database | None = None, *,
                      user: str = "monetdb", password: str = "monetdb",
                      host: str = "127.0.0.1", port: int = 0
                      ) -> tuple[DatabaseServer, SocketServer, tuple[str, int]]:
    """Convenience helper: build a server, start it on a free port, return it."""
    database_server = DatabaseServer(database, default_user=user,
                                     default_password=password)
    socket_server = SocketServer(database_server, host=host, port=port)
    address = socket_server.start_background()
    return database_server, socket_server, address


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.netproto.server`` — a standalone database server.

    With ``--db`` the server is durable: state is recovered from the file +
    WAL on start, every mutation is write-ahead logged, and shutdown (clean
    exit or Ctrl-C) checkpoints automatically.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve a repro-monetdb database over the wire protocol")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: pick a free port)")
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="durable single-file database path "
                             "(default: in-memory)")
    parser.add_argument("--name", default="demo", help="database name")
    parser.add_argument("--workers", type=int, default=1,
                        help="morsel-parallel worker threads")
    parser.add_argument("--user", default="monetdb")
    parser.add_argument("--password", default="monetdb")
    parser.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
                        dest="chunk_rows", help="result rows per chunk frame")
    parser.add_argument("--max-concurrent", type=int,
                        default=ServerLimits.max_concurrent_queries,
                        help="query slots executing at once")
    parser.add_argument("--max-queue", type=int,
                        default=ServerLimits.max_queue_depth,
                        help="queries allowed to wait for a slot")
    parser.add_argument("--statement-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="server-side cap on statement runtime")
    parser.add_argument("--slow-query-ms", type=float, default=500.0,
                        dest="slow_query_ms", metavar="MILLISECONDS",
                        help="log queries slower than this to the bounded "
                             "slow-query ring with their trace spans "
                             "(0 disables; default: 500)")
    parser.add_argument("--idle-timeout", type=float,
                        default=ServerLimits.idle_timeout, metavar="SECONDS",
                        help="disconnect clients idle this long")
    parser.add_argument("--verify-on-start", action="store_true",
                        dest="verify_on_start",
                        help="scrub every image/WAL checksum before serving; "
                             "refuse to start on corruption (needs --db)")
    parser.add_argument("--plan-cache", type=int, default=128,
                        dest="plan_cache", metavar="ENTRIES",
                        help="LRU capacity of the parsed-plan cache keyed by "
                             "normalized SQL (0 disables; default: 128)")
    parser.add_argument("--result-cache-bytes", type=int, default=8 << 20,
                        dest="result_cache_bytes", metavar="BYTES",
                        help="byte budget for caching results of identical "
                             "read-only SELECTs, invalidated on writes "
                             "(0 disables; default: 8 MiB)")
    frontend = parser.add_mutually_exclusive_group()
    frontend.add_argument("--async", action="store_const", dest="frontend",
                          const="async",
                          help="async front end: one selector event loop "
                               "multiplexes all connections (default)")
    frontend.add_argument("--threaded", action="store_const", dest="frontend",
                          const="threaded",
                          help="classic thread-per-connection front end")
    parser.set_defaults(frontend="async")
    args = parser.parse_args(argv)

    limits = ServerLimits(max_concurrent_queries=args.max_concurrent,
                          max_queue_depth=args.max_queue,
                          statement_timeout=args.statement_timeout,
                          idle_timeout=args.idle_timeout)
    if args.verify_on_start and not args.db:
        parser.error("--verify-on-start requires --db")
    try:
        database = Database(name=args.name, path=args.db, workers=args.workers,
                            plan_cache=args.plan_cache,
                            result_cache_bytes=args.result_cache_bytes)
    except PersistenceError as exc:
        # a corrupt image fails the open itself; with --verify-on-start the
        # operator asked for a clean verdict, not a traceback
        if not args.verify_on_start:
            raise
        print(f"verify: CORRUPT: {exc}")
        return 1
    if args.verify_on_start:
        report = database.verify()
        print(f"verify: generation={report.generation} "
              f"tables={len(report.image.tables)} "
              f"corrupt_segments={report.corrupt_segments} "
              f"wal_records={report.wal_records} "
              f"ok={report.ok}")
        if not report.ok:
            for fault in report.image.faults:
                print(f"verify: CORRUPT table={fault.table} "
                      f"rows={fault.start_row}..{fault.stop_row} "
                      f"offset={fault.offset}: {fault.reason}")
            if report.image.error:
                print(f"verify: CORRUPT file: {report.image.error}")
            if report.wal_error:
                print(f"verify: CORRUPT wal: {report.wal_error}")
            database.close()
            return 1
    database_server = DatabaseServer(
        database, default_user=args.user, default_password=args.password,
        result_chunk_rows=args.chunk_rows, limits=limits,
        slow_query_ms=args.slow_query_ms if args.slow_query_ms > 0 else None)
    server_cls = (AsyncSocketServer if args.frontend == "async"
                  else SocketServer)
    socket_server = server_cls(database_server, host=args.host,
                               port=args.port)
    host, port = socket_server.start_background()
    mode = f"durable ({args.db})" if args.db else "in-memory"
    print(f"server listening on {host}:{port} "
          f"(user={args.user} database={args.name}, {mode}, "
          f"{args.frontend} front end)")
    print(json.dumps({"host": host, "port": port, "db": args.db}, indent=2))
    try:
        socket_server._thread.join()  # noqa: SLF001 - foreground serve
    except KeyboardInterrupt:
        pass
    finally:
        socket_server.stop()
        # auto-checkpoint on shutdown for durable databases
        database.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    import sys

    sys.exit(main())
