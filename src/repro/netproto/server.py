"""The database server: session handling, query execution, result transfer.

The server wraps an embedded :class:`repro.sqldb.Database` and speaks the
message protocol defined in :mod:`repro.netproto.messages`.  It can be driven
through two transports:

* :class:`InProcessTransport` — same process, but every message still goes
  through the full encode/decode path so byte counts are real (used by tests
  and benchmarks; this is the common path for the reproduction).
* :class:`SocketServer` — a real TCP server (one thread per connection) for
  the examples that want the paper's "remote database server" topology.
"""

from __future__ import annotations

import itertools
import socket
import socketserver
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..errors import AuthenticationError, ProtocolError, ReproError
from ..sqldb.database import Database, StreamedResult
from ..sqldb.result import QueryResult
from . import compression as compression_mod
from .auth import UserRegistry
from .messages import (
    DEFAULT_CHUNK_ROWS,
    MSG_CHALLENGE,
    MSG_CLOSE,
    MSG_CLOSED,
    MSG_ERROR,
    MSG_HELLO,
    MSG_LOGIN,
    MSG_LOGIN_OK,
    MSG_QUERY,
    MSG_RESULT,
    PROTOCOL_VERSION,
    columnar_result_messages,
    encode_result,
    streamed_result_messages,
)
from .wire import decode_frame, decode_message, encode_message, read_frame


@dataclass
class Session:
    """Per-connection server state."""

    session_id: int
    username: str | None = None
    database: str | None = None
    authenticated: bool = False
    pending_challenge: bytes | None = None
    transfer_key: bytes | None = None
    #: Negotiated wire protocol version; 1 until the client's hello says more.
    protocol_version: int = 1
    queries_executed: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


@dataclass
class ServerStats:
    """Aggregate server statistics (used by the workflow benchmarks)."""

    sessions_opened: int = 0
    queries_executed: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    errors: int = 0
    query_log: list[str] = field(default_factory=list)


class DatabaseServer:
    """Protocol logic: turns request messages into response messages."""

    def __init__(self, database: Database | None = None,
                 registry: UserRegistry | None = None, *,
                 default_user: str = "monetdb", default_password: str = "monetdb",
                 result_chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 workers: int = 1, stream_results: bool = True) -> None:
        self.database = database or Database(workers=workers)
        self.registry = registry or UserRegistry()
        self.result_chunk_rows = max(1, int(result_chunk_rows))
        #: Stream pipeline morsels to v4 clients as they complete (the
        #: first ``result_chunk`` leaves before execution finishes).  Off
        #: forces the fully-materialised v2/v3 chunking for everyone.
        self.stream_results = bool(stream_results)
        if default_user and not self.registry.has_user(default_user):
            self.registry.add_user(default_user, default_password,
                                   database=self.database.name)
        self.stats = ServerStats()
        self._next_session = 1
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # session management
    # ------------------------------------------------------------------ #
    def open_session(self) -> Session:
        with self._lock:
            session = Session(session_id=self._next_session)
            self._next_session += 1
            self.stats.sessions_opened += 1
            return session

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def handle_message(self, session: Session, message: dict[str, Any]) -> dict[str, Any]:
        """Process one request and produce a single response message.

        Compatibility wrapper over :meth:`handle_message_stream` for request
        types that always answer with exactly one message (everything except
        a columnar query result, which streams header + chunks).
        """
        responses = list(self.handle_message_stream(session, message))
        if len(responses) != 1:
            raise ProtocolError(
                "handle_message cannot carry a chunked response; use "
                "handle_message_stream")
        return responses[0]

    def handle_message_stream(self, session: Session,
                              message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Process one request message; yields one or more response messages.

        Chunked query results yield the ``result`` header followed by its
        ``result_chunk`` messages; everything else yields a single message.
        All fallible work happens before the first message is yielded, so an
        error is always reported as a well-formed ``error`` response.
        """
        try:
            message_type = message.get("type")
            if message_type == MSG_HELLO:
                responses: Iterable[dict[str, Any]] = (
                    self._handle_hello(session, message),)
            elif message_type == MSG_LOGIN:
                responses = (self._handle_login(session, message),)
            elif message_type == MSG_QUERY:
                responses = self._handle_query(session, message)
            elif message_type == MSG_CLOSE:
                responses = ({"type": MSG_CLOSED},)
            else:
                raise ProtocolError(f"unknown message type {message_type!r}")
        except ReproError as exc:
            self.stats.errors += 1
            responses = ({
                "type": MSG_ERROR,
                "error_class": type(exc).__name__,
                "message": str(exc),
            },)
        yield from responses

    def _handle_hello(self, session: Session, message: dict[str, Any]) -> dict[str, Any]:
        username = str(message.get("username", ""))
        session.username = username
        session.database = str(message.get("database", self.database.name))
        # version-1 clients do not send a version: keep serving them the
        # row-oriented dict payload
        try:
            client_version = int(message.get("protocol_version", 1))
        except (TypeError, ValueError):
            raise ProtocolError("protocol_version must be an integer") from None
        session.protocol_version = max(1, min(client_version, PROTOCOL_VERSION))
        salt, challenge = self.registry.challenge_for(username)
        session.pending_challenge = challenge
        return {
            "type": MSG_CHALLENGE,
            "salt": salt,
            "challenge": challenge,
            "server": "repro-monetdb",
            "protocol_version": session.protocol_version,
        }

    def _handle_login(self, session: Session, message: dict[str, Any]) -> dict[str, Any]:
        if session.pending_challenge is None or session.username is None:
            raise ProtocolError("login before hello")
        response = message.get("response")
        if not isinstance(response, (bytes, bytearray)):
            raise ProtocolError("login response must be bytes")
        account = self.registry.verify(
            session.username, session.pending_challenge, bytes(response),
            database=session.database,
        )
        session.authenticated = True
        session.pending_challenge = None
        session.transfer_key = account.digest
        return {"type": MSG_LOGIN_OK, "database": account.database,
                "username": account.username}

    def _handle_query(self, session: Session,
                      message: dict[str, Any]) -> Iterable[dict[str, Any]]:
        if not session.authenticated:
            raise AuthenticationError("not authenticated")
        sql = str(message.get("sql", ""))
        if not sql.strip():
            raise ProtocolError("empty query")
        options = message.get("options") or {}
        compression = options.get("compression") or compression_mod.CODEC_NONE
        compression_mod.get_codec(compression)  # validate before executing
        encrypt = bool(options.get("encrypt", False))
        try:
            chunk_rows = int(options.get("chunk_rows") or self.result_chunk_rows)
        except (TypeError, ValueError):
            raise ProtocolError("chunk_rows must be an integer") from None

        encryption_key = None
        if encrypt:
            if session.transfer_key is None:
                raise ProtocolError("no transfer key available for encryption")
            encryption_key = session.transfer_key.hex()

        if session.protocol_version >= 4 and self.stream_results:
            outcome = self.database.execute_stream(sql, max_rows=chunk_rows)
            session.queries_executed += 1
            self.stats.queries_executed += 1
            self.stats.query_log.append(sql)
            if isinstance(outcome, StreamedResult):
                stream = streamed_result_messages(
                    outcome.pieces(),
                    statement_type=outcome.statement_type,
                    affected_rows=outcome.affected_rows,
                    compression=compression, encryption_key=encryption_key,
                    protocol_version=session.protocol_version)
                # pull the header eagerly: plan preparation already ran and
                # the first morsel is computed here, so early errors still
                # become well-formed error responses
                header = next(stream)
                return itertools.chain(
                    (header,), self._guarded_chunks(stream))
            result: QueryResult = outcome
        else:
            result = self.database.execute(sql)
            session.queries_executed += 1
            self.stats.queries_executed += 1
            self.stats.query_log.append(sql)

        if session.protocol_version >= 2:
            stream = columnar_result_messages(
                result, chunk_rows=chunk_rows, compression=compression,
                encryption_key=encryption_key,
                protocol_version=session.protocol_version)
            # pull the header eagerly: buffer export (the fallible part of
            # encoding) happens here, so errors still become error responses
            header = next(stream)
            return itertools.chain((header,), stream)

        encoded = encode_result(result, compression=compression,
                                encryption_key=encryption_key)
        return ({
            "type": MSG_RESULT,
            "payload": encoded.blob,
            "compressed": encoded.compressed,
            "encrypted": encoded.encrypted,
            "stats": encoded.stats.as_dict(),
        },)

    def _guarded_chunks(self, stream: Iterator[dict[str, Any]]
                        ) -> Iterator[dict[str, Any]]:
        """Relay streamed chunk messages, converting a mid-stream execution
        failure into an ``error`` message (the header is already out, so the
        client sees the error while consuming chunks)."""
        try:
            yield from stream
        except ReproError as exc:
            self.stats.errors += 1
            yield {
                "type": MSG_ERROR,
                "error_class": type(exc).__name__,
                "message": str(exc),
            }

    # ------------------------------------------------------------------ #
    # framed entry point shared by the transports
    # ------------------------------------------------------------------ #
    def handle_frame(self, session: Session, frame_payload: bytes) -> bytes:
        """One request frame in, all response frames out (concatenated)."""
        return b"".join(self.handle_frame_stream(session, frame_payload))

    def handle_frame_stream(self, session: Session,
                            frame_payload: bytes) -> Iterator[bytes]:
        """One request frame in; yields each encoded response frame lazily.

        This is the streaming entry point: a chunked result is encoded one
        chunk per iteration, so transports can flush frame *i* before frame
        *i + 1* exists.
        """
        request = decode_message(frame_payload)
        session.bytes_received += len(frame_payload)
        self.stats.bytes_received += len(frame_payload)
        for response in self.handle_message_stream(session, request):
            encoded = encode_message(response)
            session.bytes_sent += len(encoded)
            self.stats.bytes_sent += len(encoded)
            yield encoded


class InProcessTransport:
    """A client-side transport that talks to a server object in-process.

    All messages are round-tripped through the wire codec so the byte counts
    and failure modes match the socket transport.
    """

    def __init__(self, server: DatabaseServer) -> None:
        self.server = server
        self.session = server.open_session()
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self._pending: Iterator[bytes] = iter(())

    def send(self, message: dict[str, Any]) -> None:
        """Submit one request; response frames become available to receive."""
        if self.closed:
            raise ProtocolError("transport is closed")
        request = encode_message(message)
        self.bytes_sent += len(request)
        # strip the frame header the same way the socket path would
        payload, _ = decode_frame(request)
        # the stream is kept lazy: each receive() encodes one more frame,
        # mirroring how the socket transport overlaps encode and consume
        self._pending = self.server.handle_frame_stream(self.session, payload)

    def receive(self) -> dict[str, Any]:
        """Read the next response message of the in-flight request."""
        if self.closed:
            raise ProtocolError("transport is closed")
        try:
            frame = next(self._pending)
        except StopIteration:
            raise ProtocolError("no pending response message") from None
        self.bytes_received += len(frame)
        response_payload, _ = decode_frame(frame)
        return decode_message(response_payload)

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        self.send(message)
        return self.receive()

    def close(self) -> None:
        self.closed = True


class _SocketHandler(socketserver.BaseRequestHandler):
    """One thread per client connection."""

    def handle(self) -> None:  # pragma: no cover - exercised via integration tests
        server: "SocketServer" = self.server  # type: ignore[assignment]
        database_server = server.database_server
        session = database_server.open_session()
        stream = self.request.makefile("rwb")
        try:
            while True:
                try:
                    payload = read_frame(stream)
                except ProtocolError:
                    return
                # write each response frame as it is encoded so the client
                # can consume chunk i while chunk i+1 is still being built
                for response_frame in database_server.handle_frame_stream(
                        session, payload):
                    stream.write(response_frame)
                    stream.flush()
                message = decode_message(payload)
                if message.get("type") == MSG_CLOSE:
                    return
        finally:
            stream.close()


class SocketServer(socketserver.ThreadingTCPServer):
    """A TCP server hosting a :class:`DatabaseServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, database_server: DatabaseServer,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _SocketHandler)
        self.database_server = database_server
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> tuple[str, int]:
        """Start serving in a daemon thread; returns (host, port)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


class SocketTransport:
    """Client-side transport over a TCP socket."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rwb")
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, message: dict[str, Any]) -> None:
        if self.closed:
            raise ProtocolError("transport is closed")
        payload = encode_message(message)
        # encode_message returns a full frame already
        self._stream.write(payload)
        self._stream.flush()
        self.bytes_sent += len(payload)

    def receive(self) -> dict[str, Any]:
        if self.closed:
            raise ProtocolError("transport is closed")
        response_payload = read_frame(self._stream)
        self.bytes_received += len(response_payload) + 6
        return decode_message(response_payload)

    def exchange(self, message: dict[str, Any]) -> dict[str, Any]:
        self.send(message)
        return self.receive()

    def close(self) -> None:
        if not self.closed:
            try:
                self._stream.close()
                self._socket.close()
            finally:
                self.closed = True


def start_demo_server(database: Database | None = None, *,
                      user: str = "monetdb", password: str = "monetdb",
                      host: str = "127.0.0.1", port: int = 0
                      ) -> tuple[DatabaseServer, SocketServer, tuple[str, int]]:
    """Convenience helper: build a server, start it on a free port, return it."""
    database_server = DatabaseServer(database, default_user=user,
                                     default_password=password)
    socket_server = SocketServer(database_server, host=host, port=port)
    address = socket_server.start_background()
    return database_server, socket_server, address


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.netproto.server`` — a standalone database server.

    With ``--db`` the server is durable: state is recovered from the file +
    WAL on start, every mutation is write-ahead logged, and shutdown (clean
    exit or Ctrl-C) checkpoints automatically.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve a repro-monetdb database over the wire protocol")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: pick a free port)")
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="durable single-file database path "
                             "(default: in-memory)")
    parser.add_argument("--name", default="demo", help="database name")
    parser.add_argument("--workers", type=int, default=1,
                        help="morsel-parallel worker threads")
    parser.add_argument("--user", default="monetdb")
    parser.add_argument("--password", default="monetdb")
    parser.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
                        dest="chunk_rows", help="result rows per chunk frame")
    args = parser.parse_args(argv)

    database = Database(name=args.name, path=args.db, workers=args.workers)
    database_server = DatabaseServer(
        database, default_user=args.user, default_password=args.password,
        result_chunk_rows=args.chunk_rows)
    socket_server = SocketServer(database_server, host=args.host,
                                 port=args.port)
    host, port = socket_server.start_background()
    mode = f"durable ({args.db})" if args.db else "in-memory"
    print(f"server listening on {host}:{port} "
          f"(user={args.user} database={args.name}, {mode})")
    print(json.dumps({"host": host, "port": port, "db": args.db}, indent=2))
    try:
        socket_server._thread.join()  # noqa: SLF001 - foreground serve
    except KeyboardInterrupt:
        pass
    finally:
        socket_server.stop()
        # auto-checkpoint on shutdown for durable databases
        database.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    import sys

    sys.exit(main())
