"""Reproduction of *devUDF: Increasing UDF development efficiency through IDE
Integration* (EDBT 2019).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.core` — the devUDF plugin logic (import/export/transform/debug).
* :mod:`repro.sqldb` — an embedded MonetDB-like column store with Python UDFs.
* :mod:`repro.netproto` — the client protocol (JDBC stand-in) with
  compression, encryption and sampling.
* :mod:`repro.ide` — a scriptable PyCharm stand-in (project, actions, debugger UI).
* :mod:`repro.ml` — a small random-forest implementation for the paper's
  classifier example.
* :mod:`repro.workloads` — demo data generators and the paper's buggy scenarios.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
