"""L1-L2 — Listings 1 and 2: the stored-body -> runnable-file transformation.

Measures the code transformation itself (the operation devUDF performs on
every import/export) and checks the structural properties Listing 2 shows:
synthesised header, pickle loader, trailing call, reversibility.
"""

from conftest import report

from repro.core.transform import UDFCodeTransformer, normalise_body, strip_catalog_braces
from repro.sqldb.catalog import make_signature
from repro.sqldb.types import SQLType
from repro.workloads.udf_corpus import MEAN_DEVIATION_BUGGY_BODY, TRAIN_RNFOREST_BODY


def test_transform_roundtrip(benchmark):
    transformer = UDFCodeTransformer()
    # the catalog text as MonetDB stores it (Listing 1 shape)
    stored = "{\n" + MEAN_DEVIATION_BUGGY_BODY + "};"
    signature = make_signature("mean_deviation", [("column", SQLType.INTEGER)],
                               return_type=SQLType.DOUBLE,
                               body=strip_catalog_braces(stored))

    def forward_and_back() -> str:
        generated = transformer.udf_to_standalone(signature)
        recovered = transformer.standalone_to_signature(generated.source,
                                                        "mean_deviation")
        return recovered.body

    recovered_body = benchmark(forward_and_back)
    generated = transformer.udf_to_standalone(signature)

    report("Listing 2: structure of the generated file", {
        "has_pickle_import": "import pickle" in generated.source,
        "has_synthesised_header":
            "def mean_deviation(column, _conn=None):" in generated.source,
        "loads_input_bin":
            "pickle.load(open('./input.bin', 'rb'))" in generated.source,
        "has_trailing_call": "__devudf_result__ = mean_deviation(" in generated.source,
        "generated_lines": len(generated.source.splitlines()),
        "body_roundtrip_lossless":
            normalise_body(recovered_body) == normalise_body(signature.body),
    })
    assert normalise_body(recovered_body) == normalise_body(signature.body)


def test_transform_larger_udf_with_nested(benchmark):
    """Same transformation on the Listing 1 classifier UDF, with nesting."""
    transformer = UDFCodeTransformer()
    nested = make_signature(
        "train_rnforest",
        [("f0", SQLType.DOUBLE), ("f1", SQLType.DOUBLE),
         ("classes", SQLType.INTEGER), ("n_estimators", SQLType.INTEGER)],
        returns_table=True,
        return_columns=[("clf", SQLType.STRING), ("estimators", SQLType.INTEGER)],
        body=TRAIN_RNFOREST_BODY)
    main = make_signature(
        "find_best_classifier", [("esttest", SQLType.INTEGER)],
        returns_table=True,
        return_columns=[("clf", SQLType.STRING), ("n_estimators", SQLType.INTEGER)],
        body="res = _conn.execute('SELECT * FROM train_rnforest((SELECT f0, f1, label "
             "FROM trainingset), %d)' % esttest)\nreturn res")

    generated = benchmark(transformer.udf_to_standalone, main, nested=[nested])
    assert "def train_rnforest" in generated.source
    assert "_DevUDFLocalConnection" in generated.source
    compile(generated.source, "<bench>", "exec")
