"""F2 — Figure 2: the Settings window.

The reproducible behaviour: every field the dialog shows (host, port,
database, user, password, the debug query, and the transfer options) is a
plugin setting that validates, persists to the project, and produces a working
authenticated connection.  The benchmark times the configure -> validate ->
connect -> authenticate round trip.
"""

from conftest import report

from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DataTransferSettings, DevUDFSettings
from repro.netproto.server import DatabaseServer


def test_settings_roundtrip_and_connect(benchmark, tmp_path):
    server = DatabaseServer()
    server.database.execute("CREATE TABLE t (i INTEGER)")
    server.database.execute("INSERT INTO t VALUES (1), (2)")

    settings = DevUDFSettings(
        host="localhost", port=50000, database="demo",
        username="monetdb", password="monetdb",
        debug_query="SELECT COUNT(*) FROM t",
        transfer=DataTransferSettings(use_compression=True, use_encryption=True,
                                      use_sampling=True, sample_size=1000),
    )
    project = DevUDFProject(tmp_path / "settings_project")

    def configure_and_connect() -> int:
        settings.validate_for_debug()
        project.save_settings(settings)
        plugin = DevUDFPlugin(project, project.load_settings(), server=server)
        try:
            return plugin.execute_sql("SELECT COUNT(*) FROM t").scalar()
        finally:
            plugin.close()

    count = benchmark(configure_and_connect)

    report("Figure 2: persisted settings", project.load_settings().as_dict())
    assert count == 2
    loaded = project.load_settings()
    assert loaded.transfer.use_compression
    assert loaded.transfer.use_encryption
    assert loaded.transfer.sample_size == 1000
    assert loaded.debug_query == "SELECT COUNT(*) FROM t"
    benchmark.extra_info["settings"] = loaded.describe()
