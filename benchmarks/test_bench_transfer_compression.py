"""C1 — §2.1 claim: "compressing the data during the transfer, leading to
faster transfer times".

Sweeps data sizes and codecs, measuring real bytes-on-the-wire through the
client protocol and the serialisation/compression time.  The shape that must
hold: compression shrinks the transfer substantially on the demo-style data,
and the saving grows with the data size; at realistic network bandwidths the
end-to-end (compress + transfer) time therefore drops.
"""

import pytest
from conftest import report

from repro.netproto.client import Connection, TransferOptions
from repro.netproto.compression import CODEC_NONE, CODEC_RLE, CODEC_ZLIB
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database

#: Simulated link bandwidths (bytes/second) used to convert bytes saved into
#: transfer-time saved (the paper's claim is about transfer times).
BANDWIDTHS = {"10 Mbit/s": 1.25e6, "100 Mbit/s": 12.5e6}

ROW_COUNTS = [1_000, 10_000]


@pytest.fixture(scope="module")
def transfer_server():
    database = Database()
    database.execute("CREATE TABLE readings (i INTEGER, station STRING, value DOUBLE)")
    table = database.storage.table("readings")
    for index in range(max(ROW_COUNTS)):
        table.insert_row([index % 100, f"station_{index % 7}", (index % 100) * 0.25])
    return DatabaseServer(database)


@pytest.fixture(scope="module")
def results_table():
    rows: list[dict] = []
    yield rows
    report("C1: bytes on the wire and estimated transfer times", rows)


@pytest.mark.parametrize("rows", ROW_COUNTS)
@pytest.mark.parametrize("codec", [CODEC_NONE, CODEC_ZLIB, CODEC_RLE])
def test_compression_sweep(benchmark, transfer_server, results_table, rows, codec):
    connection = Connection.connect_in_process(transfer_server)
    options = TransferOptions(compression=codec)
    sql = f"SELECT * FROM readings WHERE i >= 0 LIMIT {rows}"

    def query_with_codec():
        return connection.execute(sql, options=options)

    result = benchmark(query_with_codec)
    transfer = connection.stats.last_transfer
    entry = {
        "rows": rows,
        "codec": codec,
        "raw_bytes": transfer.raw_bytes,
        "wire_bytes": transfer.wire_bytes,
        "compression_ratio": round(transfer.compression_ratio, 2),
    }
    for label, bandwidth in BANDWIDTHS.items():
        entry[f"transfer_s @{label}"] = round(transfer.wire_bytes / bandwidth, 4)
    results_table.append(entry)
    benchmark.extra_info.update(entry)

    assert result.row_count == rows
    if codec == CODEC_ZLIB:
        # the paper's claim: compressed transfers are much smaller
        assert transfer.wire_bytes < transfer.raw_bytes / 3
    if codec == CODEC_NONE:
        assert transfer.wire_bytes >= transfer.raw_bytes
    connection.close()


def test_compression_benefit_grows_with_size(benchmark, transfer_server):
    """The crossover shape: the absolute saving grows with the result size."""
    connection = Connection.connect_in_process(transfer_server)

    def measure_savings():
        savings = []
        for rows in ROW_COUNTS:
            sql = f"SELECT * FROM readings LIMIT {rows}"
            connection.execute(sql, options=TransferOptions(compression=CODEC_NONE))
            plain = connection.stats.last_transfer.wire_bytes
            connection.execute(sql, options=TransferOptions(compression=CODEC_ZLIB))
            compressed = connection.stats.last_transfer.wire_bytes
            savings.append(plain - compressed)
        return savings

    savings = benchmark.pedantic(measure_savings, rounds=1, iterations=1)
    report("C1: absolute bytes saved by zlib", dict(zip(ROW_COUNTS, savings)))
    assert savings[-1] > savings[0] > 0
    connection.close()
