"""C3 — §2.1/§2.2 claim: optional encryption, keyed by the database user's
password, protects sensitive data during the transfer.

Measures the end-to-end cost of encrypting the extracted data (alone and
combined with compression), verifies exact round-tripping, and checks the key
properties: a wrong password cannot read the data and the ciphertext leaks
nothing recognisable.
"""

import pytest
from conftest import report

from repro.errors import DecryptionError
from repro.netproto.client import Connection, TransferOptions
from repro.netproto.compression import CODEC_ZLIB
from repro.netproto.encryption import decrypt, encrypt
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database

CONFIGURATIONS = [
    ("plain", TransferOptions()),
    ("encrypted", TransferOptions(encrypt=True)),
    ("compressed", TransferOptions(compression=CODEC_ZLIB)),
    ("compressed+encrypted", TransferOptions(compression=CODEC_ZLIB, encrypt=True)),
]


@pytest.fixture(scope="module")
def sensitive_server():
    database = Database()
    database.execute("CREATE TABLE patients (id INTEGER, name STRING, score DOUBLE)")
    table = database.storage.table("patients")
    for index in range(5_000):
        table.insert_row([index, f"patient-{index:05d}", (index % 97) * 1.5])
    return DatabaseServer(database)


@pytest.fixture(scope="module")
def results_table():
    rows: list[dict] = []
    yield rows
    report("C3: transfer cost per protection configuration", rows)


@pytest.mark.parametrize("label,options", CONFIGURATIONS)
def test_protection_configurations(benchmark, sensitive_server, results_table,
                                   label, options):
    connection = Connection.connect_in_process(sensitive_server)
    baseline = connection.execute("SELECT * FROM patients").fetchall()

    def protected_query():
        return connection.execute("SELECT * FROM patients", options=options)

    result = benchmark(protected_query)
    transfer = connection.stats.last_transfer
    entry = {
        "configuration": label,
        "raw_bytes": transfer.raw_bytes,
        "wire_bytes": transfer.wire_bytes,
        "encrypted": transfer.encrypted,
    }
    results_table.append(entry)
    benchmark.extra_info.update(entry)

    # exact round trip regardless of the protection applied
    assert result.fetchall() == baseline
    if options.encrypt:
        assert transfer.encrypted
        # encryption adds only a constant-size header/tag overhead
        assert transfer.wire_bytes - transfer.compressed_bytes < 200
    connection.close()


def test_wrong_password_cannot_read_extracted_data(benchmark):
    payload = b"patient-00001,42.5\n" * 2_000

    def protect():
        return encrypt(payload, "correct-password")

    blob = benchmark(protect)
    assert payload not in blob
    assert decrypt(blob, "correct-password") == payload
    with pytest.raises(DecryptionError):
        decrypt(blob, "wrong-password")
    report("C3: key properties", {
        "payload_bytes": len(payload),
        "ciphertext_bytes": len(blob),
        "wrong_password_rejected": True,
    })
