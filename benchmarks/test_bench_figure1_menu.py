"""F1 — Figure 1: the PyCharm main menu with the "UDF Development" submenu.

The figure is a screenshot; the reproducible behaviour is the plugin's menu
contribution: a new main-menu entry containing exactly the three actions
(Settings, Import UDFs, Export UDFs), each of which is invokable.  The
benchmark times a full plugin installation into a fresh IDE menu.
"""

from conftest import report

from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.ide.actions import MainMenu
from repro.netproto.server import DatabaseServer


def test_menu_contribution(benchmark, tmp_path):
    server = DatabaseServer()
    project = DevUDFProject(tmp_path / "menu_project")
    settings = DevUDFSettings()

    def install_plugin() -> MainMenu:
        menu = MainMenu()
        DevUDFPlugin(project, settings, server=server, menu=menu)
        return menu

    menu = benchmark(install_plugin)

    group = menu.menu(DevUDFPlugin.SUBMENU_LABEL)
    report("Figure 1: menu tree after plugin installation", {"tree": "\n" + group.tree()})

    assert DevUDFPlugin.SUBMENU_LABEL in menu.labels()
    assert group.action_labels() == ["Settings", "Import UDFs", "Export UDFs"]
    # the standard IDE menus are still there (the plugin only adds, never removes)
    for standard in ("File", "Edit", "Tools", "Run", "VCS"):
        assert standard in menu.labels()
    benchmark.extra_info["actions"] = group.action_labels()
