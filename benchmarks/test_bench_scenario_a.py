"""L4/A — Scenario A: the buggy mean_deviation (Listing 4).

Regenerates the demo's first scenario: the buggy UDF produces a wrong value,
the interactive debugger exposes the negative accumulator, the fix restores
the reference value.  The benchmark reports the wrong/correct values and times
the debug session that locates the bug.
"""

import pytest
from conftest import report

from repro.core.debugger import DebugSession
from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.netproto.server import DatabaseServer
from repro.workloads.scenarios import ScenarioA


@pytest.fixture(scope="module")
def scenario_environment(tmp_path_factory):
    base = tmp_path_factory.mktemp("scenario_a_bench")
    scenario = ScenarioA(base / "csv", n_files=5, rows_per_file=100)
    server = DatabaseServer()
    scenario.setup(server)
    return scenario, server, base


def test_buggy_vs_reference_value(benchmark, scenario_environment):
    scenario, server, _ = scenario_environment

    def run_buggy_udf():
        return server.database.execute(scenario.debug_query).scalar()

    wrong = benchmark(run_buggy_udf)
    reference = scenario.reference_value()
    report("Scenario A: buggy UDF vs reference", {
        "buggy_result": wrong,
        "reference_mean_deviation": reference,
        "absolute_error": abs(wrong - reference),
    })
    # the signed deviations cancel: the buggy UDF returns ~0, far from the truth
    assert abs(wrong) < 1e-6
    assert reference > 1.0


def test_debugger_locates_the_bug(benchmark, scenario_environment):
    scenario, server, base = scenario_environment
    settings = DevUDFSettings(debug_query=scenario.debug_query)
    plugin = DevUDFPlugin(DevUDFProject(base / "project"), settings, server=server)
    try:
        preparation = plugin.prepare_debug(scenario.udf_name)
        source = plugin.project.udf_source(scenario.udf_name)
        breakpoints = scenario.debugger_breakpoints(source)
        watches = scenario.debugger_watches()

        def debug_session():
            return DebugSession(preparation.script_path, breakpoints=breakpoints,
                                watches=watches,
                                working_directory=preparation.script_path.parent).run()

        outcome = benchmark.pedantic(debug_session, rounds=1, iterations=1)
        first_negative = next(
            (stop for stop in outcome.stops
             if isinstance(stop.watches.get("distance"), (int, float))
             and stop.watches["distance"] < 0), None)
        report("Scenario A: what the debugger shows", {
            "breakpoint_hits": len(outcome.breakpoint_stops),
            "rows_in_debug_input": preparation.inputs.rows_extracted,
            "first_negative_distance":
                None if first_negative is None else first_negative.watches["distance"],
            "bug_visible": scenario.bug_visible_in_debugger(outcome),
        })
        assert scenario.bug_visible_in_debugger(outcome)
    finally:
        plugin.close()


def test_fix_restores_reference(benchmark, scenario_environment):
    scenario, server, _ = scenario_environment

    def apply_fix_and_rerun():
        server.database.execute(scenario.fixed_create_sql())
        return server.database.execute(scenario.debug_query).scalar()

    fixed = benchmark(apply_fix_and_rerun)
    reference = scenario.reference_value()
    report("Scenario A: after the fix", {"fixed_result": fixed, "reference": reference})
    assert fixed == pytest.approx(reference, rel=1e-9)
