"""L3 — Listing 3: the nested classifier UDF, in-database and debugged locally.

Regenerates the behaviour of the paper's nested-UDF example: the outer
``find_best_classifier`` sweeps the estimator count through loopback queries
that call ``train_rnforest``; devUDF imports the pair, extracts both UDFs'
inputs, and executes the whole call tree locally.  The benchmark reports the
in-database result, the local result, and the cost of each path; the shape
that must hold is *equality of the chosen model and its score*.
"""

import pytest
from conftest import report

from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings

DEBUG_QUERY = "SELECT * FROM find_best_classifier(3)"


def test_in_database_nested_execution(benchmark, classifier_server):
    database = classifier_server.database

    def run_in_database():
        return database.execute(DEBUG_QUERY).fetchone()

    row = benchmark(run_in_database)
    report("Listing 3 (in-database)", {
        "best_n_estimators": row[1],
        "correct_predictions": row[2],
        "train_rnforest_invocations":
            database.udf_runtime.invocation_counts.get("train_rnforest", 0),
    })
    assert 1 <= row[1] <= 3
    assert row[2] > 0


def test_local_debug_of_nested_udf_matches_server(benchmark, classifier_server, tmp_path):
    settings = DevUDFSettings(debug_query=DEBUG_QUERY)
    project = DevUDFProject(tmp_path / "nested_bench")
    plugin = DevUDFPlugin(project, settings, server=classifier_server)
    try:
        plugin.import_udfs(["find_best_classifier"])
        preparation = plugin.prepare_debug("find_best_classifier")

        def run_locally():
            return plugin.run_udf_locally(preparation=preparation)

        local = benchmark(run_locally)
        server_row = classifier_server.database.execute(DEBUG_QUERY).fetchone()

        report("Listing 3 (devUDF local run vs server)", {
            "local_best_n_estimators": local.result["n_estimators"],
            "server_best_n_estimators": server_row[1],
            "local_correct": local.result["correct"],
            "server_correct": server_row[2],
            "loopback_datasets_transferred": len(preparation.inputs.loopback),
            "rows_transferred": preparation.inputs.rows_extracted,
            "input_bin_bytes": preparation.blob_stats.stored_bytes,
        })
        assert local.completed
        assert local.result["n_estimators"] == server_row[1]
        assert local.result["correct"] == server_row[2]
        assert len(preparation.inputs.loopback) == 2  # trainingset + testingset
    finally:
        plugin.close()


def test_breakpoint_inside_nested_udf(benchmark, classifier_server, tmp_path):
    """Stepping into the nested UDF: one breakpoint hit per estimator value."""
    settings = DevUDFSettings(debug_query=DEBUG_QUERY)
    project = DevUDFProject(tmp_path / "nested_bp_bench")
    plugin = DevUDFPlugin(project, settings, server=classifier_server)
    try:
        preparation = plugin.prepare_debug("find_best_classifier")
        source = project.udf_source("find_best_classifier")
        line = next(number for number, text in enumerate(source.splitlines(), 1)
                    if "clf.fit(data, classes)" in text)

        def debug_with_breakpoint():
            return plugin.debug_udf(preparation=preparation, breakpoints=[line])

        outcome = benchmark.pedantic(debug_with_breakpoint, rounds=1, iterations=1)
        report("Listing 3 (breakpoint inside the nested UDF)", {
            "breakpoint_line": line,
            "breakpoint_hits": len(outcome.breakpoint_stops),
            "functions_stopped_in":
                sorted({stop.function for stop in outcome.breakpoint_stops}),
        })
        assert len(outcome.breakpoint_stops) == 3
        assert all(stop.function == "train_rnforest" for stop in outcome.breakpoint_stops)
    finally:
        plugin.close()


@pytest.fixture(scope="module")
def tmp_path(tmp_path_factory):
    return tmp_path_factory.mktemp("listing3_bench")
