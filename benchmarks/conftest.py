"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one artefact of the paper (a table, a
figure's behaviour, or a claim attached to a listing) — see the experiment
index in DESIGN.md.  Results that correspond to paper-reported rows/series are
printed with the ``report()`` helper so that ``pytest benchmarks/
--benchmark-only -s`` shows them alongside the timing numbers, and are also
attached to ``benchmark.extra_info`` so they land in the JSON output.
"""

from __future__ import annotations

import contextlib
import io

import pytest

from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.workloads.udf_corpus import demo_server, setup_classifier_database


def report(title: str, rows: list[dict] | list[tuple] | dict) -> None:
    """Print a small table of the regenerated numbers (the paper-facing output)."""
    print(f"\n=== {title} ===")
    if isinstance(rows, dict):
        for key, value in rows.items():
            print(f"  {key}: {value}")
        return
    for row in rows:
        print(f"  {row}")


@pytest.fixture(scope="session")
def quiet_stdout():
    """Factory: run a callable while suppressing server-side UDF prints."""
    def runner(callable_, *args, **kwargs):
        with contextlib.redirect_stdout(io.StringIO()):
            return callable_(*args, **kwargs)

    return runner


@pytest.fixture(scope="module")
def demo_environment(tmp_path_factory):
    """A demo server with the buggy mean_deviation and the CSV workload."""
    csv_dir = tmp_path_factory.mktemp("bench_csv")
    server, setup = demo_server(str(csv_dir), buggy_mean_deviation=True,
                                with_extras=True, n_files=5, rows_per_file=200)
    return server, setup


@pytest.fixture(scope="module")
def classifier_server():
    """A server with the Listing 1/3 classifier tables and UDFs."""
    database = Database(name="demo")
    setup_classifier_database(database, n_rows=80, seed=3)
    return DatabaseServer(database)


@pytest.fixture()
def bench_tmp_project(tmp_path):
    return tmp_path / "bench_project"
