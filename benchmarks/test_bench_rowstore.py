"""C5 — §2.4 "Extending to Other Databases": operator-at-a-time vs
tuple-at-a-time UDF execution.

MonetDB calls a Python UDF once with whole columns; row stores call it once
per tuple ("simulated by issuing a loop over the input tuples").  The sweep
shows the shape that motivates MonetDB's model: identical results, but the
per-row model pays one interpreter/UDF invocation per tuple, so its cost grows
linearly with the row count while the columnar model stays nearly flat.
"""

import pytest
from conftest import report

from repro.core.rowstore import ProcessingModelSimulator, results_equivalent
from repro.sqldb.database import Database

ROW_COUNTS = [100, 1_000, 5_000]


@pytest.fixture(scope="module")
def simulator_environment():
    database = Database()
    database.execute("CREATE TABLE measurements (i INTEGER, x DOUBLE)")
    table = database.storage.table("measurements")
    for index in range(max(ROW_COUNTS)):
        table.insert_row([index, index * 0.1])
    database.execute("CREATE FUNCTION weighted(i INTEGER, x DOUBLE) RETURNS DOUBLE "
                     "LANGUAGE PYTHON { return i * x + 1.0 }")
    # per-size prefix tables so the sweep isolates the row count
    for rows in ROW_COUNTS:
        database.execute(f"CREATE TABLE measurements_{rows} AS "
                         f"SELECT * FROM measurements LIMIT {rows}")
    return ProcessingModelSimulator(database)


@pytest.fixture(scope="module")
def results_table():
    rows: list[dict] = []
    yield rows
    report("C5: processing-model comparison", rows)


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_operator_at_a_time(benchmark, simulator_environment, results_table, rows):
    simulator = simulator_environment

    def run():
        return simulator.run_operator_at_a_time("weighted", f"measurements_{rows}",
                                                ["i", "x"])

    result = benchmark(run)
    results_table.append({
        "model": result.model, "rows": rows,
        "udf_invocations": result.invocations,
        "invocations_per_row": result.invocations_per_row,
    })
    assert result.invocations == 1
    assert len(result.values) == rows


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_tuple_at_a_time(benchmark, simulator_environment, results_table, rows):
    simulator = simulator_environment

    def run():
        return simulator.run_tuple_at_a_time("weighted", f"measurements_{rows}",
                                             ["i", "x"])

    result = benchmark(run)
    results_table.append({
        "model": result.model, "rows": rows,
        "udf_invocations": result.invocations,
        "invocations_per_row": result.invocations_per_row,
    })
    assert result.invocations == rows


def test_models_agree_and_overhead_shape(benchmark, simulator_environment):
    simulator = simulator_environment
    rows_small, rows_large = ROW_COUNTS[0], ROW_COUNTS[-1]

    def compare_both_sizes():
        return (simulator.compare("weighted", f"measurements_{rows_small}", ["i", "x"]),
                simulator.compare("weighted", f"measurements_{rows_large}", ["i", "x"]))

    small, large = benchmark.pedantic(compare_both_sizes, rounds=1, iterations=1)

    # identical results under both processing models (the §2.4 requirement)
    assert results_equivalent(small["operator-at-a-time"], small["tuple-at-a-time"])
    assert results_equivalent(large["operator-at-a-time"], large["tuple-at-a-time"])

    # the overhead shape: per-tuple invocation count grows linearly with rows,
    # columnar invocation count does not grow at all
    assert large["tuple-at-a-time"].invocations == rows_large
    assert large["operator-at-a-time"].invocations == 1
    slowdown_small = (small["tuple-at-a-time"].elapsed_seconds
                      / max(small["operator-at-a-time"].elapsed_seconds, 1e-9))
    slowdown_large = (large["tuple-at-a-time"].elapsed_seconds
                      / max(large["operator-at-a-time"].elapsed_seconds, 1e-9))
    report("C5: tuple-at-a-time slowdown factor", {
        f"{rows_small} rows": round(slowdown_small, 1),
        f"{rows_large} rows": round(slowdown_large, 1),
    })
    assert slowdown_large > 1.0
