"""L5/B — Scenario B: the buggy data loader (Listing 5).

Regenerates the demo's second scenario: the correct mean_deviation UDF over a
loader that silently drops the last CSV file.  The benchmark reports rows
loaded by the buggy vs fixed loader, the resulting statistic drift, and how the
debugger's watch expressions expose the off-by-one.
"""

import pytest
from conftest import report

from repro.core.debugger import DebugSession
from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.netproto.server import DatabaseServer
from repro.workloads.scenarios import ScenarioB


@pytest.fixture(scope="module")
def scenario_environment(tmp_path_factory):
    base = tmp_path_factory.mktemp("scenario_b_bench")
    scenario = ScenarioB(base / "csv", n_files=6, rows_per_file=50)
    server = DatabaseServer()
    scenario.setup(server)
    return scenario, server, base


def test_buggy_loader_row_count(benchmark, scenario_environment):
    scenario, server, _ = scenario_environment

    def load_with_buggy_loader():
        return server.database.execute(scenario.debug_query).row_count

    loaded = benchmark(load_with_buggy_loader)
    workload = scenario.workload
    deviation_full = workload.mean_deviation()
    deviation_buggy = workload.mean_deviation_excluding_last_file()
    report("Scenario B: buggy loader effect", {
        "csv_files": len(workload.files),
        "rows_in_directory": workload.total_rows,
        "rows_loaded_by_buggy_loader": loaded,
        "mean_deviation_full_data": deviation_full,
        "mean_deviation_over_buggy_load": deviation_buggy,
    })
    assert loaded == workload.rows_excluding_last_file
    assert loaded < workload.total_rows
    assert deviation_full != pytest.approx(deviation_buggy, abs=1e-9)


def test_debugger_exposes_off_by_one(benchmark, scenario_environment):
    scenario, server, base = scenario_environment
    settings = DevUDFSettings(debug_query=scenario.debug_query)
    plugin = DevUDFPlugin(DevUDFProject(base / "project"), settings, server=server)
    try:
        preparation = plugin.prepare_debug(scenario.udf_name)
        source = plugin.project.udf_source(scenario.udf_name)
        breakpoints = scenario.debugger_breakpoints(source)
        watches = scenario.debugger_watches()

        def debug_session():
            return DebugSession(preparation.script_path, breakpoints=breakpoints,
                                watches=watches,
                                working_directory=preparation.script_path.parent).run()

        outcome = benchmark.pedantic(debug_session, rounds=1, iterations=1)
        indexes = [stop.watches.get("current_index") for stop in outcome.stops
                   if isinstance(stop.watches.get("current_index"), int)]
        files_found = next((stop.watches.get("files_found") for stop in outcome.stops
                            if isinstance(stop.watches.get("files_found"), int)), None)
        report("Scenario B: what the debugger shows", {
            "files_found": files_found,
            "max_loop_index_reached": max(indexes) if indexes else None,
            "bug_visible": scenario.bug_visible_in_debugger(outcome),
        })
        assert scenario.bug_visible_in_debugger(outcome)
        assert files_found is not None and max(indexes) == files_found - 2
    finally:
        plugin.close()


def test_fixed_loader_reads_all_files(benchmark, scenario_environment):
    scenario, server, _ = scenario_environment

    def fix_and_reload():
        server.database.execute(scenario.fixed_create_sql())
        return server.database.execute(scenario.debug_query).row_count

    loaded = benchmark(fix_and_reload)
    report("Scenario B: after the fix", {
        "rows_loaded": loaded,
        "rows_in_directory": scenario.workload.total_rows,
    })
    assert loaded == scenario.workload.total_rows
