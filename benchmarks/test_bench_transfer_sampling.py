"""C2 — §2.1 claim: debugging on "a uniform random sample of the input data
... will alleviate the data transfer overhead".

Sweeps the sample fraction on the Scenario A extraction path: the server-side
extract function samples before the data leaves the server, so both the rows
and the bytes on the wire shrink roughly linearly with the fraction — and the
sampled debug run must still expose the Scenario A bug.
"""

import pytest
from conftest import report

from repro.core.debugger import DebugSession
from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.netproto.server import DatabaseServer
from repro.workloads.scenarios import ScenarioA

FRACTIONS = [1.0, 0.5, 0.1, 0.01]


@pytest.fixture(scope="module")
def environment(tmp_path_factory):
    base = tmp_path_factory.mktemp("sampling_bench")
    scenario = ScenarioA(base / "csv", n_files=5, rows_per_file=2_000)
    server = DatabaseServer()
    scenario.setup(server)
    settings = DevUDFSettings(debug_query=scenario.debug_query)
    plugin = DevUDFPlugin(DevUDFProject(base / "project"), settings, server=server)
    plugin.import_udfs([scenario.udf_name])
    yield scenario, plugin
    plugin.close()


@pytest.fixture(scope="module")
def results_table():
    rows: list[dict] = []
    yield rows
    report("C2: extraction cost vs sample fraction", rows)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_sampling_sweep(benchmark, environment, results_table, fraction):
    scenario, plugin = environment
    if fraction >= 1.0:
        plugin.configure(use_sampling=False, sample_fraction=None, sample_size=None)
    else:
        plugin.configure(use_sampling=True, sample_fraction=fraction, sample_size=None)

    def extract_inputs():
        return plugin.prepare_debug(scenario.udf_name)

    preparation = benchmark(extract_inputs)
    total_rows = scenario.workload.total_rows
    entry = {
        "fraction": fraction,
        "rows_extracted": preparation.inputs.rows_extracted,
        "wire_bytes": preparation.inputs.wire_bytes,
        "input_bin_bytes": preparation.blob_stats.stored_bytes,
    }
    results_table.append(entry)
    benchmark.extra_info.update(entry)

    expected = total_rows if fraction >= 1.0 else round(total_rows * fraction)
    assert preparation.inputs.rows_extracted == pytest.approx(expected, abs=1)


def test_rows_and_bytes_scale_with_fraction(benchmark, environment):
    """The series shape: bytes transferred track the sample fraction."""
    scenario, plugin = environment

    def measure():
        measurements = {}
        for fraction in FRACTIONS:
            if fraction >= 1.0:
                plugin.configure(use_sampling=False, sample_fraction=None,
                                 sample_size=None)
            else:
                plugin.configure(use_sampling=True, sample_fraction=fraction,
                                 sample_size=None)
            preparation = plugin.prepare_debug(scenario.udf_name)
            measurements[fraction] = preparation.blob_stats.stored_bytes
        return measurements

    measurements = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("C2: input.bin bytes per sample fraction", measurements)
    assert measurements[0.01] < measurements[0.1] < measurements[0.5] < measurements[1.0]
    # a 10% sample is roughly an order of magnitude smaller than the full input
    assert measurements[0.1] < measurements[1.0] / 5


def test_sampled_debug_run_still_exposes_the_bug(benchmark, environment):
    scenario, plugin = environment
    plugin.configure(use_sampling=True, sample_fraction=0.1, sample_size=None)
    preparation = plugin.prepare_debug(scenario.udf_name)
    source = plugin.project.udf_source(scenario.udf_name)

    def sampled_debug_session():
        return DebugSession(
            preparation.script_path,
            breakpoints=scenario.debugger_breakpoints(source),
            watches=scenario.debugger_watches(),
            working_directory=preparation.script_path.parent,
        ).run()

    outcome = benchmark.pedantic(sampled_debug_session, rounds=1, iterations=1)
    visible = scenario.bug_visible_in_debugger(outcome)
    report("C2: bug visibility on a 10% sample", {
        "rows_in_sample": preparation.inputs.rows_extracted,
        "bug_visible": visible,
    })
    assert visible
