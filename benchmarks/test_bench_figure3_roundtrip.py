"""F3 — Figure 3(a)/(b): the Import UDFs / Export UDFs round trip.

The benchmark drives the full cycle against a populated server: import every
Python UDF on the server into a fresh project, then export them all back, and
checks the round trip is lossless (bodies unchanged, functions still runnable).
"""

import pytest
from conftest import report

from repro.core.exporter import UDFExporter
from repro.core.importer import UDFImporter
from repro.core.project import DevUDFProject
from repro.core.transform import normalise_body
from repro.netproto.client import Connection


@pytest.fixture(scope="module")
def connection(demo_environment):
    server, _ = demo_environment
    conn = Connection.connect_in_process(server)
    yield conn
    conn.close()


def test_import_export_roundtrip(benchmark, connection, demo_environment, tmp_path):
    server, _ = demo_environment

    def roundtrip() -> tuple[int, int]:
        project = DevUDFProject(tmp_path / "roundtrip_project", use_vcs=False)
        importer = UDFImporter(connection, project)
        exporter = UDFExporter(connection, project)
        imported = importer.import_udfs(None, commit_message=None)
        exported = exporter.export_udfs(None, commit_message=None)
        return len(imported.imported), len(exported.exported)

    imported_count, exported_count = benchmark(roundtrip)

    # lossless: every UDF's body on the server equals what a fresh import sees
    project = DevUDFProject(tmp_path / "verify", use_vcs=False)
    importer = UDFImporter(connection, project)
    signatures = importer.fetch_signatures()
    importer.import_udfs(None, commit_message=None)
    mismatches = []
    for name, signature in signatures.items():
        recovered = project.udf_signature(signature.name)
        if normalise_body(recovered.body) != normalise_body(signature.body):
            mismatches.append(name)

    report("Figure 3: import/export round trip", {
        "python_udfs_on_server": len(signatures),
        "imported": imported_count,
        "exported": exported_count,
        "body_mismatches_after_roundtrip": len(mismatches),
    })
    assert imported_count == len(signatures)
    assert exported_count >= imported_count
    assert not mismatches
    # the exported functions still run on the server
    assert connection.execute("SELECT add_one(41)").scalar() == 42
    benchmark.extra_info["udf_count"] = imported_count
