"""T1 — Table 1: most popular development environments.

The table is static survey data (the paper's reference [2]); the benchmark
regenerates its rows and the derived statistic the argument rests on (IDE
share vs text-editor share) and times the (trivial) computation so the harness
has a stable baseline entry.
"""

from conftest import report

from repro.core.surveys import ide_vs_text_editor_share, pycharm_rank, table_rows


def test_table1_rows_and_derived_shares(benchmark):
    rows = benchmark(table_rows)
    shares = ide_vs_text_editor_share()

    report("Table 1: Most Popular Development Environments",
           [{"name": name, "market_share": share, "type": kind}
            for name, share, kind in rows])
    report("Derived shares (the paper's argument)", shares)

    # identical to the paper: 12 rows, IDEs dominate text editors, PyCharm is
    # the least popular environment the table lists.
    assert len(rows) == 12
    assert rows[0] == ("Eclipse", 25.2, "IDE")
    assert shares["IDE"] == 77.7
    assert shares["Text Editor"] == 14.5
    assert shares["IDE"] > 5 * shares["Text Editor"]
    assert pycharm_rank() == 12

    benchmark.extra_info["ide_share"] = shares["IDE"]
    benchmark.extra_info["text_editor_share"] = shares["Text Editor"]
