#!/usr/bin/env python
"""Engine micro-benchmark entry point: emits a machine-readable BENCH_sqldb.json.

Measures rows/sec for the four operator hot paths — scan, filter, equi-join,
and GROUP BY — at 10k and 100k rows (joins also at the 2,000 x 2,000 shape the
vectorisation PR used as its before/after evidence), so successive PRs have a
perf trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output BENCH_sqldb.json]

The seed (pre-vectorisation) baselines recorded in the output were measured
on the same workload shapes with the nested-loop/per-group engine at the
commit tagged ``v0``.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.sqldb.database import Database

ROW_COUNTS = [10_000, 100_000]
JOIN_SIDE_ROWS = 2_000
GROUP_COUNT = 500

#: Milliseconds measured for the same workloads on the seed engine (v0),
#: kept here so the report can state the speedup without re-running the
#: (extremely slow) nested-loop join.
SEED_BASELINE_MS = {
    "scan_100000": 6.2,
    "filter_100000": 28.2,
    "group_by_100000": 84.6,
    "join_2000": 32080.5,
}


def build_database() -> Database:
    database = Database()
    database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
    table = database.storage.table("big")
    rng = random.Random(7)
    for index in range(max(ROW_COUNTS)):
        table.insert_row([index % GROUP_COUNT, rng.random()])
    for rows in ROW_COUNTS:
        database.execute(
            f"CREATE TABLE big_{rows} AS SELECT k, v FROM big LIMIT {rows}")

    for rows in [JOIN_SIDE_ROWS] + ROW_COUNTS:
        database.execute(f"CREATE TABLE join_l_{rows} (id INTEGER, x DOUBLE)")
        database.execute(f"CREATE TABLE join_r_{rows} (id INTEGER, y DOUBLE)")
        left = database.storage.table(f"join_l_{rows}")
        right = database.storage.table(f"join_r_{rows}")
        left.column("id").extend(range(rows))
        left.column("x").extend(index * 0.5 for index in range(rows))
        right.column("id").extend(range(rows))
        right.column("y").extend(index * 0.25 for index in range(rows))
    return database


def timed(database: Database, sql: str, *, repeat: int = 5) -> tuple[float, int]:
    """Median wall-clock seconds per execution plus the result row count."""
    database.execute(sql)  # warm the storage layer's array caches
    samples = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = database.execute(sql)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2], result.row_count


def run() -> dict:
    database = build_database()
    results: dict[str, dict] = {}

    def record(name: str, sql: str, input_rows: int) -> None:
        seconds, out_rows = timed(database, sql)
        entry = {
            "sql": sql,
            "input_rows": input_rows,
            "output_rows": out_rows,
            "seconds": round(seconds, 6),
            "rows_per_sec": round(input_rows / seconds) if seconds > 0 else None,
        }
        baseline = SEED_BASELINE_MS.get(name)
        if baseline is not None:
            entry["seed_baseline_ms"] = baseline
            entry["speedup_vs_seed"] = round(baseline / (seconds * 1000), 1)
        results[name] = entry

    for rows in ROW_COUNTS:
        record(f"scan_{rows}", f"SELECT k, v FROM big_{rows}", rows)
        record(f"filter_{rows}", f"SELECT v FROM big_{rows} WHERE v > 0.5", rows)
        record(f"group_by_{rows}",
               f"SELECT k, COUNT(*), SUM(v), AVG(v) FROM big_{rows} GROUP BY k",
               rows)
        record(f"join_{rows}",
               f"SELECT l.id, r.y FROM join_l_{rows} l JOIN join_r_{rows} r "
               f"ON l.id = r.id", rows)
    record(f"join_{JOIN_SIDE_ROWS}",
           f"SELECT l.id, r.y FROM join_l_{JOIN_SIDE_ROWS} l "
           f"JOIN join_r_{JOIN_SIDE_ROWS} r ON l.id = r.id",
           JOIN_SIDE_ROWS)

    return {
        "suite": "sqldb-vectorized-engine",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "row_counts": ROW_COUNTS,
        "group_count": GROUP_COUNT,
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_sqldb.json",
                        help="path of the JSON report (default: BENCH_sqldb.json)")
    args = parser.parse_args()
    report = run()
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for name, entry in report["results"].items():
        speedup = entry.get("speedup_vs_seed")
        suffix = f"  ({speedup}x vs seed)" if speedup else ""
        print(f"  {name:>16}: {entry['seconds'] * 1000:8.2f} ms  "
              f"{entry['rows_per_sec']:>12,} rows/sec{suffix}")


if __name__ == "__main__":
    main()
