#!/usr/bin/env python
"""Micro-benchmark entry point: emits machine-readable BENCH_*.json reports.

Three suites, selectable with ``--suite``:

* ``sqldb``    — engine operator hot paths (scan, filter, equi-join, GROUP BY)
  at 10k and 100k rows, written to ``BENCH_sqldb.json``.  The seed
  (pre-vectorisation) baselines recorded in the output were measured on the
  same workload shapes with the nested-loop/per-group engine at ``v0``.
* ``netproto`` — result-set transfer cost: the columnar wire format (typed
  column buffers, PR 2) against the legacy per-value codec, with and without
  compression, at 10k and 100k rows, written to ``BENCH_netproto.json``.
  The legacy baselines are measured live so the speedup is same-machine.
* ``persist``  — durable storage: insert throughput with write-ahead logging
  (vs in-memory, and with per-statement fsync), checkpoint time, cold-open
  and WAL-recovery time at 1M rows, written to ``BENCH_persist.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py
        [--suite {sqldb,netproto,persist,all}] [--quick] [--output-dir DIR]

``--quick`` shrinks row counts and repeats so a CI smoke run finishes in a
couple of seconds; committed BENCH_*.json files should come from a full run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.netproto.compression import CODEC_NONE, CODEC_ZLIB
from repro.netproto.messages import (
    ColumnarResultAssembler,
    columnar_result_messages,
    decode_result,
    encode_result,
)
from repro.sqldb.database import Database
from repro.sqldb.result import QueryResult, ResultColumn
from repro.sqldb.types import SQLType

GROUP_COUNT = 500
JOIN_SIDE_ROWS = 2_000
STRING_CARDINALITY = 500

#: Observability must stay nearly free: the instrumented engine may cost at
#: most this factor over ``observability=False`` on the acceptance workload.
#: ``--quick`` runs enforce the gate (the benchmark exits non-zero beyond it),
#: with headroom over the ~3% design target so CI noise does not flake.
OBS_OVERHEAD_BUDGET = 1.15

#: Milliseconds measured for the same workloads on the seed engine (v0),
#: kept here so the report can state the speedup without re-running the
#: (extremely slow) nested-loop join.
SEED_BASELINE_MS = {
    "scan_100000": 6.2,
    "filter_100000": 28.2,
    "group_by_100000": 84.6,
    "join_2000": 32080.5,
}

#: Milliseconds measured for the string/NULL workloads on the pre-vector
#: engine (PR 2 state: object-array fallback for strings and NULL-bearing
#: columns), same machine; the unified vector representation PR is the
#: first one these run vectorised.
PRE_VECTOR_BASELINE_MS = {
    "str_filter_100000": 26.3,
    "str_group_by_100000": 19.3,
    "null_sum_100000": 22.8,
    "null_group_sum_100000": 29.1,
}


def median_seconds(fn, *, repeat: int) -> float:
    fn()  # warm caches / allocators
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


# --------------------------------------------------------------------------- #
# sqldb suite
# --------------------------------------------------------------------------- #
def build_database(row_counts: list[int]) -> Database:
    database = Database()
    database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
    table = database.storage.table("big")
    rng = random.Random(7)
    for index in range(max(row_counts)):
        table.insert_row([index % GROUP_COUNT, rng.random()])
    for rows in row_counts:
        database.execute(
            f"CREATE TABLE big_{rows} AS SELECT k, v FROM big LIMIT {rows}")

    for rows in [JOIN_SIDE_ROWS] + row_counts:
        database.execute(f"CREATE TABLE join_l_{rows} (id INTEGER, x DOUBLE)")
        database.execute(f"CREATE TABLE join_r_{rows} (id INTEGER, y DOUBLE)")
        left = database.storage.table(f"join_l_{rows}")
        right = database.storage.table(f"join_r_{rows}")
        left.column("id").extend(range(rows))
        left.column("x").extend(index * 0.5 for index in range(rows))
        right.column("id").extend(range(rows))
        right.column("y").extend(index * 0.25 for index in range(rows))

    for rows in row_counts:
        # string + NULL-heavy workloads: exercise the dictionary-encoded
        # and validity-masked vector paths
        database.execute(
            f"CREATE TABLE str_{rows} (name STRING, v DOUBLE, nv DOUBLE)")
        table = database.storage.table(f"str_{rows}")
        table.column("name").extend(
            f"cat_{index % STRING_CARDINALITY}" for index in range(rows))
        table.column("v").extend(rng.random() for _ in range(rows))
        table.column("nv").extend(
            None if index % 2 else float(index % 97) for index in range(rows))
    return database


def run_sqldb(*, quick: bool = False) -> dict:
    row_counts = [1_000, 10_000] if quick else [10_000, 100_000]
    repeat = 2 if quick else 5
    database = build_database(row_counts)
    results: dict[str, dict] = {}

    def record(name: str, sql: str, input_rows: int) -> None:
        out_rows = database.execute(sql).row_count
        seconds = median_seconds(lambda: database.execute(sql), repeat=repeat)
        entry = {
            "sql": sql,
            "input_rows": input_rows,
            "output_rows": out_rows,
            "seconds": round(seconds, 6),
            "rows_per_sec": round(input_rows / seconds) if seconds > 0 else None,
        }
        baseline = SEED_BASELINE_MS.get(name)
        if baseline is not None:
            entry["seed_baseline_ms"] = baseline
            entry["speedup_vs_seed"] = round(baseline / (seconds * 1000), 1)
        pre_vector = PRE_VECTOR_BASELINE_MS.get(name)
        if pre_vector is not None:
            entry["pre_vector_baseline_ms"] = pre_vector
            entry["speedup_vs_pre_vector"] = round(
                pre_vector / (seconds * 1000), 1)
        results[name] = entry

    for rows in row_counts:
        record(f"scan_{rows}", f"SELECT k, v FROM big_{rows}", rows)
        record(f"filter_{rows}", f"SELECT v FROM big_{rows} WHERE v > 0.5", rows)
        record(f"group_by_{rows}",
               f"SELECT k, COUNT(*), SUM(v), AVG(v) FROM big_{rows} GROUP BY k",
               rows)
        record(f"join_{rows}",
               f"SELECT l.id, r.y FROM join_l_{rows} l JOIN join_r_{rows} r "
               f"ON l.id = r.id", rows)
        record(f"str_filter_{rows}",
               f"SELECT v FROM str_{rows} WHERE name = 'cat_123'", rows)
        record(f"str_group_by_{rows}",
               f"SELECT name, COUNT(*), SUM(v) FROM str_{rows} GROUP BY name",
               rows)
        record(f"null_sum_{rows}",
               f"SELECT SUM(nv), COUNT(nv), AVG(nv) FROM str_{rows}", rows)
        record(f"null_group_sum_{rows}",
               f"SELECT name, SUM(nv) FROM str_{rows} GROUP BY name", rows)
    record(f"join_{JOIN_SIDE_ROWS}",
           f"SELECT l.id, r.y FROM join_l_{JOIN_SIDE_ROWS} l "
           f"JOIN join_r_{JOIN_SIDE_ROWS} r ON l.id = r.id",
           JOIN_SIDE_ROWS)

    results.update(run_parallel(quick=quick))
    results.update(run_obs_overhead(quick=quick))

    return {
        "suite": "sqldb-vectorized-engine",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "row_counts": row_counts,
        "group_count": GROUP_COUNT,
        "results": results,
    }


# --------------------------------------------------------------------------- #
# parallel (morsel-driven) suite
# --------------------------------------------------------------------------- #
def run_parallel(*, quick: bool = False) -> dict:
    """Morsel-parallel execution: the same pipeline at workers 1/2/4.

    The acceptance workload is the 1M-row scan-filter-aggregate; join-probe
    and plain hash aggregation ride along.  Each worker count gets its own
    Database over one shared dataset (column lists are reused, so only the
    cached scans are rebuilt per engine).  Speedups are relative to the
    same build's ``workers=1`` run — on a single-core container they hover
    around 1x (``cpu_count`` is recorded alongside for honest reading).
    """
    from repro.sqldb.database import Database

    rows = 50_000 if quick else 1_000_000
    worker_counts = [1, 2] if quick else [1, 2, 4]
    repeat = 2 if quick else 5
    rng = random.Random(11)
    keys = [i % GROUP_COUNT for i in range(rows)]
    values = [rng.random() for _ in range(rows)]
    build_ids = list(range(0, rows, 100))
    build_payload = [i * 0.5 for i in build_ids]

    workloads = {
        "scan_filter_agg": ("SELECT k, COUNT(*), SUM(v) FROM big "
                            "WHERE v > 0.5 GROUP BY k"),
        "group_by": "SELECT k, SUM(v), AVG(v) FROM big GROUP BY k",
        "join_probe": ("SELECT b.k, s.y FROM big b JOIN small s "
                       "ON b.k = s.id WHERE b.v > 0.9"),
    }

    results: dict[str, dict] = {}
    baseline_seconds: dict[str, float] = {}
    for workers in worker_counts:
        database = Database(workers=workers)
        database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
        table = database.storage.table("big")
        table.column("k").extend(keys)
        table.column("v").extend(values)
        database.execute("CREATE TABLE small (id INTEGER, y DOUBLE)")
        small = database.storage.table("small")
        small.column("id").extend(build_ids)
        small.column("y").extend(build_payload)
        for name, sql in workloads.items():
            seconds = median_seconds(lambda: database.execute(sql),
                                     repeat=repeat)
            entry = {
                "sql": sql,
                "workers": workers,
                "input_rows": rows,
                "seconds": round(seconds, 6),
                "rows_per_sec": round(rows / seconds) if seconds > 0 else None,
            }
            if workers == 1:
                baseline_seconds[name] = seconds
            else:
                entry["speedup_vs_1_worker"] = round(
                    baseline_seconds[name] / seconds, 2)
            results[f"parallel_{name}_{rows}_w{workers}"] = entry
        database.close()
    return results


# --------------------------------------------------------------------------- #
# observability overhead
# --------------------------------------------------------------------------- #
def run_obs_overhead(*, quick: bool = False) -> dict:
    """Cost of default-on metrics: instrumented vs ``observability=False``.

    The acceptance workload is the scan-filter-aggregate pipeline; both
    engines run the identical query over the identical column data, so the
    delta is exactly the per-query histogram observations plus the per-morsel
    counter bumps.  The ratio is reported honestly (it hovers around 1.0 and
    can dip below on a noisy machine); ``--quick`` turns the budget into a CI
    gate via the process exit code.
    """
    rows = 100_000 if quick else 1_000_000
    repeat = 5 if quick else 7
    rng = random.Random(17)
    keys = [i % GROUP_COUNT for i in range(rows)]
    values = [rng.random() for _ in range(rows)]
    sql = "SELECT k, COUNT(*), SUM(v) FROM big WHERE v > 0.5 GROUP BY k"

    def measure(observability: bool) -> float:
        database = Database(workers=1, observability=observability)
        database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
        table = database.storage.table("big")
        table.column("k").extend(keys)
        table.column("v").extend(values)
        seconds = median_seconds(lambda: database.execute(sql), repeat=repeat)
        database.close()
        return seconds

    bare_s = measure(False)
    instrumented_s = measure(True)
    ratio = instrumented_s / max(bare_s, 1e-9)
    return {"obs_overhead": {
        "sql": sql,
        "input_rows": rows,
        "bare_seconds": round(bare_s, 6),
        "instrumented_seconds": round(instrumented_s, 6),
        "overhead_ratio": round(ratio, 4),
        "overhead_percent": round((ratio - 1.0) * 100, 2),
        "budget_ratio": OBS_OVERHEAD_BUDGET,
        "within_budget": ratio <= OBS_OVERHEAD_BUDGET,
    }}


# --------------------------------------------------------------------------- #
# persist (durable storage) suite
# --------------------------------------------------------------------------- #
def run_persist(*, quick: bool = False) -> dict:
    """Durable-storage costs: WAL-logged inserts, checkpoint, open, recovery.

    The acceptance workload is the 1M-row table (``--quick`` shrinks it for
    CI): bulk-load, ``checkpoint`` (segment encode + atomic replace),
    cold-open from the image (segment decode through the shared wire path)
    and recovery-open with a WAL tail to replay.  Insert throughput is
    measured as whole INSERT statements against a fresh engine per mode so
    the WAL's cost shows up as the delta against the in-memory run.
    """
    from repro.sqldb.persist import wal_path_for

    rows = 50_000 if quick else 1_000_000
    insert_rows = 5_000 if quick else 50_000
    recovery_rows = 2_000 if quick else 20_000
    batch_rows = 500
    repeat = 2 if quick else 3
    results: dict[str, dict] = {}
    workdir = Path(tempfile.mkdtemp(prefix="bench_persist_"))

    def timed(fn) -> float:
        samples = []
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    def cleanup(path: Path) -> None:
        for victim in (path, wal_path_for(path)):
            if victim.exists():
                victim.unlink()

    try:
        # ---- insert-with-WAL throughput ------------------------------- #
        statements = ["CREATE TABLE w (i INTEGER, s STRING, v DOUBLE)"]
        for start in range(0, insert_rows, batch_rows):
            values = ", ".join(
                f"({i}, 'cat_{i % 50}', {i * 0.5})"
                for i in range(start, start + batch_rows))
            statements.append(f"INSERT INTO w VALUES {values}")

        def run_inserts(**db_kwargs) -> None:
            database = Database(**db_kwargs)
            for sql in statements:
                database.execute(sql)
            if database.persistence is not None:
                database.persistence.wal.flush()
                database.persistence.close(checkpoint=False)
            path = db_kwargs.get("path")
            if path is not None:
                cleanup(Path(path))

        memory_s = timed(lambda: run_inserts())
        wal_s = timed(lambda: run_inserts(path=workdir / "ins.db"))
        wal_sync_s = timed(lambda: run_inserts(path=workdir / "ins.db",
                                               wal_fsync_batch=1))
        for name, seconds in (("memory", memory_s), ("wal_batched", wal_s),
                              ("wal_fsync_per_statement", wal_sync_s)):
            results[f"insert_{insert_rows}_{name}"] = {
                "rows": insert_rows,
                "seconds": round(seconds, 6),
                "rows_per_sec": round(insert_rows / seconds)
                if seconds > 0 else None,
                "wal_overhead_vs_memory": round(seconds / memory_s, 2)
                if name != "memory" else 1.0,
            }

        # ---- checkpoint / cold open / recovery at `rows` ---------------- #
        base_path = workdir / "big.db"
        database = Database(path=base_path)
        database.execute(
            "CREATE TABLE big (k INTEGER, name STRING, v DOUBLE)")
        table = database.storage.table("big")
        rng = random.Random(13)
        table.column("k").extend(i % GROUP_COUNT for i in range(rows))
        table.column("name").extend(
            f"cat_{i % STRING_CARDINALITY}" for i in range(rows))
        table.column("v").extend(rng.random() for _ in range(rows))

        checkpoint_s = timed(database.checkpoint)
        stats = database.persistence.last_checkpoint
        results[f"checkpoint_{rows}"] = {
            "rows": rows,
            "seconds": round(checkpoint_s, 6),
            "rows_per_sec": round(rows / checkpoint_s)
            if checkpoint_s > 0 else None,
            "file_bytes": stats.file_bytes,
            "segments": stats.segments,
        }
        database.close()

        # the timed body must measure only the open (image decode + WAL
        # replay): shut down without the auto-checkpoint a full close runs
        def open_and_discard(path: Path, expected_rows: int) -> None:
            reopened = Database(path=path)
            assert reopened.row_count("big") == expected_rows
            reopened.persistence.close(checkpoint=False)
            reopened.scheduler.shutdown()

        cold_open_s = timed(lambda: open_and_discard(base_path, rows))
        results[f"cold_open_{rows}"] = {
            "rows": rows,
            "seconds": round(cold_open_s, 6),
            "rows_per_sec": round(rows / cold_open_s)
            if cold_open_s > 0 else None,
        }

        # recovery: the checkpointed image plus a WAL tail to replay
        live = Database(path=base_path)
        for start in range(0, recovery_rows, batch_rows):
            values = ", ".join(
                f"({i}, 'cat_{i % 50}', {i * 0.25})"
                for i in range(start, start + batch_rows))
            live.execute(f"INSERT INTO big VALUES {values}")
        live.persistence.close(checkpoint=False)
        crash_path = workdir / "crash.db"

        samples = []
        for _ in range(repeat):
            # restore the crash snapshot outside the timed region
            shutil.copy(base_path, crash_path)
            shutil.copy(wal_path_for(base_path), wal_path_for(crash_path))
            start_time = time.perf_counter()
            open_and_discard(crash_path, rows + recovery_rows)
            samples.append(time.perf_counter() - start_time)
        samples.sort()
        recovery_s = samples[len(samples) // 2]
        results[f"recovery_open_{rows}"] = {
            "rows": rows,
            "wal_rows_replayed": recovery_rows,
            "seconds": round(recovery_s, 6),
            "cold_open_seconds": round(cold_open_s, 6),
            "replay_seconds_estimate": round(
                max(recovery_s - cold_open_s, 0.0), 6),
        }

        # ---- VERIFY scrub / BACKUP TO over the live database ------------ #
        total_rows = rows + recovery_rows
        scrub = Database(path=base_path)
        verify_s = timed(scrub.verify)
        report = scrub.verify()
        results[f"verify_{total_rows}"] = {
            "rows": total_rows,
            "seconds": round(verify_s, 6),
            "rows_per_sec": round(total_rows / verify_s)
            if verify_s > 0 else None,
            "wal_records_checked": report.wal_records,
            "ok": report.ok,
        }

        backup_target = workdir / "copyout.db"

        def run_backup() -> None:
            if backup_target.exists():
                backup_target.unlink()
            scrub.backup(backup_target)

        backup_s = timed(run_backup)
        backup_bytes = backup_target.stat().st_size
        results[f"backup_{total_rows}"] = {
            "rows": total_rows,
            "seconds": round(backup_s, 6),
            "rows_per_sec": round(total_rows / backup_s)
            if backup_s > 0 else None,
            "file_bytes": backup_bytes,
        }
        scrub.persistence.close(checkpoint=False)
        scrub.scheduler.shutdown()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "suite": "persist-durable-storage",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "rows": rows,
        "results": results,
    }


# --------------------------------------------------------------------------- #
# netproto suite
# --------------------------------------------------------------------------- #
def build_transfer_result(rows: int) -> QueryResult:
    """The acceptance workload: a 2-column numeric result, list-backed so the
    columnar path pays its buffer-export cost inside the measurement."""
    rng = random.Random(7)
    return QueryResult([
        ResultColumn("k", SQLType.INTEGER, [i % GROUP_COUNT for i in range(rows)]),
        ResultColumn("v", SQLType.DOUBLE, [rng.random() for _ in range(rows)]),
    ])


def build_string_transfer_result(rows: int, cardinality: int = 50) -> QueryResult:
    """A low-cardinality string column: the TAG_DICT acceptance workload."""
    return QueryResult([
        ResultColumn("s", SQLType.STRING,
                     [f"name_{i % cardinality}" for i in range(rows)]),
    ])


def _bench_legacy(result: QueryResult, codec: str, repeat: int) -> dict:
    compression = None if codec == CODEC_NONE else codec
    encoded = encode_result(result, compression=compression)
    encode_s = median_seconds(
        lambda: encode_result(result, compression=compression), repeat=repeat)
    decode_s = median_seconds(
        lambda: decode_result(encoded.blob, compressed=encoded.compressed,
                              encrypted=False), repeat=repeat)
    return {
        "encode_seconds": round(encode_s, 6),
        "decode_seconds": round(decode_s, 6),
        "encode_decode_seconds": round(encode_s + decode_s, 6),
        "wire_bytes": len(encoded.blob),
        "raw_bytes": encoded.stats.raw_bytes,
    }


def _bench_columnar(result: QueryResult, codec: str, repeat: int,
                    protocol_version: int = 3) -> dict:
    def encode() -> list[dict]:
        return list(columnar_result_messages(result, compression=codec,
                                             protocol_version=protocol_version))

    messages = encode()

    def decode() -> QueryResult:
        assembler = ColumnarResultAssembler(messages[0])
        for message in messages[1:]:
            assembler.add_chunk(message)
        return assembler.finish()[0]

    def decode_materialised() -> QueryResult:
        decoded = decode()
        for column in decoded.columns:
            column.values  # force Python-object materialisation
        return decoded

    encode_s = median_seconds(encode, repeat=repeat)
    decode_s = median_seconds(decode, repeat=repeat)
    materialise_s = median_seconds(decode_materialised, repeat=repeat)
    raw_bytes = sum(m["stats"]["raw_bytes"] for m in messages[1:])
    return {
        "encode_seconds": round(encode_s, 6),
        "decode_seconds": round(decode_s, 6),
        "encode_decode_seconds": round(encode_s + decode_s, 6),
        "decode_materialised_seconds": round(materialise_s, 6),
        "wire_bytes": sum(len(m["payload"]) for m in messages[1:]),
        "raw_bytes": raw_bytes,
        "chunks": len(messages) - 1,
    }


def run_concurrency(*, quick: bool = False) -> dict:
    """Concurrent clients against one server: throughput and tail latency.

    N simulated clients (threads over in-process transports, so the protocol
    and admission-control paths are measured without socket noise) share a
    fixed total query budget.  The server keeps its default 8 execution
    slots; at N=256 most clients sit in the admission queue, so p99 shows
    the queueing delay an overloaded server hands out instead of failures.
    """
    import threading as _threading

    from repro.netproto.client import Connection
    from repro.netproto.server import DatabaseServer, ServerLimits

    rows = 5_000 if quick else 20_000
    client_counts = [1, 8] if quick else [1, 16, 256]
    total_queries = 64 if quick else 768
    rng = random.Random(7)
    # mirror the server CLI defaults: plan cache on, 8 MiB result cache —
    # the repeated identical read-only aggregate is exactly the workload
    # the result cache exists for
    database = Database(workers=2, result_cache_bytes=8 << 20)
    database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
    table = database.storage.table("big")
    table.column("k").extend(i % GROUP_COUNT for i in range(rows))
    table.column("v").extend(rng.random() for _ in range(rows))
    limits = ServerLimits(max_concurrent_queries=8, max_queue_depth=512,
                          max_queue_wait=60.0)
    server = DatabaseServer(database, limits=limits)
    sql = "SELECT COUNT(*), SUM(v) FROM big WHERE v > 0.5"

    results: dict[str, dict] = {}
    for clients in client_counts:
        per_client = max(1, total_queries // clients)
        barrier = _threading.Barrier(clients + 1)
        samples: list[float] = []
        lock = _threading.Lock()

        def client_worker() -> None:
            connection = Connection.connect_in_process(server)
            local: list[float] = []
            barrier.wait()
            for _ in range(per_client):
                start = time.perf_counter()
                connection.execute(sql)
                local.append(time.perf_counter() - start)
            connection.close()
            with lock:
                samples.extend(local)

        threads = [_threading.Thread(target=client_worker)
                   for _ in range(clients)]
        rejected_before = server.stats.queries_rejected
        for thread in threads:
            thread.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        samples.sort()
        executed = len(samples)
        results[f"concurrency_{clients}_clients"] = {
            "clients": clients,
            "queries_per_client": per_client,
            "queries_total": executed,
            "wall_seconds": round(wall, 6),
            "queries_per_sec": round(executed / wall) if wall > 0 else None,
            "latency_p50_ms": round(samples[executed // 2] * 1000, 3),
            "latency_p99_ms": round(
                samples[min(executed - 1, int(executed * 0.99))] * 1000, 3),
            "latency_max_ms": round(samples[-1] * 1000, 3),
            "rejected": server.stats.queries_rejected - rejected_before,
            "execution_slots": limits.max_concurrent_queries,
            "plan_cache": True,
            "result_cache": True,
            # default-on observability: every query lands in the server's
            # latency histogram and is trace-tracked for the slow-query ring
            "stats_histograms": True,
            "slow_query_tracking_ms": server.slow_query_ms,
        }
    counters = database.cache_counters()
    results["concurrency_cache_counters"] = {
        "plan_cache_hits": counters["plan_cache_hits"],
        "result_cache_hits": counters["result_cache_hits"],
    }
    database.close()
    return results


def run_prepared(*, quick: bool = False) -> dict:
    """The repeated-query fast path: cold parse vs plan cache vs
    PREPARE/EXECUTE vs the result cache, over the full wire protocol.

    Each mode gets a fresh database so caches cannot leak between modes.
    ``cold`` disables every cache and varies the literal so each query is
    parsed and planned from scratch; ``prepared`` binds a new argument per
    execution (so the *result* cache cannot help and the win is parse/plan
    elimination); ``result_cached`` repeats the identical statement.
    """
    from repro.netproto.client import Connection
    from repro.netproto.server import DatabaseServer

    rows = 5_000 if quick else 20_000
    repeats = 60 if quick else 400
    rng = random.Random(11)
    # an expression-heavy dashboard-style template: the select list is wide
    # on purpose (PREPARE targets exactly the regime where parsing a complex
    # statement rivals executing it), while the k = ? filter keeps the
    # post-filter evaluation cost per execution small
    template = (
        "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v), "
        "SUM(CASE WHEN v > 0.9 THEN 4 WHEN v > 0.7 THEN 3 "
        "WHEN v > 0.5 THEN 2 WHEN v > 0.3 THEN 1 ELSE 0 END), "
        "AVG(CASE WHEN v < 0.1 THEN v * 100.0 WHEN v < 0.2 THEN v * 50.0 "
        "WHEN v < 0.4 THEN v * 25.0 ELSE v END), "
        "MIN(v * v + 2.0 * v + 1.0), MAX(v * v - 2.0 * v + 1.0), "
        "SUM(CASE WHEN v >= 0.25 AND v <= 0.75 THEN 1 ELSE 0 END) "
        "FROM big WHERE k = {arg} AND v >= 0.0")

    def fresh_server(**db_kwargs):
        database = Database(workers=1, **db_kwargs)
        database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
        table = database.storage.table("big")
        table.column("k").extend(i % GROUP_COUNT for i in range(rows))
        table.column("v").extend(rng.random() for _ in range(rows))
        return database, DatabaseServer(database)

    def measure(run_one) -> float:
        samples = []
        for index in range(repeats):
            start = time.perf_counter()
            run_one(index)
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    results: dict[str, dict] = {}

    # cold: no caches, distinct literal every time -> full parse + plan
    database, server = fresh_server(plan_cache=0)
    connection = Connection.connect_in_process(server)
    cold_s = measure(lambda i: connection.execute(
        template.format(arg=i % GROUP_COUNT)))
    connection.close()
    database.close()

    # plan-cached: identical statement, plan cache on, result cache off
    database, server = fresh_server()
    connection = Connection.connect_in_process(server)
    warm_sql = template.format(arg=7)
    connection.execute(warm_sql)
    plan_cached_s = measure(lambda i: connection.execute(warm_sql))
    plan_hits = database.cache_counters()["plan_cache_hits"]
    connection.close()
    database.close()

    # prepared: parse once, bind a different argument per execution
    database, server = fresh_server()
    connection = Connection.connect_in_process(server)
    handle = connection.prepare(
        "fastpath", template.format(arg="?"))
    prepared_s = measure(lambda i: handle.execute([i % GROUP_COUNT]))
    connection.close()
    database.close()

    # result-cached: identical statement with the result cache enabled
    database, server = fresh_server(result_cache_bytes=8 << 20)
    connection = Connection.connect_in_process(server)
    connection.execute(warm_sql)
    result_cached_s = measure(lambda i: connection.execute(warm_sql))
    result_hits = database.cache_counters()["result_cache_hits"]
    connection.close()
    database.close()

    results["prepared_repeat"] = {
        "rows": rows,
        "repeats": repeats,
        "cold_parse_ms": round(cold_s * 1000, 4),
        "plan_cached_ms": round(plan_cached_s * 1000, 4),
        "prepared_ms": round(prepared_s * 1000, 4),
        "result_cached_ms": round(result_cached_s * 1000, 4),
        "prepared_speedup_vs_cold": round(cold_s / max(prepared_s, 1e-9), 2),
        "plan_cached_speedup_vs_cold": round(
            cold_s / max(plan_cached_s, 1e-9), 2),
        "result_cached_speedup_vs_cold": round(
            cold_s / max(result_cached_s, 1e-9), 2),
        "plan_cache_hits": plan_hits,
        "result_cache_hits": result_hits,
    }
    return results


def run_idle_connections(*, quick: bool = False) -> dict:
    """Thousands of open-but-idle connections against the async front end.

    The event loop holds every idle connection without a thread each; the
    measurement is (a) that the connections *can* be held, and (b) what the
    idle crowd costs the 16 active clients in tail latency.  Scales the
    idle count down gracefully when RLIMIT_NOFILE is too small (each
    in-process TCP connection costs two descriptors).
    """
    import resource
    import threading as _threading

    from repro.netproto.client import Connection, ConnectionInfo
    from repro.netproto.server import (
        AsyncSocketServer,
        DatabaseServer,
        ServerLimits,
    )

    idle_target = 100 if quick else 2_000
    active_clients = 4 if quick else 16
    queries_per_client = 8 if quick else 24
    rows = 5_000 if quick else 20_000

    soft_limit, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    fd_budget = max(16, (soft_limit - 256) // 3)
    idle_count = min(idle_target, fd_budget)

    rng = random.Random(13)
    database = Database(workers=2, result_cache_bytes=8 << 20)
    database.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
    table = database.storage.table("big")
    table.column("k").extend(i % GROUP_COUNT for i in range(rows))
    table.column("v").extend(rng.random() for _ in range(rows))
    limits = ServerLimits(max_concurrent_queries=8, max_queue_depth=512,
                          max_queue_wait=60.0,
                          max_sessions=idle_count + active_clients + 8)
    server = DatabaseServer(database, limits=limits)
    front = AsyncSocketServer(server, host="127.0.0.1", port=0)
    host, port = front.start_background()
    info = ConnectionInfo(host=host, port=port)

    open_start = time.perf_counter()
    idle = [Connection.connect_tcp(info) for _ in range(idle_count)]
    open_seconds = time.perf_counter() - open_start

    sql = "SELECT COUNT(*), SUM(v) FROM big WHERE v > 0.5"
    samples: list[float] = []
    lock = _threading.Lock()
    barrier = _threading.Barrier(active_clients + 1)

    def active_worker() -> None:
        connection = Connection.connect_tcp(info)
        local = []
        barrier.wait()
        for _ in range(queries_per_client):
            start = time.perf_counter()
            connection.execute(sql)
            local.append(time.perf_counter() - start)
        connection.close()
        with lock:
            samples.extend(local)

    threads = [_threading.Thread(target=active_worker)
               for _ in range(active_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    # one PREPARE round trip over the async front end (the CI smoke path)
    probe = Connection.connect_tcp(info)
    handle = probe.prepare("idle_probe",
                           "SELECT COUNT(*) FROM big WHERE k = ?")
    prepared_ok = handle.execute([3]).scalar() is not None
    probe.close()

    open_connections = server.active_sessions
    for connection in idle:
        connection.close()
    front.stop()
    database.close()

    samples.sort()
    executed = len(samples)
    return {"idle_connections": {
        "idle_connections": idle_count,
        "idle_target": idle_target,
        "scaled_down": idle_count < idle_target,
        "nofile_soft_limit": soft_limit,
        "active_clients": active_clients,
        "queries_total": executed,
        "open_seconds": round(open_seconds, 3),
        "connects_per_sec": round(idle_count / max(open_seconds, 1e-9)),
        "wall_seconds": round(wall, 6),
        "queries_per_sec": round(executed / wall) if wall > 0 else None,
        "latency_p50_ms": round(samples[executed // 2] * 1000, 3),
        "latency_p99_ms": round(
            samples[min(executed - 1, int(executed * 0.99))] * 1000, 3),
        "peak_open_connections": open_connections,
        "prepared_round_trip_ok": prepared_ok,
        "front_end": "async",
    }}


def run_netproto(*, quick: bool = False) -> dict:
    row_counts = [1_000, 10_000] if quick else [10_000, 100_000]
    repeat = 2 if quick else 5
    results: dict[str, dict] = {}
    for rows in row_counts:
        result = build_transfer_result(rows)
        for codec in (CODEC_NONE, CODEC_ZLIB):
            legacy = _bench_legacy(result, codec, repeat)
            columnar = _bench_columnar(result, codec, repeat)
            speedup = (legacy["encode_decode_seconds"]
                       / max(columnar["encode_decode_seconds"], 1e-9))
            materialised_speedup = (
                legacy["encode_decode_seconds"]
                / max(columnar["encode_seconds"]
                      + columnar["decode_materialised_seconds"], 1e-9))
            results[f"transfer_{rows}_{codec}"] = {
                "rows": rows,
                "columns": 2,
                "codec": codec,
                "legacy": legacy,
                "columnar": columnar,
                "columnar_speedup": round(speedup, 1),
                "columnar_speedup_materialised": round(materialised_speedup, 1),
                "wire_bytes_ratio_legacy_over_columnar": round(
                    legacy["wire_bytes"] / max(columnar["wire_bytes"], 1), 2),
            }
        # low-cardinality string transfer: dictionary encoding (TAG_DICT,
        # protocol v3) vs plain offsets+blob columnar (v2) vs legacy
        string_result = build_string_transfer_result(rows)
        legacy = _bench_legacy(string_result, CODEC_NONE, repeat)
        columnar_v2 = _bench_columnar(string_result, CODEC_NONE, repeat,
                                      protocol_version=2)
        columnar_dict = _bench_columnar(string_result, CODEC_NONE, repeat,
                                        protocol_version=3)
        results[f"string_transfer_{rows}_none"] = {
            "rows": rows,
            "columns": 1,
            "codec": CODEC_NONE,
            "legacy": legacy,
            "columnar_v2": columnar_v2,
            "columnar_dict": columnar_dict,
            "dict_wire_bytes_saved_vs_v2":
                columnar_v2["wire_bytes"] - columnar_dict["wire_bytes"],
            "wire_bytes_ratio_v2_over_dict": round(
                columnar_v2["wire_bytes"]
                / max(columnar_dict["wire_bytes"], 1), 2),
            "wire_bytes_ratio_legacy_over_dict": round(
                legacy["wire_bytes"] / max(columnar_dict["wire_bytes"], 1), 2),
        }
    results.update(run_concurrency(quick=quick))
    results.update(run_prepared(quick=quick))
    results.update(run_idle_connections(quick=quick))
    return {
        "suite": "netproto-columnar-transfer",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "row_counts": row_counts,
        "results": results,
    }


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def _print_sqldb(report: dict) -> None:
    for name, entry in report["results"].items():
        if name == "obs_overhead":
            verdict = "ok" if entry["within_budget"] else "OVER BUDGET"
            print(f"  {name:>16}: bare {entry['bare_seconds'] * 1000:.2f} ms "
                  f"-> instrumented {entry['instrumented_seconds'] * 1000:.2f} "
                  f"ms  ({entry['overhead_ratio']}x, budget "
                  f"{entry['budget_ratio']}x: {verdict})")
            continue
        speedup = entry.get("speedup_vs_seed")
        suffix = f"  ({speedup}x vs seed)" if speedup else ""
        print(f"  {name:>16}: {entry['seconds'] * 1000:8.2f} ms  "
              f"{entry['rows_per_sec']:>12,} rows/sec{suffix}")


def _print_netproto(report: dict) -> None:
    for name, entry in report["results"].items():
        if name == "prepared_repeat":
            print(f"  {name:>24}: cold {entry['cold_parse_ms']:.3f} ms -> "
                  f"plan-cached {entry['plan_cached_ms']:.3f} ms, "
                  f"prepared {entry['prepared_ms']:.3f} ms "
                  f"({entry['prepared_speedup_vs_cold']}x), "
                  f"result-cached {entry['result_cached_ms']:.3f} ms "
                  f"({entry['result_cached_speedup_vs_cold']}x)")
            continue
        if name == "idle_connections":
            print(f"  {name:>24}: {entry['idle_connections']} idle + "
                  f"{entry['active_clients']} active  "
                  f"p50 {entry['latency_p50_ms']:.2f} ms  "
                  f"p99 {entry['latency_p99_ms']:.2f} ms  "
                  f"(opened in {entry['open_seconds']}s)")
            continue
        if name == "concurrency_cache_counters":
            continue
        if "clients" in entry:
            print(f"  {name:>24}: {entry['queries_per_sec']:>6,} q/s  "
                  f"p50 {entry['latency_p50_ms']:8.2f} ms  "
                  f"p99 {entry['latency_p99_ms']:9.2f} ms  "
                  f"({entry['queries_total']} queries, "
                  f"{entry['rejected']} rejected)")
            continue
        legacy_ms = entry["legacy"]["encode_decode_seconds"] * 1000
        if "columnar_dict" in entry:
            print(f"  {name:>24}: v2 {entry['columnar_v2']['wire_bytes']:,} "
                  f"wire bytes -> dict {entry['columnar_dict']['wire_bytes']:,} "
                  f"({entry['wire_bytes_ratio_v2_over_dict']}x smaller, "
                  f"legacy {legacy_ms:.2f} ms)")
            continue
        columnar_ms = entry["columnar"]["encode_decode_seconds"] * 1000
        print(f"  {name:>24}: legacy {legacy_ms:8.2f} ms -> "
              f"columnar {columnar_ms:7.2f} ms  "
              f"({entry['columnar_speedup']}x, "
              f"{entry['columnar']['wire_bytes']:,} wire bytes)")


def _print_persist(report: dict) -> None:
    for name, entry in report["results"].items():
        seconds = entry["seconds"]
        extra = ""
        if "rows_per_sec" in entry and entry["rows_per_sec"]:
            extra = f"  {entry['rows_per_sec']:>12,} rows/sec"
        if "wal_overhead_vs_memory" in entry:
            extra += f"  ({entry['wal_overhead_vs_memory']}x vs memory)"
        if "file_bytes" in entry:
            extra += f"  ({entry['file_bytes']:,} file bytes)"
        if "wal_rows_replayed" in entry:
            extra += f"  ({entry['wal_rows_replayed']:,} WAL rows replayed)"
        print(f"  {name:>32}: {seconds * 1000:9.2f} ms{extra}")


SUITES = {
    "sqldb": (run_sqldb, "BENCH_sqldb.json", _print_sqldb),
    "netproto": (run_netproto, "BENCH_netproto.json", _print_netproto),
    "persist": (run_persist, "BENCH_persist.json", _print_persist),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=[*SUITES, "all"], default="all",
                        help="which benchmark suite to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: smaller row counts, fewer repeats")
    parser.add_argument("--output-dir", default=".",
                        help="directory for the BENCH_*.json reports")
    args = parser.parse_args()

    names = list(SUITES) if args.suite == "all" else [args.suite]
    exit_code = 0
    for name in names:
        runner, filename, printer = SUITES[name]
        report = runner(quick=args.quick)
        output = Path(args.output_dir) / filename
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {output}")
        printer(report)
        # --quick doubles as the CI gate: observability must stay within
        # its overhead budget or the run fails the build
        obs = report.get("results", {}).get("obs_overhead")
        if args.quick and obs is not None and not obs["within_budget"]:
            print(f"FAIL: observability overhead {obs['overhead_ratio']}x "
                  f"exceeds the {obs['budget_ratio']}x budget")
            exit_code = 1
    if exit_code:
        raise SystemExit(exit_code)


if __name__ == "__main__":
    main()
