"""C4 — the headline claim (§1, §3): devUDF makes UDF development
"more attractive, faster and easier".

The paper never quantifies this; the reproduction operationalises it by
driving both workflows programmatically over the two demo scenarios and
reporting developer iterations, full query executions, UDF re-creations
(manual code transformations), server round trips, and a modelled developer
time.  The shape that must hold: devUDF needs no manual code transformations,
strictly fewer full query executions and UDF re-creations, and comes out ahead
on the modelled time for both scenarios.
"""

import pytest
from conftest import report

from repro.core.workflow import compare_workflows
from repro.workloads.scenarios import make_scenario_a, make_scenario_b

SCENARIOS = {
    "scenario_a": make_scenario_a,
    "scenario_b": make_scenario_b,
}


@pytest.fixture(scope="module")
def results_table():
    rows: list[dict] = []
    yield rows
    report("C4: traditional vs devUDF workflow", rows)


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_workflow_comparison(benchmark, quiet_stdout, results_table, tmp_path,
                             scenario_name):
    factory_maker = SCENARIOS[scenario_name]

    def run_comparison():
        return quiet_stdout(
            compare_workflows,
            factory_maker(tmp_path / scenario_name, n_files=4, rows_per_file=50),
            project_root=tmp_path / f"{scenario_name}_projects",
        )

    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    for metrics in (comparison.traditional, comparison.devudf):
        results_table.append(metrics.as_row())
    benchmark.extra_info["iteration_reduction"] = comparison.iteration_reduction
    benchmark.extra_info["round_trip_reduction"] = comparison.round_trip_reduction

    traditional, devudf = comparison.traditional, comparison.devudf
    assert comparison.devudf_wins
    assert traditional.bug_found and devudf.bug_found
    assert traditional.final_result_correct and devudf.final_result_correct
    # the shape of the efficiency claim
    assert devudf.manual_transformations == 0 < traditional.manual_transformations
    assert devudf.full_query_executions < traditional.full_query_executions
    assert devudf.udf_recreations < traditional.udf_recreations
    assert devudf.estimated_developer_seconds < traditional.estimated_developer_seconds


def test_devudf_advantage_grows_with_data_size(benchmark, quiet_stdout, tmp_path):
    """Ablation: with larger inputs the traditional workflow re-ships the full
    query over and over, while devUDF extracts the input once (and can sample)."""
    sizes = [50, 500]

    def measure():
        advantage = {}
        for rows_per_file in sizes:
            comparison = quiet_stdout(
                compare_workflows,
                make_scenario_a(tmp_path / f"size_{rows_per_file}", n_files=4,
                                rows_per_file=rows_per_file),
                project_root=tmp_path / f"size_{rows_per_file}_projects",
            )
            advantage[rows_per_file] = (
                comparison.traditional.estimated_developer_seconds
                - comparison.devudf.estimated_developer_seconds
            )
        return advantage

    advantage = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("C4: modelled developer-time advantage (seconds) by data size", advantage)
    assert all(value > 0 for value in advantage.values())
