#!/usr/bin/env python3
"""Scenario B: a data-dependent bug in the ``loadNumbers`` data loader.

Listing 5's loader iterates ``range(0, len(files) - 1)`` "because it considers
that range is right side inclusive" and silently drops the last CSV file.  The
``mean_deviation`` UDF itself is correct, so the wrong result is maddening to
track down with print debugging — but trivially visible in an interactive
debugger where the developer can watch the loop variable against the number of
files.

This example compares the whole traditional workflow against the devUDF
workflow on that scenario using the workflow simulators (the machinery behind
the C4 efficiency benchmark), then shows the debugger transcript that exposes
the off-by-one.

Run with:  python examples/scenario_b_data_loader.py
"""

from __future__ import annotations

import contextlib
import io
import tempfile
from pathlib import Path

from repro.core import DevUDFPlugin, DevUDFProject, DevUDFSettings, compare_workflows
from repro.netproto import DatabaseServer
from repro.workloads import ScenarioB, make_scenario_b


def show_workflow_comparison(workdir: Path) -> None:
    print("=== traditional vs devUDF on Scenario B " + "=" * 30)
    # the instrumented server-side prints of the traditional workflow are
    # captured so the comparison output stays readable
    captured = io.StringIO()
    with contextlib.redirect_stdout(captured):
        comparison = compare_workflows(
            make_scenario_b(workdir / "wf"), project_root=workdir / "wf_projects")
    for metrics in (comparison.traditional, comparison.devudf):
        row = metrics.as_row()
        print(f"{row['workflow']:>12}: {row['iterations']} developer iterations, "
              f"{row['query_executions']} full query runs, "
              f"{row['udf_recreations']} UDF re-creations "
              f"({row['manual_transformations']} manual), "
              f"~{row['estimated_developer_seconds']}s estimated")
    print(f"devUDF wins on this scenario: {comparison.devudf_wins}\n")


def show_debugger_transcript(workdir: Path) -> None:
    print("=== the debugger transcript that exposes the bug " + "=" * 20)
    scenario = ScenarioB(workdir / "csv", n_files=5, rows_per_file=15)
    server = DatabaseServer()
    scenario.setup(server)
    workload = scenario.workload
    assert workload is not None
    print(f"CSV directory: {workload.directory} "
          f"({len(workload.files)} files, {workload.total_rows} rows)")

    settings = DevUDFSettings(debug_query=scenario.debug_query)
    project = DevUDFProject(workdir / "ide_project")
    plugin = DevUDFPlugin(project, settings, server=server)

    # the buggy loader returns fewer rows than the directory contains
    loaded = plugin.execute_sql(scenario.debug_query)
    print(f"rows loaded by the buggy loader (server-side): {loaded.row_count} "
          f"of {workload.total_rows}\n")

    plugin.import_udfs(["loadNumbers"])
    preparation = plugin.prepare_debug("loadNumbers")
    source = project.udf_source("loadNumbers")
    breakpoints = scenario.debugger_breakpoints(source)
    outcome = plugin.debug_udf(
        preparation=preparation,
        breakpoints=breakpoints,
        watches=scenario.debugger_watches(),
    )
    print("watch values at the loop header breakpoint:")
    for stop in outcome.breakpoint_stops:
        print(f"  files_found={stop.watches.get('files_found')}  "
              f"current_index={stop.watches.get('current_index')}")
    print(f"bug visible in the debugger: {scenario.bug_visible_in_debugger(outcome)} "
          "(the loop never reaches the last file)\n")

    # fix it, verify locally, export, confirm on the server
    buffer = project.open_udf("loadNumbers")
    buffer.set_text(scenario.apply_fix_to_source(buffer.text))
    buffer.save()
    local = plugin.run_udf_locally(preparation=preparation)
    print(f"rows loaded locally after the fix: {len(local.result)}")
    plugin.export_udfs(["loadNumbers"])
    fixed = plugin.execute_sql(scenario.debug_query)
    print(f"rows loaded by the exported fix (server-side): {fixed.row_count} "
          f"of {workload.total_rows}")
    assert fixed.row_count == workload.total_rows
    print("\nscenario B finished: the data-dependent bug was found and fixed.")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="devudf_scenario_b_"))
    print(f"working directory: {workdir}\n")
    show_workflow_comparison(workdir)
    show_debugger_transcript(workdir)


if __name__ == "__main__":
    main()
