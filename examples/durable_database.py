#!/usr/bin/env python3
"""Durable storage walkthrough: ``Database(path=...)``, WAL, crash recovery.

What this demonstrates:

1. open a durable database — one columnar file plus a write-ahead log,
2. run ordinary DML/DDL; every mutation is WAL-logged as it commits,
3. simulate a crash (copy the files mid-flight, never close) and recover:
   the reopened database replays the log over the last checkpoint,
4. ``CHECKPOINT`` — rewrite the image (segments are the same columnar chunk
   blobs the wire protocol ships) and truncate the log,
5. clean close — auto-checkpoint, so the next open replays nothing.

Run with:  python examples/durable_database.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.sqldb import Database
from repro.sqldb.persist import read_wal, wal_path_for


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="durable_demo_"))
    path = workdir / "demo.db"

    # -- 1. open (creates file + WAL lazily) ----------------------------- #
    database = Database(path=path)
    print(f"opened {path} (generation {database.persistence.generation})")

    # -- 2. ordinary SQL; mutations are write-ahead logged ---------------- #
    database.execute("CREATE TABLE sensors (id INTEGER, name STRING, temp DOUBLE)")
    database.execute("INSERT INTO sensors VALUES (1, 'roof', 21.5), "
                     "(2, 'cellar', 12.0), (3, NULL, NULL)")
    database.execute("UPDATE sensors SET temp = 13.5 WHERE id = 2")
    wal = read_wal(wal_path_for(path))
    print(f"WAL now holds {len(wal.records)} records: "
          f"{[record['op'] for record in wal.records]}")

    # -- 3. crash + recovery --------------------------------------------- #
    crash_path = workdir / "crashed.db"
    # the process "dies" here: nothing was checkpointed, only the WAL exists
    shutil.copy(wal_path_for(path), wal_path_for(crash_path))
    recovered = Database(path=crash_path)
    report = recovered.persistence.last_recovery
    print(f"recovered copy: replayed {report.wal_records_replayed} WAL records, "
          f"torn tail: {report.wal_torn_tail}")
    print(recovered.execute("SELECT * FROM sensors ORDER BY id").format_table())
    recovered.close()

    # -- 4. checkpoint ---------------------------------------------------- #
    result = database.execute("CHECKPOINT")
    row = dict(zip(result.column_names, result.fetchall()[0]))
    print(f"checkpoint: generation {row['generation']}, {row['segments']} "
          f"segment(s), {row['file_bytes']:,} bytes, "
          f"{row['wal_records_truncated']} WAL records truncated")

    # -- 5. clean close + reopen ------------------------------------------ #
    database.execute("INSERT INTO sensors VALUES (4, 'attic', 30.25)")
    database.close()  # auto-checkpoint: WAL ends empty
    reopened = Database(path=path)
    print(f"clean reopen replayed "
          f"{reopened.persistence.last_recovery.wal_records_replayed} records "
          f"(everything lives in the image)")
    print(reopened.execute(
        "SELECT COUNT(*) AS sensors, AVG(temp) AS avg_temp FROM sensors"
    ).format_table())
    reopened.close()
    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
