#!/usr/bin/env python3
"""Durable storage walkthrough: ``Database(path=...)``, WAL, crash recovery.

What this demonstrates:

1. open a durable database — one columnar file plus a write-ahead log,
2. run ordinary DML/DDL; every mutation is WAL-logged as it commits,
3. simulate a crash (copy the files mid-flight, never close) and recover:
   the reopened database replays the log over the last checkpoint,
4. ``CHECKPOINT`` — rewrite the image (segments are the same columnar chunk
   blobs the wire protocol ships) and truncate the log,
5. ``VERIFY`` — online scrub of every segment/WAL checksum,
6. ``BACKUP TO`` — a consistent online copy, restorable by plain open,
7. bit rot + salvage — corruption is pinned to (table, row range, offset)
   and quarantined so the healthy tables stay readable,
8. clean close — auto-checkpoint, so the next open replays nothing.

Run with:  python examples/durable_database.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.sqldb import Database
from repro.sqldb.persist import read_wal, wal_path_for


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="durable_demo_"))
    path = workdir / "demo.db"

    # -- 1. open (creates file + WAL lazily) ----------------------------- #
    database = Database(path=path)
    print(f"opened {path} (generation {database.persistence.generation})")

    # -- 2. ordinary SQL; mutations are write-ahead logged ---------------- #
    database.execute("CREATE TABLE sensors (id INTEGER, name STRING, temp DOUBLE)")
    database.execute("INSERT INTO sensors VALUES (1, 'roof', 21.5), "
                     "(2, 'cellar', 12.0), (3, NULL, NULL)")
    database.execute("UPDATE sensors SET temp = 13.5 WHERE id = 2")
    wal = read_wal(wal_path_for(path))
    print(f"WAL now holds {len(wal.records)} records: "
          f"{[record['op'] for record in wal.records]}")

    # -- 3. crash + recovery --------------------------------------------- #
    crash_path = workdir / "crashed.db"
    # the process "dies" here: nothing was checkpointed, only the WAL exists
    shutil.copy(wal_path_for(path), wal_path_for(crash_path))
    recovered = Database(path=crash_path)
    report = recovered.persistence.last_recovery
    print(f"recovered copy: replayed {report.wal_records_replayed} WAL records, "
          f"torn tail: {report.wal_torn_tail}")
    print(recovered.execute("SELECT * FROM sensors ORDER BY id").format_table())
    recovered.close()

    # -- 4. checkpoint ---------------------------------------------------- #
    result = database.execute("CHECKPOINT")
    row = dict(zip(result.column_names, result.fetchall()[0]))
    print(f"checkpoint: generation {row['generation']}, {row['segments']} "
          f"segment(s), {row['file_bytes']:,} bytes, "
          f"{row['wal_records_truncated']} WAL records truncated")

    # -- 5. online scrub --------------------------------------------------- #
    verify = database.execute("VERIFY")
    print(verify.format_table())

    # -- 6. online backup -------------------------------------------------- #
    backup_path = workdir / "demo.backup.db"
    backup = database.execute(f"BACKUP TO '{backup_path}'")
    row = dict(zip(backup.column_names, backup.fetchall()[0]))
    print(f"backup: {row['rows']} rows, {row['file_bytes']:,} bytes "
          f"-> {row['path']}")
    restored = Database(path=backup_path)   # restore = plain open
    print(f"restored backup holds "
          f"{restored.execute('SELECT COUNT(*) FROM sensors').scalar()} rows")
    restored.close()

    # -- 7. bit rot, detection, salvage ------------------------------------ #
    from repro.errors import CorruptionError
    from repro.sqldb.persist import format as persist_format

    rotten = workdir / "rotten.db"
    shutil.copy(path, rotten)
    data = bytearray(rotten.read_bytes())
    footer = persist_format.read_footer(bytes(data), rotten)
    segment = footer["tables"][0]["segments"][0]
    data[segment["offset"] + 5] ^= 0xFF          # one flipped bit on disk
    rotten.write_bytes(bytes(data))
    try:
        Database(path=rotten)
    except CorruptionError as exc:
        print(f"strict open refused: {exc}")
    salvaged = Database(path=rotten, salvage=True)
    print(f"salvage quarantined: {salvaged.persistence.quarantined_tables()}")
    try:
        salvaged.execute("SELECT * FROM sensors")
    except CorruptionError as exc:
        print(f"reads of the damaged table stay refused: {exc}")
    salvaged.persistence.close(checkpoint=False)

    # -- 8. clean close + reopen ------------------------------------------ #
    database.execute("INSERT INTO sensors VALUES (4, 'attic', 30.25)")
    database.close()  # auto-checkpoint: WAL ends empty
    reopened = Database(path=path)
    print(f"clean reopen replayed "
          f"{reopened.persistence.last_recovery.wal_records_replayed} records "
          f"(everything lives in the image)")
    print(reopened.execute(
        "SELECT COUNT(*) AS sensors, AVG(temp) AS avg_temp FROM sensors"
    ).format_table())
    reopened.close()
    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
