#!/usr/bin/env python3
"""Quickstart: the full devUDF workflow on the paper's demo scenario.

This walks through exactly what the demo (paper §2.5) shows:

1. start a demo database server with CSV data and the *buggy* ``mean_deviation``
   UDF of Listing 4 already stored in it,
2. configure the plugin (the Settings dialog, Figure 2),
3. import the UDF into an IDE project (Figure 3a) — the stored body is turned
   into a runnable standalone file (Listing 1 -> Listing 2),
4. extract the UDF's input data and debug it locally with breakpoints and
   watch expressions — the moment the ``distance`` accumulator goes negative
   the missing ``abs()`` is obvious,
5. fix the function in the editor, verify it locally,
6. export it back to the server (Figure 3b) and re-run the SQL query.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import DevUDFPlugin, DevUDFProject, DevUDFSettings
from repro.workloads import demo_server


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="devudf_quickstart_"))
    print(f"working directory: {workdir}\n")

    # ------------------------------------------------------------------ #
    # 1. the demo database server (MonetDB stand-in) with the buggy UDF
    # ------------------------------------------------------------------ #
    server, setup = demo_server(str(workdir / "csv"), buggy_mean_deviation=True,
                                with_extras=True)
    reference = setup.workload.mean_deviation()
    print(f"demo data: {setup.workload.total_rows} integers in "
          f"{len(setup.workload.files)} CSV files")
    print(f"correct mean deviation (reference implementation): {reference:.4f}\n")

    # ------------------------------------------------------------------ #
    # 2. configure the plugin (Figure 2)
    # ------------------------------------------------------------------ #
    settings = DevUDFSettings(
        host="localhost", port=50000, database="demo",
        username="monetdb", password="monetdb",
        debug_query="SELECT mean_deviation(i) FROM numbers",
    )
    project = DevUDFProject(workdir / "ide_project")
    plugin = DevUDFPlugin(project, settings, server=server)
    print(f"plugin configured: {settings.describe()}")
    print("menu contribution:",
          [a.label for a in plugin.menu.menu(plugin.SUBMENU_LABEL).actions], "\n")

    # the buggy UDF, as stored in the server, produces a wrong answer
    wrong = plugin.execute_sql(settings.debug_query).scalar()
    print(f"server result with the buggy UDF: {wrong:.4f}  (expected {reference:.4f})\n")

    # ------------------------------------------------------------------ #
    # 3. Import UDFs (Figure 3a)
    # ------------------------------------------------------------------ #
    report = plugin.import_udfs(["mean_deviation"])
    udf_file = report.imported[0].relative_path
    print(f"imported {report.imported_names} into {udf_file}")
    print("the stored body was transformed into a runnable file (Listing 2 style)\n")

    # ------------------------------------------------------------------ #
    # 4. debug locally: extract inputs, set a breakpoint, watch `distance`
    # ------------------------------------------------------------------ #
    preparation = plugin.prepare_debug("mean_deviation")
    print(f"input data extracted: {preparation.inputs.rows_extracted} rows "
          f"({preparation.blob_stats.stored_bytes} bytes in input.bin)")
    print(f"extraction query: {preparation.plan.extraction_query}\n")

    source = project.udf_source("mean_deviation")
    breakpoint_line = next(
        number for number, line in enumerate(source.splitlines(), start=1)
        if "distance += column[i] - mean" in line
    )
    outcome = plugin.debug_udf(
        preparation=preparation,
        breakpoints=[breakpoint_line],
        watches={"distance": "distance", "mean": "mean"},
    )
    negative = next(
        (stop for stop in outcome.stops
         if isinstance(stop.watches.get("distance"), (int, float))
         and stop.watches["distance"] < 0),
        None,
    )
    print(f"debugger paused {len(outcome.stops)} times at line {breakpoint_line}")
    if negative is not None:
        print(f"bug found: the 'distance' accumulator became negative "
              f"({negative.watches['distance']:.2f}) — a mean deviation can never be "
              "negative, the absolute value is missing\n")

    # ------------------------------------------------------------------ #
    # 5. fix it in the editor and verify locally
    # ------------------------------------------------------------------ #
    buffer = project.open_udf("mean_deviation")
    buffer.set_text(buffer.text.replace("distance += column[i] - mean",
                                        "distance += abs(column[i] - mean)"))
    buffer.save()
    local = plugin.run_udf_locally(preparation=preparation)
    print(f"local run after the fix: {local.result:.4f}  (reference {reference:.4f})")
    project.commit("Fix mean_deviation: use the absolute difference")
    print(f"change committed to version control "
          f"({len(project.history())} commit(s) in the project)\n")

    # ------------------------------------------------------------------ #
    # 6. Export UDFs (Figure 3b) and re-run the query on the server
    # ------------------------------------------------------------------ #
    plugin.export_udfs(["mean_deviation"])
    fixed = plugin.execute_sql(settings.debug_query).scalar()
    print(f"server result with the exported fix: {fixed:.4f}")
    assert abs(fixed - reference) < 1e-6, "exported UDF should match the reference"
    print("\nquickstart finished: the UDF was developed, debugged and fixed "
          "without leaving the IDE workflow.")


if __name__ == "__main__":
    main()
