#!/usr/bin/env python3
"""A remote server over TCP, and the three data-transfer options of Figure 2.

The paper's settings dialog lets the developer pick, per debug run:

* **compression** — "leading to faster transfer times",
* **a uniform random sample** of the input data — "this will alleviate the
  data transfer overhead",
* **encryption** with the database user's password — for sensitive data.

This example starts the demo database as a real TCP server, connects the
plugin to it through the client protocol (the JDBC stand-in), and extracts the
same UDF input under the four configurations, printing the bytes that crossed
the wire for each.  It finishes by showing that a 10% sample is still enough
to expose the Scenario A bug in the debugger.

Run with:  python examples/remote_transfer_options.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import DevUDFPlugin, DevUDFProject, DevUDFSettings
from repro.netproto import SocketServer
from repro.workloads import demo_server


def extract_with(plugin: DevUDFPlugin, label: str, **transfer_kwargs) -> int:
    """Reconfigure the transfer options and run one extraction; returns wire bytes."""
    plugin.configure(**transfer_kwargs)
    preparation = plugin.prepare_debug("mean_deviation")
    wire = preparation.inputs.wire_bytes
    print(f"  {label:<38} rows={preparation.inputs.rows_extracted:>5}  "
          f"wire bytes={wire:>8}  input.bin={preparation.blob_stats.stored_bytes:>7}")
    return wire


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="devudf_remote_"))
    print(f"working directory: {workdir}\n")

    # ------------------------------------------------------------------ #
    # a real TCP server (the paper's "running database server")
    # ------------------------------------------------------------------ #
    server, setup = demo_server(str(workdir / "csv"), buggy_mean_deviation=True,
                                n_files=8, rows_per_file=500)
    socket_server = SocketServer(server, host="127.0.0.1", port=0)
    host, port = socket_server.start_background()
    print(f"demo server listening on {host}:{port}")
    print(f"data: {setup.workload.total_rows} rows across "
          f"{len(setup.workload.files)} CSV files\n")

    try:
        settings = DevUDFSettings(
            host=host, port=port, database="demo",
            username="monetdb", password="monetdb",
            debug_query="SELECT mean_deviation(i) FROM numbers",
        )
        project = DevUDFProject(workdir / "ide_project")
        plugin = DevUDFPlugin(project, settings)  # no in-process server: TCP only
        plugin.import_udfs(["mean_deviation"])

        print("input-data extraction under the Figure 2 transfer options:")
        baseline = extract_with(plugin, "no options (baseline)",
                                use_compression=False, use_encryption=False,
                                use_sampling=False)
        compressed = extract_with(plugin, "compression (zlib)",
                                  use_compression=True, compression_codec="zlib",
                                  use_encryption=False, use_sampling=False)
        encrypted = extract_with(plugin, "compression + encryption",
                                 use_compression=True, use_encryption=True,
                                 use_sampling=False)
        sampled = extract_with(plugin, "10% uniform random sample",
                               use_compression=False, use_encryption=False,
                               use_sampling=True, sample_fraction=0.1,
                               sample_size=None)
        print()
        print(f"compression saved {100 * (1 - compressed / baseline):.1f}% of the "
              "bytes on the wire")
        print(f"encryption overhead vs compressed: {encrypted - compressed:+d} bytes")
        print(f"sampling reduced the transfer to {100 * sampled / baseline:.1f}% "
              "of the baseline\n")

        # the sampled input is still enough to see the Scenario A bug locally
        plugin.configure(use_compression=False, use_encryption=False,
                         use_sampling=True, sample_fraction=0.1, sample_size=None)
        preparation = plugin.prepare_debug("mean_deviation")
        source = project.udf_source("mean_deviation")
        breakpoint_line = next(
            number for number, line in enumerate(source.splitlines(), start=1)
            if "distance += column[i] - mean" in line
        )
        outcome = plugin.debug_udf(preparation=preparation,
                                   breakpoints=[breakpoint_line],
                                   watches={"distance": "distance"})
        negative = any(
            isinstance(stop.watches.get("distance"), (int, float))
            and stop.watches["distance"] < 0
            for stop in outcome.stops
        )
        print(f"debugging on the 10% sample still exposes the bug: {negative}")
        plugin.close()
    finally:
        socket_server.stop()
    print("\nremote example finished.")


if __name__ == "__main__":
    main()
