#!/usr/bin/env python3
"""Nested UDFs: debugging Listing 3's ``find_best_classifier`` locally.

The paper's §2.3 example trains a random forest inside the database
(``train_rnforest``, Listing 1), then a second UDF sweeps the number of
estimators through loopback queries and keeps the best classifier
(``find_best_classifier``, Listing 3).  Debugging that nested structure is the
hardest case for UDF tooling: the outer UDF's loopback queries call the inner
UDF with different parameters on every loop iteration.

This example shows devUDF handling it end to end:

1. the classifier tables and both UDFs are created in the database,
2. the outer UDF is imported — the plugin detects the nested ``train_rnforest``
   call and embeds the nested function in the same generated file,
3. the input data of *both* UDFs is extracted in one debug preparation,
4. the whole call tree runs locally, with a breakpoint inside the *nested* UDF,
5. the local result matches the in-database result.

Run with:  python examples/nested_classifier.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import DevUDFPlugin, DevUDFProject, DevUDFSettings
from repro.netproto import DatabaseServer
from repro.sqldb import Database
from repro.workloads import setup_classifier_database


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="devudf_nested_"))
    print(f"working directory: {workdir}\n")

    # ------------------------------------------------------------------ #
    # 1. database with training/testing sets and both UDFs (Listings 1 + 3)
    # ------------------------------------------------------------------ #
    database = Database(name="demo")
    setup_classifier_database(database, n_rows=80, seed=3)
    server = DatabaseServer(database)
    print("tables:", database.table_names())
    print("UDFs:", database.function_names(), "\n")

    debug_query = "SELECT * FROM find_best_classifier(4)"
    in_database = database.execute(debug_query)
    row = in_database.fetchone()
    print(f"in-database result: best n_estimators={row[1]} "
          f"with {row[2]} correct predictions\n")

    # ------------------------------------------------------------------ #
    # 2. import the outer UDF; the nested one comes along automatically
    # ------------------------------------------------------------------ #
    settings = DevUDFSettings(debug_query=debug_query)
    project = DevUDFProject(workdir / "ide_project")
    plugin = DevUDFPlugin(project, settings, server=server)
    report = plugin.import_udfs(["find_best_classifier"])
    imported = report.imported[0]
    print(f"imported {imported.name}; nested UDFs embedded: {imported.nested_udfs}")

    # ------------------------------------------------------------------ #
    # 3. extract the inputs of the whole call tree
    # ------------------------------------------------------------------ #
    preparation = plugin.prepare_debug("find_best_classifier")
    print(f"constant parameter: esttest = {preparation.inputs.parameters['esttest']}")
    print("loopback data extracted for:")
    for query in preparation.inputs.loopback:
        rows = len(next(iter(preparation.inputs.loopback[query].values())))
        print(f"  - {query!r}  ({rows} rows)")
    print()

    # ------------------------------------------------------------------ #
    # 4. debug locally with a breakpoint inside the nested UDF
    # ------------------------------------------------------------------ #
    source = project.udf_source("find_best_classifier")
    breakpoint_line = next(
        number for number, line in enumerate(source.splitlines(), start=1)
        if "clf.fit(data, classes)" in line
    )
    outcome = plugin.debug_udf(
        preparation=preparation,
        breakpoints=[breakpoint_line],
        watches={"estimators_requested": "n"},
    )
    print(f"breakpoint inside the nested UDF hit {len(outcome.breakpoint_stops)} times "
          "(once per estimator sweep iteration):")
    for stop in outcome.breakpoint_stops:
        print(f"  - {stop.function}() line {stop.line}, "
              f"n_estimators={stop.watches.get('estimators_requested')}")
    print()

    # ------------------------------------------------------------------ #
    # 5. the locally-debugged run agrees with the in-database execution
    # ------------------------------------------------------------------ #
    local = plugin.run_udf_locally(preparation=preparation)
    assert local.completed, f"local run failed: {local.exception_message}"
    print(f"local result: best n_estimators={local.result['n_estimators']} "
          f"with {local.result['correct']} correct predictions")
    assert local.result["n_estimators"] == row[1]
    assert local.result["correct"] == row[2]
    print("\nnested example finished: the full UDF call tree was debugged locally.")


if __name__ == "__main__":
    main()
