"""Failure-injection tests: the plugin must fail loudly and recoverably.

A tooling system earns its keep in the unhappy paths: the server rejecting a
broken UDF on export, a UDF that crashes server-side during extraction, a
corrupted local input blob, a connection that disappears mid-workflow.  These
tests pin down that every such failure surfaces as a typed error (or a
per-item failure report) and never silently corrupts the project state.
"""

import pytest

from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.core.transfer import read_input_blob
from repro.errors import (
    DebugSessionError,
    ExecutionError,
    ExtractionError,
    UDFError,
)
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.workloads.udf_corpus import MEAN_DEVIATION_BUGGY_BODY, mean_deviation_create_sql


@pytest.fixture()
def demo_server() -> DatabaseServer:
    database = Database()
    database.execute("CREATE TABLE numbers (i INTEGER)")
    database.execute("INSERT INTO numbers VALUES (1), (2), (3)")
    database.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY))
    return DatabaseServer(database)


@pytest.fixture()
def plugin(demo_server, tmp_path) -> DevUDFPlugin:
    settings = DevUDFSettings(debug_query="SELECT mean_deviation(i) FROM numbers")
    instance = DevUDFPlugin(DevUDFProject(tmp_path / "proj"), settings, server=demo_server)
    yield instance
    instance.close()


class TestServerSideFailures:
    def test_crashing_udf_surfaces_during_extraction_of_its_loopback(self, demo_server,
                                                                      tmp_path):
        """A nested UDF whose loopback data query fails reports the SQL error."""
        database = demo_server.database
        database.execute(
            "CREATE FUNCTION outer_crasher(n INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n"
            "    res = _conn.execute('SELECT missing_column FROM numbers')\n"
            "    return 1.0\n}")
        settings = DevUDFSettings(debug_query="SELECT outer_crasher(1)")
        plugin = DevUDFPlugin(DevUDFProject(tmp_path / "crash"), settings,
                              server=demo_server)
        try:
            with pytest.raises(ExecutionError):
                plugin.prepare_debug("outer_crasher")
        finally:
            plugin.close()

    def test_udf_error_on_server_is_reported_not_hidden(self, plugin, demo_server):
        demo_server.database.execute(
            "CREATE OR REPLACE FUNCTION exploder(x INTEGER) RETURNS INTEGER "
            "LANGUAGE PYTHON { raise RuntimeError('boom inside the server') }")
        with pytest.raises((ExecutionError, UDFError), match="boom|exploder"):
            plugin.execute_sql("SELECT exploder(i) FROM numbers")

    def test_export_of_syntactically_broken_edit_fails_per_udf(self, plugin):
        plugin.import_udfs(["mean_deviation"])
        buffer = plugin.project.open_udf("mean_deviation")
        buffer.set_text(buffer.text.replace("def mean_deviation",
                                            "def mean_deviation(((("))
        buffer.save()
        report = plugin.export_udfs(["mean_deviation"])
        assert not report.ok
        assert "mean_deviation" in report.failed
        # the server still has the original, working definition
        assert plugin.execute_sql("SELECT mean_deviation(i) FROM numbers") is not None

    def test_server_restart_breaks_connection_but_plugin_reconnects(self, plugin,
                                                                    demo_server):
        plugin.connect()
        plugin.disconnect()
        # a new connection is created transparently on the next action
        assert plugin.execute_sql("SELECT 1").scalar() == 1


class TestLocalFailures:
    def test_corrupted_input_blob_is_detected(self, plugin):
        preparation = plugin.prepare_debug("mean_deviation")
        preparation.input_path.write_bytes(b"definitely not a pickle")
        with pytest.raises(Exception):
            read_input_blob(preparation.input_path)
        local = plugin.run_udf_locally(preparation=preparation)
        assert local.failed
        assert local.exception_type in ("UnpicklingError", "EOFError", "PickleError",
                                        "Exception", "TypeError")

    def test_deleted_generated_file_reported(self, plugin):
        preparation = plugin.prepare_debug("mean_deviation")
        preparation.script_path.unlink()
        with pytest.raises(DebugSessionError):
            plugin.debug_udf(preparation=preparation)

    def test_debugging_a_udf_with_runtime_error_reports_line(self, demo_server, tmp_path):
        demo_server.database.execute(
            "CREATE FUNCTION divide_all(x INTEGER, d INTEGER) RETURNS DOUBLE "
            "LANGUAGE PYTHON { return x / d }")
        settings = DevUDFSettings(debug_query="SELECT divide_all(i, 0) FROM numbers")
        plugin = DevUDFPlugin(DevUDFProject(tmp_path / "diverr"), settings,
                              server=demo_server)
        try:
            preparation = plugin.prepare_debug("divide_all")
            local = plugin.run_udf_locally(preparation=preparation)
            # numpy turns integer-array / 0 into a warning, so force a scalar path
            if local.completed:
                pytest.skip("platform treats array division by zero as inf")
            assert local.exception_line is not None
        finally:
            plugin.close()

    def test_missing_udf_target_rejected(self, plugin):
        with pytest.raises(ExtractionError):
            plugin.prepare_debug("does_not_exist",
                                 debug_query="SELECT does_not_exist(i) FROM numbers")


class TestProjectStateIntegrity:
    def test_failed_export_does_not_lose_history(self, plugin):
        plugin.import_udfs(["mean_deviation"])
        commits_before = len(plugin.project.history())
        buffer = plugin.project.open_udf("mean_deviation")
        buffer.set_text("# metadata destroyed\n")
        buffer.save()
        plugin.export_udfs(["mean_deviation"])
        assert len(plugin.project.history()) >= commits_before

    def test_reimport_overwrites_broken_local_copy(self, plugin):
        plugin.import_udfs(["mean_deviation"])
        buffer = plugin.project.open_udf("mean_deviation")
        buffer.set_text("completely broken")
        buffer.save()
        plugin.import_udfs(["mean_deviation"])
        assert "def mean_deviation" in plugin.project.udf_source("mean_deviation")
