"""Tests for debug-query rewriting and input-data extraction (paper §2.2)."""

import numpy as np
import pytest

from repro.core.extract import EXTRACT_FUNCTION_PREFIX, ExtractQueryRewriter, InputExtractor
from repro.core.settings import DataTransferSettings
from repro.errors import ExtractionError
from repro.netproto.client import Connection
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.workloads.udf_corpus import (
    MEAN_DEVIATION_BUGGY_BODY,
    mean_deviation_create_sql,
    setup_classifier_database,
)


@pytest.fixture()
def demo_db() -> Database:
    database = Database()
    database.execute("CREATE TABLE numbers (i INTEGER)")
    for value in range(50):
        database.execute(f"INSERT INTO numbers VALUES ({value})")
    database.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY))
    return database


def signatures_of(database: Database):
    return {name.lower(): database.catalog.get(name).signature
            for name in database.function_names()}


class TestScalarPlanning:
    def test_simple_plan(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers", "mean_deviation")
        assert plan.udf_name == "mean_deviation"
        assert [p.name for p in plan.column_parameters] == ["column"]
        assert plan.extract_function_name == EXTRACT_FUNCTION_PREFIX + "mean_deviation"
        assert "SELECT i AS column FROM numbers" in plan.extraction_query
        assert plan.extract_function_sql.startswith("CREATE OR REPLACE FUNCTION")

    def test_plan_preserves_where_clause(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers WHERE i > 10",
                             "mean_deviation")
        assert "WHERE" in plan.extraction_query
        assert "10" in plan.extraction_query

    def test_plan_with_expression_argument(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i * 2) FROM numbers", "mean_deviation")
        assert "(i * 2) AS column" in plan.extraction_query

    def test_constant_only_call_needs_no_extraction_query(self, demo_db):
        demo_db.execute("CREATE FUNCTION const_fn(x INTEGER) RETURNS INTEGER "
                        "LANGUAGE PYTHON { return x + 1 }")
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT const_fn(41)", "const_fn")
        assert plan.extraction_query is None
        assert plan.constant_parameters[0].value == 41

    def test_unknown_udf_rejected(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        with pytest.raises(ExtractionError):
            rewriter.plan("SELECT missing(i) FROM numbers", "missing")

    def test_query_not_calling_the_udf_rejected(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        with pytest.raises(ExtractionError):
            rewriter.plan("SELECT i FROM numbers", "mean_deviation")

    def test_arity_mismatch_rejected(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        with pytest.raises(ExtractionError):
            rewriter.plan("SELECT mean_deviation(i, i) FROM numbers", "mean_deviation")

    def test_non_select_debug_query_rejected(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        with pytest.raises(ExtractionError):
            rewriter.plan("DELETE FROM numbers", "mean_deviation")


class TestTableFunctionPlanning:
    def test_nested_classifier_plan(self):
        database = Database()
        setup_classifier_database(database, n_rows=40)
        rewriter = ExtractQueryRewriter(signatures_of(database))
        plan = rewriter.plan("SELECT * FROM find_best_classifier(3)",
                             "find_best_classifier")
        assert plan.constant_parameters[0].value == 3
        assert plan.nested_udfs == ["train_rnforest"]
        assert len(plan.loopback_queries) == 2

    def test_table_function_with_subquery_arguments(self):
        database = Database()
        setup_classifier_database(database, n_rows=40)
        rewriter = ExtractQueryRewriter(signatures_of(database))
        plan = rewriter.plan(
            "SELECT * FROM train_rnforest((SELECT f0, f1, label FROM trainingset), 4)",
            "train_rnforest")
        assert [p.name for p in plan.column_parameters] == ["f0", "f1", "classes"]
        assert plan.constant_parameters[0].name == "n_estimators"
        assert plan.constant_parameters[0].value == 4
        assert plan.extraction_query is not None


class TestSamplingExtractFunction:
    def test_sampling_embedded_in_extract_function(self, demo_db):
        transfer = DataTransferSettings(use_sampling=True, sample_size=10, sample_seed=1)
        rewriter = ExtractQueryRewriter(signatures_of(demo_db), transfer)
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers", "mean_deviation")
        assert "choice" in plan.extract_function_sql

    def test_no_sampling_no_choice(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers", "mean_deviation")
        assert "choice" not in plan.extract_function_sql


class TestInputExtraction:
    def make_extractor(self, database, transfer=None):
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        return InputExtractor(connection, signatures_of(database), transfer), connection

    def test_extract_full_column(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers", "mean_deviation")
        extractor, connection = self.make_extractor(demo_db)
        inputs = extractor.extract(plan)
        assert isinstance(inputs.parameters["column"], np.ndarray)
        assert len(inputs.parameters["column"]) == 50
        assert inputs.rows_extracted == 50
        assert inputs.wire_bytes > 0
        connection.close()

    def test_extract_with_sampling_reduces_rows(self, demo_db):
        transfer = DataTransferSettings(use_sampling=True, sample_size=10, sample_seed=7)
        rewriter = ExtractQueryRewriter(signatures_of(demo_db), transfer)
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers", "mean_deviation")
        extractor, connection = self.make_extractor(demo_db, transfer)
        inputs = extractor.extract(plan)
        assert len(inputs.parameters["column"]) == 10
        assert set(inputs.parameters["column"]).issubset(set(range(50)))
        connection.close()

    def test_extract_where_filter_applied_server_side(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers WHERE i < 5",
                             "mean_deviation")
        extractor, connection = self.make_extractor(demo_db)
        inputs = extractor.extract(plan)
        assert sorted(inputs.parameters["column"].tolist()) == [0, 1, 2, 3, 4]
        connection.close()

    def test_extract_nested_classifier_inputs(self):
        database = Database()
        setup_classifier_database(database, n_rows=40)
        rewriter = ExtractQueryRewriter(signatures_of(database))
        plan = rewriter.plan("SELECT * FROM find_best_classifier(2)",
                             "find_best_classifier")
        extractor, connection = self.make_extractor(database)
        inputs = extractor.extract(plan)
        assert inputs.parameters["esttest"] == 2
        assert "select f0, f1, label from testingset" in inputs.loopback
        assert "select f0, f1, label from trainingset" in inputs.loopback
        training = inputs.loopback["select f0, f1, label from trainingset"]
        assert set(training) == {"f0", "f1", "label"}
        connection.close()

    def test_extract_registers_extract_function_on_server(self, demo_db):
        rewriter = ExtractQueryRewriter(signatures_of(demo_db))
        plan = rewriter.plan("SELECT mean_deviation(i) FROM numbers", "mean_deviation")
        extractor, connection = self.make_extractor(demo_db)
        extractor.extract(plan)
        assert demo_db.has_function(EXTRACT_FUNCTION_PREFIX + "mean_deviation")
        connection.close()
