"""Tests for the devUDF project (settings persistence, UDF registry, VCS)."""

import pytest

from repro.core.project import UDF_DIR, DevUDFProject
from repro.core.settings import DataTransferSettings, DevUDFSettings
from repro.errors import ProjectError


@pytest.fixture()
def project(tmp_path) -> DevUDFProject:
    return DevUDFProject(tmp_path / "proj", name="demo-project")


GENERATED_FILE = '''"""devUDF export of UDF 'sample_udf'."""
# devudf:signature: {"language": "PYTHON", "name": "sample_udf", "parameters": [{"name": "x", "number": 0, "type": "INTEGER"}], "return_columns": [], "return_type": "DOUBLE", "returns_table": false}

import pickle

import numpy


def sample_udf(x, _conn=None):
    return float(sum(x))


input_parameters = pickle.load(open('./input.bin', 'rb'))

_conn = None

__devudf_result__ = sample_udf(
    input_parameters['x'],
    _conn=_conn)
print('devUDF result:', __devudf_result__)
'''


class TestLayout:
    def test_directories_created(self, project):
        assert (project.root / UDF_DIR).is_dir()
        assert (project.root / ".devudf").is_dir()

    def test_udf_file_path(self, project):
        assert project.udf_file_path("mean_deviation") == "udfs/mean_deviation.py"


class TestSettingsPersistence:
    def test_save_and_load(self, project):
        settings = DevUDFSettings(
            host="dbhost", port=4242, debug_query="SELECT f(i) FROM t",
            transfer=DataTransferSettings(use_compression=True))
        project.save_settings(settings)
        assert project.has_settings()
        loaded = project.load_settings()
        assert loaded.host == "dbhost"
        assert loaded.port == 4242
        assert loaded.transfer.use_compression

    def test_load_without_settings_raises(self, project):
        with pytest.raises(ProjectError):
            project.load_settings()


class TestUDFRegistry:
    def test_register_and_lookup(self, project):
        project.ide_project.create_file("udfs/sample_udf.py", GENERATED_FILE)
        project.register_udf_file("sample_udf", "udfs/sample_udf.py",
                                  imported_from="monetdb@localhost:50000/demo")
        assert project.has_udf("SAMPLE_UDF")
        entry = project.entry_for("sample_udf")
        assert entry.relative_path == "udfs/sample_udf.py"
        assert entry.imported_from.startswith("monetdb@")

    def test_registry_survives_reopening_the_project(self, project, tmp_path):
        project.ide_project.create_file("udfs/sample_udf.py", GENERATED_FILE)
        project.register_udf_file("sample_udf", "udfs/sample_udf.py")
        reopened = DevUDFProject(project.root)
        assert reopened.has_udf("sample_udf")

    def test_entry_for_unknown_udf(self, project):
        with pytest.raises(ProjectError):
            project.entry_for("ghost")

    def test_nested_udfs_recorded(self, project):
        project.ide_project.create_file("udfs/outer.py", GENERATED_FILE)
        project.register_udf_file("outer", "udfs/outer.py", nested_udfs=["inner"])
        assert project.entry_for("outer").nested_udfs == ["inner"]

    def test_imported_udfs_sorted(self, project):
        project.ide_project.create_file("udfs/b.py", GENERATED_FILE)
        project.ide_project.create_file("udfs/a.py", GENERATED_FILE)
        project.register_udf_file("b_udf", "udfs/b.py")
        project.register_udf_file("a_udf", "udfs/a.py")
        assert [e.udf_name for e in project.imported_udfs()] == ["a_udf", "b_udf"]


class TestSourceAccess:
    def test_udf_source_and_signature(self, project):
        project.ide_project.create_file("udfs/sample_udf.py", GENERATED_FILE)
        project.register_udf_file("sample_udf", "udfs/sample_udf.py")
        assert "def sample_udf" in project.udf_source("sample_udf")
        signature = project.udf_signature("sample_udf")
        assert signature.name == "sample_udf"
        assert signature.parameter_names == ["x"]

    def test_open_udf_returns_editable_buffer(self, project):
        project.ide_project.create_file("udfs/sample_udf.py", GENERATED_FILE)
        project.register_udf_file("sample_udf", "udfs/sample_udf.py")
        buffer = project.open_udf("sample_udf")
        buffer.replace_text("float(sum(x))", "float(max(x))")
        assert "float(max(x))" in project.udf_source("sample_udf")


class TestVCSIntegration:
    def test_commit_saves_buffers_first(self, project):
        project.ide_project.create_file("udfs/sample_udf.py", GENERATED_FILE)
        buffer = project.ide_project.open_file("udfs/sample_udf.py")
        buffer.set_text(GENERATED_FILE + "# edited\n")
        commit = project.commit("edit the UDF")
        assert commit.message == "edit the UDF"
        assert "# edited" in project.vcs.file_at(commit.commit_id, "udfs/sample_udf.py")

    def test_history(self, project):
        project.ide_project.create_file("udfs/sample_udf.py", GENERATED_FILE)
        project.commit("first")
        project.commit("second")
        assert [c.message for c in project.history()] == ["first", "second"]

    def test_vcs_can_be_disabled(self, tmp_path):
        project = DevUDFProject(tmp_path / "novcs", use_vcs=False)
        assert project.history() == []
        with pytest.raises(ProjectError):
            project.commit("nope")
