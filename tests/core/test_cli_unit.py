"""Unit tests for the CLI argument parser (behavioural tests live in
tests/integration/test_cli.py)."""

import pytest

from repro.cli import build_parser


@pytest.fixture()
def parser():
    return build_parser()


class TestParser:
    def test_all_subcommands_registered(self, parser):
        text = parser.format_help()
        for command in ("configure", "list", "import", "export", "debug",
                        "history", "table1", "demo-server"):
            assert command in text

    def test_configure_arguments(self, parser):
        args = parser.parse_args([
            "configure", "--project", "p", "--host", "h", "--port", "1234",
            "--debug-query", "SELECT f(i) FROM t", "--compression", "zlib",
            "--encrypt", "--sample-size", "10"])
        assert args.port == 1234
        assert args.debug_query == "SELECT f(i) FROM t"
        assert args.compression == "zlib"
        assert args.encrypt is True
        assert args.sample_size == 10

    def test_no_encrypt_flag(self, parser):
        args = parser.parse_args(["configure", "--project", "p", "--no-encrypt"])
        assert args.encrypt is False

    def test_import_accepts_multiple_udfs(self, parser):
        args = parser.parse_args(["import", "--project", "p", "a", "b", "c"])
        assert args.udfs == ["a", "b", "c"]

    def test_debug_arguments(self, parser):
        args = parser.parse_args([
            "debug", "--project", "p", "--udf", "f", "--breakpoint", "3",
            "--breakpoint", "9", "--breakpoint-text", "distance +=",
            "--watch", "total", "--run-only", "--max-stops", "7"])
        assert args.breakpoint == [3, 9]
        assert args.breakpoint_text == "distance +="
        assert args.watch == ["total"]
        assert args.run_only is True
        assert args.max_stops == 7

    def test_missing_subcommand_rejected(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_invalid_compression_choice_rejected(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["configure", "--project", "p", "--compression", "lz4"])

    def test_demo_server_defaults(self, parser):
        args = parser.parse_args(["demo-server", "--csv-dir", "/tmp/x"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.fixed is False
