"""Tests for the Listing 1 <-> Listing 2 code transformations."""

import pickle
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transform import (
    NESTED_MARKER,
    SIGNATURE_MARKER,
    UDFCodeTransformer,
    extract_function_body,
    function_names_in_source,
    normalise_body,
    signature_from_json,
    signature_to_json,
    strip_catalog_braces,
)
from repro.errors import TransformError
from repro.sqldb.catalog import make_signature
from repro.sqldb.types import SQLType
from repro.workloads.udf_corpus import MEAN_DEVIATION_BUGGY_BODY


@pytest.fixture()
def transformer() -> UDFCodeTransformer:
    return UDFCodeTransformer()


def mean_deviation_signature():
    return make_signature("mean_deviation", [("column", SQLType.INTEGER)],
                          return_type=SQLType.DOUBLE, body=MEAN_DEVIATION_BUGGY_BODY)


class TestStripCatalogBraces:
    def test_listing1_format(self):
        stored = "{\n    import pickle\n    return 1\n};"
        assert strip_catalog_braces(stored) == "import pickle\nreturn 1"

    def test_without_semicolon(self):
        assert strip_catalog_braces("{ return 1 }") == "return 1"

    def test_bare_body_passthrough(self):
        assert strip_catalog_braces("return 2") == "return 2"

    def test_dedents_common_indent(self):
        stored = "{\n        a = 1\n        return a\n};"
        assert strip_catalog_braces(stored) == "a = 1\nreturn a"


class TestForwardTransformation:
    def test_listing2_shape(self, transformer):
        """The generated file has the structure of Listing 2."""
        transformed = transformer.udf_to_standalone(mean_deviation_signature())
        source = transformed.source
        assert "import pickle" in source
        assert "def mean_deviation(column, _conn=None):" in source
        assert "input_parameters = pickle.load(open('./input.bin', 'rb'))" in source
        assert "mean_deviation(\n    input_parameters['column']" in source
        assert transformed.file_name == "mean_deviation.py"

    def test_generated_file_compiles(self, transformer):
        transformed = transformer.udf_to_standalone(mean_deviation_signature())
        compile(transformed.source, "<generated>", "exec")

    def test_signature_metadata_embedded(self, transformer):
        source = transformer.udf_to_standalone(mean_deviation_signature()).source
        assert SIGNATURE_MARKER in source

    def test_custom_input_file(self):
        transformer = UDFCodeTransformer(input_file="./other.bin")
        source = transformer.udf_to_standalone(mean_deviation_signature()).source
        assert "./other.bin" in source

    def test_nested_udfs_embedded(self, transformer):
        nested = make_signature("train_rnforest",
                                [("f0", SQLType.DOUBLE), ("labels", SQLType.INTEGER)],
                                returns_table=True,
                                return_columns=[("clf", SQLType.STRING)],
                                body="return {'clf': 'x'}")
        main = make_signature("find_best", [("n", SQLType.INTEGER)],
                              returns_table=True,
                              return_columns=[("clf", SQLType.STRING)],
                              body="res = _conn.execute('SELECT * FROM train_rnforest"
                                   "((SELECT f0, labels FROM t), 1)')\nreturn res")
        transformed = transformer.udf_to_standalone(main, nested=[nested])
        assert "def train_rnforest(f0, labels, _conn=None):" in transformed.source
        assert "_DevUDFLocalConnection" in transformed.source
        assert NESTED_MARKER in transformed.source
        assert transformed.nested_names == ["train_rnforest"]

    def test_no_local_connection_without_loopback(self, transformer):
        source = transformer.udf_to_standalone(mean_deviation_signature()).source
        assert "_DevUDFLocalConnection" not in source

    def test_numpy_preimported(self, transformer):
        """MonetDB/Python pre-imports numpy; the generated file must too."""
        assert "import numpy" in transformer.udf_to_standalone(
            mean_deviation_signature()).source

    def test_zero_parameter_udf(self, transformer):
        signature = make_signature("constant", [], return_type=SQLType.INTEGER,
                                   body="return 42")
        source = transformer.udf_to_standalone(signature).source
        assert "constant(_conn=_conn)" in source
        compile(source, "<gen>", "exec")

    def test_body_with_syntax_error_rejected(self, transformer):
        signature = make_signature("broken", [("x", SQLType.INTEGER)],
                                   return_type=SQLType.INTEGER, body="return (((")
        with pytest.raises(TransformError):
            transformer.udf_to_standalone(signature)


class TestReverseTransformation:
    def test_round_trip_body(self, transformer):
        """Import then export must commit exactly the same body (paper §2.2)."""
        signature = mean_deviation_signature()
        source = transformer.udf_to_standalone(signature).source
        recovered = transformer.standalone_to_signature(source, "mean_deviation")
        assert normalise_body(recovered.body) == normalise_body(signature.body)
        assert recovered.parameter_names == ["column"]
        assert recovered.return_type is SQLType.DOUBLE

    def test_edited_body_is_what_gets_exported(self, transformer):
        signature = mean_deviation_signature()
        source = transformer.udf_to_standalone(signature).source
        edited = source.replace("distance += column[i] - mean",
                                "distance += abs(column[i] - mean)")
        recovered = transformer.standalone_to_signature(edited, "mean_deviation")
        assert "abs(column[i] - mean)" in recovered.body

    def test_missing_metadata_rejected(self, transformer):
        with pytest.raises(TransformError):
            transformer.standalone_to_signature("def f():\n    pass\n")

    def test_missing_function_def_rejected(self, transformer):
        source = transformer.udf_to_standalone(mean_deviation_signature()).source
        broken = source.replace("def mean_deviation", "def renamed_function")
        with pytest.raises(TransformError):
            transformer.standalone_to_signature(broken, "mean_deviation")

    def test_list_embedded_udfs(self, transformer):
        nested = make_signature("inner", [("x", SQLType.INTEGER)],
                                return_type=SQLType.INTEGER, body="return x")
        main = make_signature("outer", [("n", SQLType.INTEGER)],
                              return_type=SQLType.INTEGER,
                              body="return _conn.execute('SELECT inner(1)')")
        source = transformer.udf_to_standalone(main, nested=[nested]).source
        assert transformer.list_embedded_udfs(source) == ["outer", "inner"]

    def test_main_signature_is_first_without_expected_name(self, transformer):
        nested = make_signature("inner", [("x", SQLType.INTEGER)],
                                return_type=SQLType.INTEGER, body="return x")
        main = make_signature("outer", [("n", SQLType.INTEGER)],
                              return_type=SQLType.INTEGER,
                              body="return _conn.execute('SELECT inner(1)')")
        source = transformer.udf_to_standalone(main, nested=[nested]).source
        assert transformer.standalone_to_signature(source).name == "outer"


class TestSignatureJson:
    def test_round_trip(self):
        signature = make_signature(
            "t", [("a", SQLType.INTEGER), ("b", SQLType.STRING)],
            returns_table=True,
            return_columns=[("x", SQLType.DOUBLE), ("y", SQLType.INTEGER)])
        recovered = signature_from_json(signature_to_json(signature), body="pass")
        assert recovered.name == "t"
        assert [p.sql_type for p in recovered.parameters] == [SQLType.INTEGER, SQLType.STRING]
        assert recovered.returns_table
        assert [c.name for c in recovered.return_columns] == ["x", "y"]

    def test_corrupt_json_rejected(self):
        with pytest.raises(TransformError):
            signature_from_json("{not json")


class TestHelpers:
    def test_extract_function_body(self):
        source = "def f(a):\n    x = a + 1\n    return x\n\nprint(f(1))\n"
        assert extract_function_body(source, "f") == "x = a + 1\nreturn x\n"

    def test_function_names_in_source(self):
        source = "def a():\n    pass\n\ndef b():\n    pass\n"
        assert function_names_in_source(source) == ["a", "b"]

    def test_runnable_generated_file_executes_the_udf(self, transformer, tmp_path):
        """Running the generated file really executes the UDF (Listing 2 semantics)."""
        signature = make_signature("total", [("values", SQLType.INTEGER)],
                                   return_type=SQLType.DOUBLE,
                                   body="return float(sum(values))")
        transformed = transformer.udf_to_standalone(signature)
        script = tmp_path / transformed.file_name
        script.write_text(transformed.source)
        with open(tmp_path / "input.bin", "wb") as handle:
            pickle.dump({"values": [1, 2, 3, 4]}, handle)
        namespace = {}
        import os

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            exec(compile(script.read_text(), str(script), "exec"), namespace)
        finally:
            os.chdir(cwd)
        assert namespace["__devudf_result__"] == 10.0


class TestBodyRoundTripProperty:
    simple_statements = st.lists(
        st.sampled_from([
            "x = x + 1",
            "y = x * 2",
            "total = 0",
            "for i in range(3):",
            "    total = total + i",
            "if x > 0:",
            "    x = -x",
            "z = 'some text'",
        ]),
        min_size=1, max_size=8,
    )

    @settings(max_examples=50, deadline=None)
    @given(simple_statements)
    def test_body_round_trips(self, statements):
        body = "x = 1\n" + "\n".join(statements) + "\nreturn x\n"
        try:
            compile("def _check(x):\n" + textwrap.indent(body, "    "), "<check>", "exec")
        except SyntaxError:
            return  # skip randomly-invalid bodies: only valid UDFs round-trip
        signature = make_signature("prop_fn", [("x", SQLType.INTEGER)],
                                   return_type=SQLType.INTEGER, body=body)
        transformer = UDFCodeTransformer()
        source = transformer.udf_to_standalone(signature).source
        recovered = transformer.standalone_to_signature(source, "prop_fn")
        assert normalise_body(recovered.body) == normalise_body(body)
