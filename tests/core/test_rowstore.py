"""Tests for the tuple-at-a-time processing-model simulation (paper §2.4)."""

import pytest

from repro.core.rowstore import ProcessingModelSimulator, results_equivalent
from repro.errors import ExecutionError
from repro.sqldb.database import Database


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE values_table (i INTEGER, x DOUBLE)")
    for index in range(20):
        database.execute(f"INSERT INTO values_table VALUES ({index}, {index * 0.5})")
    database.execute("CREATE FUNCTION scale(i INTEGER, x DOUBLE) RETURNS DOUBLE "
                     "LANGUAGE PYTHON { return i * x }")
    database.execute("CREATE FUNCTION col_sum(i INTEGER) RETURNS DOUBLE "
                     "LANGUAGE PYTHON { return float(numpy.sum(i)) }")
    return database


@pytest.fixture()
def simulator(db) -> ProcessingModelSimulator:
    return ProcessingModelSimulator(db)


class TestOperatorAtATime:
    def test_single_invocation_for_whole_column(self, simulator):
        result = simulator.run_operator_at_a_time("scale", "values_table", ["i", "x"])
        assert result.invocations == 1
        assert result.rows == 20
        assert len(result.values) == 20
        assert result.values[4] == pytest.approx(4 * 2.0)

    def test_invocations_per_row_is_small(self, simulator):
        result = simulator.run_operator_at_a_time("scale", "values_table", ["i", "x"])
        assert result.invocations_per_row == pytest.approx(1 / 20)


class TestTupleAtATime:
    def test_one_invocation_per_row(self, simulator):
        result = simulator.run_tuple_at_a_time("scale", "values_table", ["i", "x"])
        assert result.invocations == 20
        assert result.rows == 20
        assert result.invocations_per_row == 1.0

    def test_results_match_operator_model(self, simulator):
        """§2.4: simulating tuple-at-a-time by looping must not change results."""
        comparison = simulator.compare("scale", "values_table", ["i", "x"])
        assert results_equivalent(comparison["operator-at-a-time"],
                                  comparison["tuple-at-a-time"])

    def test_invocation_overhead_shape(self, simulator):
        comparison = simulator.compare("scale", "values_table", ["i", "x"])
        assert comparison["tuple-at-a-time"].invocations == \
            20 * comparison["operator-at-a-time"].invocations


class TestValidation:
    def test_arity_checked(self, simulator):
        with pytest.raises(ExecutionError):
            simulator.run_operator_at_a_time("scale", "values_table", ["i"])

    def test_unknown_table(self, simulator):
        with pytest.raises(Exception):
            simulator.run_operator_at_a_time("scale", "missing", ["i", "x"])

    def test_results_equivalent_tolerance(self):
        from repro.core.rowstore import ProcessingModelResult

        a = ProcessingModelResult("m", values=[1.0, 2.0])
        b = ProcessingModelResult("m", values=[1.0, 2.0 + 1e-12])
        c = ProcessingModelResult("m", values=[1.0, 3.0])
        d = ProcessingModelResult("m", values=[1.0])
        assert results_equivalent(a, b)
        assert not results_equivalent(a, c)
        assert not results_equivalent(a, d)


class TestVectorisedStorageRegression:
    """The storage layer's cached-array scan must not change §2.4 results."""

    def test_compare_reports_identical_values_and_invocation_gap(self, simulator):
        comparison = simulator.compare("scale", "values_table", ["i", "x"])
        operator = comparison["operator-at-a-time"]
        per_tuple = comparison["tuple-at-a-time"]
        assert results_equivalent(operator, per_tuple)
        assert operator.invocations == 1
        assert per_tuple.invocations == operator.rows == per_tuple.rows == 20
        assert per_tuple.invocations_per_row == 1.0
        assert operator.invocations_per_row == pytest.approx(1 / 20)

    def test_operator_model_reuses_cached_column_arrays(self, db, simulator):
        simulator.run_operator_at_a_time("scale", "values_table", ["i", "x"])
        column = db.storage.table("values_table").column("i")
        cached = column.to_numpy()
        # a second run must hand the UDF the same cached array object
        assert column.to_numpy() is cached
        result = simulator.run_operator_at_a_time("scale", "values_table", ["i", "x"])
        assert column.to_numpy() is cached
        assert result.invocations == 1

    def test_mutation_between_runs_is_visible(self, db, simulator):
        before = simulator.run_operator_at_a_time("scale", "values_table", ["i", "x"])
        db.execute("UPDATE values_table SET x = x + 1.0 WHERE i = 0")
        after = simulator.run_operator_at_a_time("scale", "values_table", ["i", "x"])
        assert before.values[1:] == after.values[1:]
        assert before.values[0] == after.values[0]  # i = 0 masks the change
        assert db.execute("SELECT x FROM values_table WHERE i = 0").scalar() == 1.0

    def test_udf_cannot_unlock_the_shared_cache(self, db, simulator):
        """setflags(write=True) inside a UDF must not reach the cache array."""
        db.execute("CREATE FUNCTION unlock(i INTEGER) RETURNS INTEGER LANGUAGE "
                   "PYTHON { i.setflags(write=True); i[0] = 999; return i }")
        from repro.errors import UDFError
        with pytest.raises(UDFError):
            simulator.run_operator_at_a_time("unlock", "values_table", ["i"])
        assert db.execute("SELECT MIN(i) FROM values_table").scalar() == 0
