"""Tests for the mini version-control store."""

import pytest

from repro.core.vcs import MiniVCS
from repro.errors import VCSError


@pytest.fixture()
def repo(tmp_path):
    (tmp_path / "udfs").mkdir()
    (tmp_path / "udfs" / "f.py").write_text("version 1\n")
    return MiniVCS(tmp_path)


class TestCommits:
    def test_commit_and_log(self, repo, tmp_path):
        first = repo.commit("initial import")
        assert repo.head().commit_id == first.commit_id
        (tmp_path / "udfs" / "f.py").write_text("version 2\n")
        second = repo.commit("fix bug")
        log = repo.log()
        assert [c.message for c in log] == ["initial import", "fix bug"]
        assert second.parent == first.commit_id

    def test_file_at_commit(self, repo, tmp_path):
        first = repo.commit("v1")
        (tmp_path / "udfs" / "f.py").write_text("version 2\n")
        repo.commit("v2")
        assert repo.file_at(first.commit_id, "udfs/f.py") == "version 1\n"
        assert repo.file_at(repo.head().commit_id, "udfs/f.py") == "version 2\n"

    def test_file_at_unknown_path(self, repo):
        commit = repo.commit("v1")
        with pytest.raises(VCSError):
            repo.file_at(commit.commit_id, "missing.py")

    def test_get_commit_by_prefix(self, repo):
        commit = repo.commit("v1")
        assert repo.get_commit(commit.commit_id[:8]).commit_id == commit.commit_id
        with pytest.raises(VCSError):
            repo.get_commit("ffffffff")

    def test_only_tracked_glob_is_committed(self, repo, tmp_path):
        (tmp_path / "notes.txt").write_text("not python")
        commit = repo.commit("v1")
        assert "notes.txt" not in commit.files
        assert "udfs/f.py" in commit.files

    def test_empty_head(self, tmp_path):
        assert MiniVCS(tmp_path).head() is None


class TestStatusAndDiff:
    def test_status_clean_modified_added(self, repo, tmp_path):
        repo.commit("v1")
        assert repo.status()["udfs/f.py"] == "clean"
        (tmp_path / "udfs" / "f.py").write_text("changed\n")
        (tmp_path / "udfs" / "g.py").write_text("new file\n")
        status = repo.status()
        assert status["udfs/f.py"] == "modified"
        assert status["udfs/g.py"] == "added"

    def test_status_removed(self, repo, tmp_path):
        repo.commit("v1")
        (tmp_path / "udfs" / "f.py").unlink()
        assert repo.status()["udfs/f.py"] == "removed"

    def test_diff_between_commits(self, repo, tmp_path):
        first = repo.commit("v1")
        (tmp_path / "udfs" / "f.py").write_text("version 1\nplus a fix\n")
        second = repo.commit("v2")
        diffs = repo.diff(first.commit_id, second.commit_id)
        assert len(diffs) == 1
        assert diffs[0].status == "modified"
        assert "+plus a fix" in diffs[0].diff

    def test_diff_against_working_tree(self, repo, tmp_path):
        first = repo.commit("v1")
        (tmp_path / "udfs" / "f.py").write_text("working tree change\n")
        diffs = repo.diff(first.commit_id)
        assert diffs and diffs[0].status == "modified"

    def test_unchanged_files_not_in_diff(self, repo, tmp_path):
        first = repo.commit("v1")
        (tmp_path / "udfs" / "g.py").write_text("new\n")
        second = repo.commit("v2")
        diffs = repo.diff(first.commit_id, second.commit_id)
        assert [d.path for d in diffs] == ["udfs/g.py"]
        assert diffs[0].status == "added"


class TestCheckout:
    def test_checkout_restores_old_version(self, repo, tmp_path):
        first = repo.commit("v1")
        target = tmp_path / "udfs" / "f.py"
        target.write_text("version 2\n")
        repo.commit("v2")
        restored = repo.checkout(first.commit_id)
        assert restored == 1
        assert target.read_text() == "version 1\n"
