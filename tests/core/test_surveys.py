"""Tests for Table 1 (development-environment popularity)."""

from repro.core.surveys import (
    TABLE_1,
    environment,
    format_table,
    ide_vs_text_editor_share,
    ides_preferred_over_text_editors,
    pycharm_rank,
    table_rows,
    total_share,
)


class TestTableContents:
    def test_twelve_rows_as_in_the_paper(self):
        assert len(TABLE_1) == 12

    def test_exact_rows_match_the_paper(self):
        rows = dict((name, (share, kind)) for name, share, kind in table_rows())
        assert rows["Eclipse"] == (25.2, "IDE")
        assert rows["Visual Studio"] == (19.5, "IDE")
        assert rows["Vim"] == (7.9, "Text Editor")
        assert rows["PyCharm"] == (2.3, "IDE")
        assert rows["Visual Studio Code"] == (3.3, "Text Editor")

    def test_rows_sorted_by_share_as_printed(self):
        shares = [share for _, share, _ in table_rows()]
        assert shares == sorted(shares, reverse=True)

    def test_environment_lookup(self):
        assert environment("pycharm").kind == "IDE"


class TestDerivedStatistics:
    def test_total_share(self):
        assert total_share() == 92.2
        assert total_share("IDE") == 77.7
        assert total_share("Text Editor") == 14.5

    def test_ide_vs_text_editor_share(self):
        shares = ide_vs_text_editor_share()
        assert shares["IDE"] == 77.7
        assert shares["Text Editor"] == 14.5

    def test_papers_claim_holds(self):
        """'IDEs are heavily preferred for development over simplistic text editors'."""
        assert ides_preferred_over_text_editors()
        shares = ide_vs_text_editor_share()
        assert shares["IDE"] > 5 * shares["Text Editor"]

    def test_pycharm_is_least_popular_listed(self):
        assert pycharm_rank() == 12


class TestRendering:
    def test_format_table_contains_all_rows(self):
        text = format_table()
        for env in TABLE_1:
            assert env.name in text
        assert "Market Share" in text
