"""Tests for local (non-debug) execution of generated UDF files."""

import pickle
import textwrap

import pytest

from repro.core.runner import LocalUDFRunner
from repro.errors import DebugSessionError


@pytest.fixture()
def runner() -> LocalUDFRunner:
    return LocalUDFRunner()


def write_script(tmp_path, text: str, name: str = "udf_file.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


class TestRunFile:
    def test_successful_run_returns_result_variable(self, runner, tmp_path):
        script = write_script(tmp_path, """\
            def f(x):
                return x * 2
            __devudf_result__ = f(21)
            print('computed', __devudf_result__)
        """)
        outcome = runner.run_file(script)
        assert outcome.completed
        assert outcome.result == 42
        assert "computed 42" in outcome.stdout

    def test_input_bin_loaded_relative_to_working_directory(self, runner, tmp_path):
        with open(tmp_path / "input.bin", "wb") as handle:
            pickle.dump({"values": [1, 2, 3]}, handle)
        script = write_script(tmp_path, """\
            import pickle
            input_parameters = pickle.load(open('./input.bin', 'rb'))
            __devudf_result__ = sum(input_parameters['values'])
        """)
        outcome = runner.run_file(script)
        assert outcome.completed and outcome.result == 6

    def test_exception_reports_line_and_type(self, runner, tmp_path):
        script = write_script(tmp_path, """\
            a = 1
            b = {}
            c = b['missing']
        """)
        outcome = runner.run_file(script)
        assert outcome.failed
        assert outcome.exception_type == "KeyError"
        assert outcome.exception_line == 3
        assert "KeyError" in outcome.traceback_text

    def test_syntax_error_reported(self, runner, tmp_path):
        script = write_script(tmp_path, "def broken(:\n    pass\n")
        outcome = runner.run_file(script)
        assert outcome.failed
        assert outcome.exception_type == "SyntaxError"

    def test_missing_script_raises(self, runner, tmp_path):
        with pytest.raises(DebugSessionError):
            runner.run_file(tmp_path / "absent.py")

    def test_extra_globals_injected(self, runner, tmp_path):
        script = write_script(tmp_path, "__devudf_result__ = INJECTED + 1\n")
        outcome = runner.run_file(script, extra_globals={"INJECTED": 10})
        assert outcome.result == 11

    def test_working_directory_restored_after_run(self, runner, tmp_path):
        import os

        before = os.getcwd()
        script = write_script(tmp_path, "__devudf_result__ = 1\n")
        runner.run_file(script)
        assert os.getcwd() == before

    def test_working_directory_restored_after_failure(self, runner, tmp_path):
        import os

        before = os.getcwd()
        script = write_script(tmp_path, "raise RuntimeError('x')\n")
        runner.run_file(script)
        assert os.getcwd() == before
