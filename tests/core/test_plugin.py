"""Tests for the DevUDFPlugin facade (Figure 1 + the Debug command)."""

import pytest

from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.errors import ExtractionError, SettingsError
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.workloads.udf_corpus import (
    MEAN_DEVIATION_BUGGY_BODY,
    mean_deviation_create_sql,
    setup_classifier_database,
    setup_mixed_catalog,
)


@pytest.fixture()
def demo_server() -> DatabaseServer:
    database = Database()
    database.execute("CREATE TABLE numbers (i INTEGER)")
    for value in (1, 2, 3, 4, 10):
        database.execute(f"INSERT INTO numbers VALUES ({value})")
    database.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY))
    setup_mixed_catalog(database)
    return DatabaseServer(database)


@pytest.fixture()
def plugin(demo_server, tmp_path) -> DevUDFPlugin:
    settings = DevUDFSettings(debug_query="SELECT mean_deviation(i) FROM numbers")
    instance = DevUDFPlugin(DevUDFProject(tmp_path / "proj"), settings, server=demo_server)
    yield instance
    instance.close()


class TestMenuContribution:
    def test_figure1_menu_structure(self, plugin):
        """The main menu gains a 'UDF Development' entry with the three actions."""
        assert plugin.SUBMENU_LABEL in plugin.menu.labels()
        group = plugin.menu.menu(plugin.SUBMENU_LABEL)
        assert group.action_labels() == ["Settings", "Import UDFs", "Export UDFs"]

    def test_actions_are_invokable(self, plugin):
        report = plugin.menu_action(plugin.ACTION_IMPORT).invoke(["mean_deviation"])
        assert report.imported_names == ["mean_deviation"]
        assert plugin.menu_action(plugin.ACTION_IMPORT).invocations == 1

    def test_settings_action_updates_and_persists(self, plugin):
        plugin.menu_action(plugin.ACTION_SETTINGS).invoke(port=49999)
        assert plugin.settings.port == 49999
        assert plugin.project.load_settings().port == 49999

    def test_unknown_setting_rejected(self, plugin):
        with pytest.raises(SettingsError):
            plugin.configure(flux_capacitor=True)

    def test_transfer_settings_via_configure(self, plugin):
        plugin.configure(use_compression=True, use_sampling=True, sample_size=3)
        assert plugin.settings.transfer.use_compression
        assert plugin.settings.transfer.sample_size == 3


class TestConnection:
    def test_connect_reuses_connection(self, plugin):
        first = plugin.connect()
        second = plugin.connect()
        assert first is second

    def test_configure_invalidates_connection(self, plugin):
        first = plugin.connect()
        plugin.configure(database="demo")
        second = plugin.connect()
        assert first is not second

    def test_execute_sql(self, plugin):
        assert plugin.execute_sql("SELECT COUNT(*) FROM numbers").scalar() == 5


class TestDebugTargetDiscovery:
    def test_target_found_from_debug_query(self, plugin):
        assert plugin.find_debug_target() == "mean_deviation"

    def test_explicit_query_overrides_settings(self, plugin):
        assert plugin.find_debug_target("SELECT add_one(i) FROM numbers") == "add_one"

    def test_no_udf_in_query_rejected(self, plugin):
        with pytest.raises(ExtractionError):
            plugin.find_debug_target("SELECT i FROM numbers")

    def test_missing_query_rejected(self, plugin):
        plugin.settings.debug_query = ""
        with pytest.raises(SettingsError):
            plugin.find_debug_target()


class TestPrepareDebug:
    def test_preparation_artifacts(self, plugin):
        preparation = plugin.prepare_debug()
        assert preparation.udf_name == "mean_deviation"
        assert preparation.script_path.exists()
        assert preparation.input_path.exists()
        assert preparation.imported_now == ["mean_deviation"]
        assert preparation.inputs.rows_extracted == 5
        assert preparation.blob_stats.stored_bytes > 0

    def test_prepare_uses_already_imported_file(self, plugin):
        plugin.import_udfs(["mean_deviation"])
        preparation = plugin.prepare_debug()
        assert preparation.imported_now == []

    def test_prepare_requires_debug_query(self, plugin):
        plugin.settings.debug_query = "   "
        with pytest.raises(SettingsError):
            plugin.prepare_debug()

    def test_prepare_with_sampling(self, plugin):
        plugin.configure(use_sampling=True, sample_size=2)
        preparation = plugin.prepare_debug()
        assert len(preparation.inputs.parameters["column"]) == 2


class TestRunAndDebug:
    def test_run_udf_locally_matches_server(self, plugin):
        preparation = plugin.prepare_debug()
        local = plugin.run_udf_locally(preparation=preparation)
        server_value = plugin.execute_sql(plugin.settings.debug_query).scalar()
        assert local.completed
        assert local.result == pytest.approx(server_value)

    def test_debug_with_breakpoints_and_watches(self, plugin):
        preparation = plugin.prepare_debug()
        source = plugin.project.udf_source("mean_deviation")
        line = next(number for number, text in enumerate(source.splitlines(), 1)
                    if "distance += column[i] - mean" in text)
        outcome = plugin.debug_udf(preparation=preparation, breakpoints=[line],
                                   watches={"distance": "distance"})
        assert outcome.completed
        assert len(outcome.breakpoint_stops) == 5
        assert any(isinstance(stop.watches["distance"], (int, float))
                   and stop.watches["distance"] < 0
                   for stop in outcome.breakpoint_stops)

    def test_nested_udf_debugging_end_to_end(self, tmp_path):
        database = Database()
        setup_classifier_database(database, n_rows=40)
        server = DatabaseServer(database)
        settings = DevUDFSettings(debug_query="SELECT * FROM find_best_classifier(2)")
        plugin = DevUDFPlugin(DevUDFProject(tmp_path / "nested"), settings, server=server)
        try:
            preparation = plugin.prepare_debug()
            assert preparation.udf_name == "find_best_classifier"
            local = plugin.run_udf_locally(preparation=preparation)
            assert local.completed
            server_row = plugin.execute_sql(settings.debug_query).fetchone()
            assert local.result["n_estimators"] == server_row[1]
            assert local.result["correct"] == server_row[2]
        finally:
            plugin.close()

    def test_catalog_signature_lookup(self, plugin):
        signature = plugin.catalog_signature("mean_deviation")
        assert signature.parameter_names == ["column"]

    def test_context_manager_closes_connection(self, demo_server, tmp_path):
        settings = DevUDFSettings(debug_query="SELECT mean_deviation(i) FROM numbers")
        with DevUDFPlugin(DevUDFProject(tmp_path / "ctx"), settings,
                          server=demo_server) as plugin:
            plugin.connect()
        assert plugin._connection is None or plugin._connection.closed
