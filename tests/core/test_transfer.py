"""Tests for the local input.bin packaging."""

import numpy as np
import pytest

from repro.core.extract import ExtractedInputs
from repro.core.transfer import (
    LOOPBACK_KEY,
    build_input_parameters,
    read_input_blob,
    write_input_blob,
)
from repro.errors import ExtractionError


@pytest.fixture()
def inputs() -> ExtractedInputs:
    return ExtractedInputs(
        udf_name="mean_deviation",
        parameters={"column": np.arange(100), "n": 5},
        loopback={"select a from t": {"a": [1, 2, 3]}},
        rows_extracted=100,
    )


class TestBuildInputParameters:
    def test_keys_and_loopback(self, inputs):
        payload = build_input_parameters(inputs)
        assert set(payload) == {"column", "n", LOOPBACK_KEY}
        assert isinstance(payload["column"], np.ndarray)
        assert payload["n"] == 5

    def test_no_loopback_key_when_empty(self):
        payload = build_input_parameters(ExtractedInputs("f", parameters={"x": 1}))
        assert LOOPBACK_KEY not in payload

    def test_lists_become_arrays(self):
        payload = build_input_parameters(ExtractedInputs("f", parameters={"x": [1, 2, 3]}))
        assert isinstance(payload["x"], np.ndarray)


class TestWriteReadBlob:
    def test_round_trip(self, inputs, tmp_path):
        path = tmp_path / "input.bin"
        stats = write_input_blob(inputs, path)
        assert path.exists()
        assert stats.stored_bytes == path.stat().st_size
        assert stats.parameters == 2
        assert stats.loopback_queries == 1
        payload = read_input_blob(path)
        assert payload["n"] == 5
        assert list(payload["column"][:3]) == [0, 1, 2]
        assert list(payload[LOOPBACK_KEY]["select a from t"]["a"]) == [1, 2, 3]

    def test_compressed_blob(self, inputs, tmp_path):
        plain = write_input_blob(inputs, tmp_path / "plain.bin")
        compressed = write_input_blob(inputs, tmp_path / "compressed.bin", compress=True)
        assert compressed.compressed
        assert compressed.stored_bytes < plain.stored_bytes
        payload = read_input_blob(tmp_path / "compressed.bin")
        assert payload["n"] == 5

    def test_encrypted_blob_requires_password(self, inputs, tmp_path):
        path = tmp_path / "enc.bin"
        stats = write_input_blob(inputs, path, encrypt_password="monetdb")
        assert stats.encrypted
        with pytest.raises(ExtractionError):
            read_input_blob(path)
        payload = read_input_blob(path, password="monetdb")
        assert payload["n"] == 5

    def test_encrypted_and_compressed(self, inputs, tmp_path):
        path = tmp_path / "both.bin"
        write_input_blob(inputs, path, compress=True, encrypt_password="pw")
        payload = read_input_blob(path, password="pw")
        assert len(payload["column"]) == 100

    def test_missing_blob(self, tmp_path):
        with pytest.raises(ExtractionError):
            read_input_blob(tmp_path / "absent.bin")

    def test_listing2_compatible_load(self, inputs, tmp_path):
        """The plain blob must be loadable exactly the way Listing 2 loads it."""
        import pickle

        path = tmp_path / "input.bin"
        write_input_blob(inputs, path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["n"] == 5
