"""Tests for the interactive debugger (breakpoints, stepping, watches)."""

import textwrap

import pytest

from repro.core.debugger import (
    Breakpoint,
    DebugSession,
    STEP_INTO,
    STEP_OVER,
    ScriptedController,
    StepUntilController,
    debug_file,
)
from repro.errors import DebugSessionError


def write_script(tmp_path, text: str, name: str = "script.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


LOOP_SCRIPT = """\
    total = 0
    values = [3, 1, 4, 1, 5]
    for value in values:
        total = total + value
    __devudf_result__ = total
"""

FUNCTION_SCRIPT = """\
    def helper(x):
        doubled = x * 2
        return doubled

    def main(values):
        out = []
        for value in values:
            out.append(helper(value))
        return out

    __devudf_result__ = main([1, 2, 3])
"""


class TestBreakpoints:
    def test_breakpoint_pauses_each_iteration(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        outcome = debug_file(script, breakpoints=[4])
        assert outcome.completed
        assert outcome.result == 14
        assert len(outcome.breakpoint_stops) == 5
        assert all(stop.line == 4 for stop in outcome.breakpoint_stops)

    def test_locals_snapshot_at_breakpoint(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        outcome = debug_file(script, breakpoints=[4])
        first = outcome.breakpoint_stops[0]
        assert first.local("total") == 0
        assert first.local("value") == 3
        last = outcome.breakpoint_stops[-1]
        assert last.local("total") == 9

    def test_conditional_breakpoint(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        session = DebugSession(script, breakpoints=[Breakpoint(4, condition="value > 3")])
        outcome = session.run()
        assert len(outcome.breakpoint_stops) == 2  # values 4 and 5

    def test_breakpoint_in_function(self, tmp_path):
        script = write_script(tmp_path, FUNCTION_SCRIPT)
        outcome = debug_file(script, breakpoints=[3])
        assert len(outcome.breakpoint_stops) == 3
        assert outcome.breakpoint_stops[0].function == "helper"

    def test_no_breakpoints_consults_controller_from_first_line(self, tmp_path):
        script = write_script(tmp_path, "x = 1\ny = 2\n__devudf_result__ = x + y\n")
        outcome = debug_file(script, controller=ScriptedController([STEP_OVER] * 2))
        assert outcome.completed
        assert outcome.result == 3
        assert [stop.line for stop in outcome.stops[:3]] == [1, 2, 3]

    def test_invalid_breakpoint_line_rejected(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        session = DebugSession(script, breakpoints=[999])
        with pytest.raises(DebugSessionError):
            session.run()

    def test_missing_script_rejected(self, tmp_path):
        with pytest.raises(DebugSessionError):
            DebugSession(tmp_path / "absent.py")


class TestWatches:
    def test_watch_expressions_evaluated_at_stops(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        outcome = debug_file(script, breakpoints=[4],
                             watches={"running_total": "total", "double": "value * 2"})
        assert outcome.breakpoint_stops[0].watches == {"running_total": 0, "double": 6}

    def test_watch_errors_are_reported_not_fatal(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        outcome = debug_file(script, breakpoints=[4],
                             watches={"broken": "undefined_variable"})
        assert "error" in str(outcome.breakpoint_stops[0].watches["broken"])
        assert outcome.completed


class TestStepping:
    def test_scripted_step_over(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        controller = ScriptedController([STEP_OVER] * 4)
        session = DebugSession(script, controller=controller)
        outcome = session.run()
        assert outcome.completed
        # steps recorded sequentially from the first line
        assert [stop.line for stop in outcome.stops[:4]] == [1, 2, 3, 4]

    def test_step_into_function(self, tmp_path):
        script = write_script(tmp_path, FUNCTION_SCRIPT)
        # run to the call site, then step into the helper
        session = DebugSession(script, breakpoints=[8],
                               controller=ScriptedController([STEP_INTO, STEP_INTO]))
        outcome = session.run()
        functions = [stop.function for stop in outcome.stops]
        assert "helper" in functions

    def test_step_until_predicate(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        controller = StepUntilController(lambda stop: stop.local("total", 0) > 7)
        session = DebugSession(script, controller=controller)
        outcome = session.run()
        assert controller.matched_stop is not None
        assert controller.matched_stop.local("total") > 7
        assert outcome.quit_requested

    def test_unknown_controller_command_rejected(self, tmp_path):
        script = write_script(tmp_path, LOOP_SCRIPT)
        session = DebugSession(script, controller=lambda stop, s: "teleport")
        with pytest.raises(DebugSessionError):
            session.run()

    def test_scripted_controller_validates_commands(self):
        with pytest.raises(DebugSessionError):
            ScriptedController(["warp"])


class TestExceptions:
    def test_exception_location_reported(self, tmp_path):
        script = write_script(tmp_path, """\
            x = 1
            y = 0
            z = x / y
            __devudf_result__ = z
        """)
        outcome = debug_file(script)
        assert not outcome.completed
        assert outcome.exception_type == "ZeroDivisionError"
        assert outcome.exception_line == 3

    def test_stdout_captured(self, tmp_path):
        script = write_script(tmp_path, "print('debug output')\n__devudf_result__ = 1\n")
        outcome = debug_file(script)
        assert "debug output" in outcome.stdout


class TestScenarioADetection:
    def test_negative_distance_visible_while_stepping(self, tmp_path):
        """The Scenario A bug as seen through the debugger: the accumulator of a
        mean *deviation* goes negative because abs() is missing."""
        script = write_script(tmp_path, """\
            column = [1, 2, 3, 4, 10]
            mean = sum(column) / len(column)
            distance = 0
            for i in range(0, len(column)):
                distance += column[i] - mean
            __devudf_result__ = distance / len(column)
        """)
        outcome = debug_file(script, breakpoints=[5], watches={"distance": "distance"})
        negatives = [stop for stop in outcome.breakpoint_stops
                     if isinstance(stop.watches["distance"], (int, float))
                     and stop.watches["distance"] < 0]
        assert negatives, "stepping through the loop must expose the negative accumulator"
