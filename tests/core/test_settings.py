"""Tests for the devUDF settings (Figure 2)."""

import pytest

from repro.core.settings import DataTransferSettings, DevUDFSettings
from repro.errors import SettingsError
from repro.netproto.compression import CODEC_NONE, CODEC_ZLIB


class TestConnectionSettings:
    def test_figure2_fields_present(self):
        """Every connection field of the Figure 2 dialog exists."""
        settings = DevUDFSettings()
        for field_name in ("host", "port", "database", "username", "password",
                           "debug_query"):
            assert hasattr(settings, field_name)

    def test_validate_connection_ok(self):
        DevUDFSettings().validate_connection()

    def test_missing_fields_rejected(self):
        settings = DevUDFSettings(host="", password="")
        with pytest.raises(SettingsError, match="host"):
            settings.validate_connection()

    def test_bad_port_rejected(self):
        with pytest.raises(SettingsError):
            DevUDFSettings(port=0).validate_connection()
        with pytest.raises(SettingsError):
            DevUDFSettings(port=99999).validate_connection()

    def test_debug_requires_query(self):
        settings = DevUDFSettings()
        with pytest.raises(SettingsError, match="debug"):
            settings.validate_for_debug()
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers"
        settings.validate_for_debug()

    def test_connection_info_conversion(self):
        settings = DevUDFSettings(host="dbhost", port=1234, username="alice",
                                  password="pw", database="prod")
        info = settings.connection_info()
        assert (info.host, info.port, info.username, info.database) == \
            ("dbhost", 1234, "alice", "prod")


class TestTransferSettings:
    def test_defaults_are_all_off(self):
        transfer = DataTransferSettings()
        assert not transfer.use_compression
        assert not transfer.use_encryption
        assert not transfer.use_sampling
        assert transfer.transfer_options().compression == CODEC_NONE
        assert transfer.sample_spec() is None

    def test_compression_option(self):
        transfer = DataTransferSettings(use_compression=True)
        assert transfer.transfer_options().compression == CODEC_ZLIB

    def test_unknown_codec_rejected(self):
        transfer = DataTransferSettings(use_compression=True, compression_codec="lzma")
        with pytest.raises(SettingsError):
            transfer.validate()

    def test_sampling_requires_size_or_fraction(self):
        transfer = DataTransferSettings(use_sampling=True)
        with pytest.raises(SettingsError):
            transfer.validate()

    def test_sampling_size_spec(self):
        transfer = DataTransferSettings(use_sampling=True, sample_size=100)
        transfer.validate()
        assert transfer.sample_spec().size == 100

    def test_sampling_fraction_spec(self):
        transfer = DataTransferSettings(use_sampling=True, sample_fraction=0.1,
                                        sample_seed=7)
        spec = transfer.sample_spec()
        assert spec.fraction == 0.1 and spec.seed == 7

    def test_invalid_sampling_values(self):
        with pytest.raises(SettingsError):
            DataTransferSettings(use_sampling=True, sample_size=0).validate()
        with pytest.raises(SettingsError):
            DataTransferSettings(use_sampling=True, sample_fraction=2.0).validate()

    def test_encryption_flag_propagates(self):
        transfer = DataTransferSettings(use_encryption=True)
        assert transfer.transfer_options().encrypt is True


class TestSerialisation:
    def test_round_trip_through_dict(self):
        settings = DevUDFSettings(
            host="h", port=1111, database="db", username="u", password="p",
            debug_query="SELECT f(i) FROM t",
            transfer=DataTransferSettings(use_compression=True, use_sampling=True,
                                          sample_fraction=0.5),
        )
        clone = DevUDFSettings.from_dict(settings.as_dict())
        assert clone.as_dict() == settings.as_dict()

    def test_describe_mentions_options(self):
        settings = DevUDFSettings(
            transfer=DataTransferSettings(use_compression=True, use_encryption=True,
                                          use_sampling=True, sample_size=500))
        text = settings.describe()
        assert "compression" in text and "encryption" in text and "500" in text
