"""Tests for the traditional-vs-devUDF workflow simulators (the C4 machinery)."""

import contextlib
import io

import pytest

from repro.core.workflow import (
    DeveloperCostModel,
    DevUDFWorkflow,
    TraditionalWorkflow,
    WorkflowMetrics,
    compare_workflows,
)
from repro.netproto.server import DatabaseServer
from repro.workloads.scenarios import ScenarioA, ScenarioB, make_scenario_a, make_scenario_b


@pytest.fixture()
def scenario_a(tmp_path) -> ScenarioA:
    return ScenarioA(tmp_path / "csv_a", n_files=3, rows_per_file=10)


@pytest.fixture()
def scenario_b(tmp_path) -> ScenarioB:
    return ScenarioB(tmp_path / "csv_b", n_files=3, rows_per_file=10)


def run_quietly(callable_, *args, **kwargs):
    """Suppress the print-debugging output the instrumented UDFs produce."""
    with contextlib.redirect_stdout(io.StringIO()):
        return callable_(*args, **kwargs)


class TestTraditionalWorkflow:
    def test_scenario_a_metrics(self, scenario_a):
        server = DatabaseServer()
        scenario_a.setup(server)
        metrics = run_quietly(TraditionalWorkflow().run, scenario_a, server)
        assert metrics.workflow == "traditional"
        assert metrics.bug_found
        assert metrics.final_result_correct
        # initial run + 3 print rounds + the fix
        assert metrics.full_query_executions == 5
        assert metrics.udf_recreations == 4
        assert metrics.manual_transformations == 4
        assert metrics.developer_iterations == 5
        assert metrics.server_round_trips >= metrics.full_query_executions

    def test_scenario_b_metrics(self, scenario_b):
        server = DatabaseServer()
        scenario_b.setup(server)
        metrics = run_quietly(TraditionalWorkflow().run, scenario_b, server)
        assert metrics.bug_found and metrics.final_result_correct
        assert metrics.udf_recreations == 3


class TestDevUDFWorkflow:
    def test_scenario_a_metrics(self, scenario_a, tmp_path):
        server = DatabaseServer()
        scenario_a.setup(server)
        metrics = run_quietly(DevUDFWorkflow(tmp_path / "projects").run, scenario_a, server)
        assert metrics.workflow == "devudf"
        assert metrics.bug_found
        assert metrics.final_result_correct
        assert metrics.debug_sessions == 1
        assert metrics.local_runs == 1
        assert metrics.full_query_executions == 1
        assert metrics.udf_recreations == 1  # only the export
        assert metrics.manual_transformations == 0

    def test_scenario_b_metrics(self, scenario_b, tmp_path):
        server = DatabaseServer()
        scenario_b.setup(server)
        metrics = run_quietly(DevUDFWorkflow(tmp_path / "projects").run, scenario_b, server)
        assert metrics.bug_found and metrics.final_result_correct
        assert metrics.manual_transformations == 0


class TestComparison:
    @pytest.mark.parametrize("factory_maker", [make_scenario_a, make_scenario_b])
    def test_devudf_wins_on_both_scenarios(self, factory_maker, tmp_path):
        """The paper's headline claim, made checkable (C4)."""
        comparison = run_quietly(
            compare_workflows, factory_maker(tmp_path / "wf"),
            project_root=tmp_path / "projects")
        assert comparison.devudf_wins
        assert comparison.devudf.full_query_executions < \
            comparison.traditional.full_query_executions
        assert comparison.devudf.udf_recreations < comparison.traditional.udf_recreations
        assert comparison.iteration_reduction >= 1.0
        assert comparison.devudf.estimated_developer_seconds < \
            comparison.traditional.estimated_developer_seconds

    def test_comparison_rows_for_reporting(self, tmp_path):
        comparison = run_quietly(
            compare_workflows, make_scenario_a(tmp_path / "wf"),
            project_root=tmp_path / "projects")
        rows = comparison.as_rows()
        assert [row["workflow"] for row in rows] == ["traditional", "devudf"]
        assert all("estimated_developer_seconds" in row for row in rows)


class TestCostModel:
    def test_estimate_components(self):
        model = DeveloperCostModel(
            seconds_per_edit_iteration=10, seconds_per_manual_transformation=5,
            seconds_per_server_round_trip=1, seconds_per_debug_session=20,
            wire_bandwidth_bytes_per_second=100)
        metrics = WorkflowMetrics(
            workflow="x", scenario="s", developer_iterations=3,
            manual_transformations=2, server_round_trips=4, debug_sessions=1,
            wire_bytes=200)
        assert model.estimate(metrics) == pytest.approx(30 + 10 + 4 + 20 + 2)

    def test_manual_transformation_cost_penalises_traditional_only(self, tmp_path):
        comparison = run_quietly(
            compare_workflows, make_scenario_a(tmp_path / "wf"),
            project_root=tmp_path / "projects")
        assert comparison.traditional.manual_transformations > 0
        assert comparison.devudf.manual_transformations == 0
