"""Tests for Import UDFs / Export UDFs (Figure 3) round trips."""

import pytest

from repro.core.exporter import UDFExporter
from repro.core.importer import UDFImporter
from repro.core.project import DevUDFProject
from repro.core.transform import normalise_body
from repro.errors import ExportUDFError, ImportUDFError
from repro.netproto.client import Connection
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.workloads.udf_corpus import (
    MEAN_DEVIATION_BUGGY_BODY,
    load_numbers_create_sql,
    mean_deviation_create_sql,
    setup_classifier_database,
    setup_mixed_catalog,
)


@pytest.fixture()
def rich_server() -> DatabaseServer:
    database = Database()
    database.execute("CREATE TABLE numbers (i INTEGER)")
    database.execute("INSERT INTO numbers VALUES (1), (2), (3)")
    database.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY))
    database.execute(load_numbers_create_sql())
    setup_mixed_catalog(database)
    return DatabaseServer(database)


@pytest.fixture()
def connection(rich_server) -> Connection:
    conn = Connection.connect_in_process(rich_server)
    yield conn
    conn.close()


@pytest.fixture()
def project(tmp_path) -> DevUDFProject:
    return DevUDFProject(tmp_path / "project")


@pytest.fixture()
def importer(connection, project) -> UDFImporter:
    return UDFImporter(connection, project)


@pytest.fixture()
def exporter(connection, project) -> UDFExporter:
    return UDFExporter(connection, project)


class TestCatalogIntrospection:
    def test_fetch_signatures_reads_meta_tables(self, importer):
        signatures = importer.fetch_signatures()
        assert "mean_deviation" in signatures
        assert "loadnumbers" in signatures
        signature = signatures["mean_deviation"]
        assert signature.parameter_names == ["column"]
        assert normalise_body(signature.body) == normalise_body(MEAN_DEVIATION_BUGGY_BODY)

    def test_table_function_signature(self, importer):
        signature = importer.fetch_signatures()["loadnumbers"]
        assert signature.returns_table
        assert [c.name for c in signature.return_columns] == ["i"]

    def test_list_available_sorted(self, importer):
        names = importer.list_available()
        assert names == sorted(names)
        assert "mean_deviation" in names and "add_one" in names

    def test_internal_extract_functions_hidden(self, importer, connection):
        connection.execute(
            "CREATE FUNCTION devudf_extract_something(x INTEGER) RETURNS TABLE(x INTEGER) "
            "LANGUAGE PYTHON { return {'x': x} }")
        assert "devudf_extract_something" not in importer.list_available()


class TestImport:
    def test_import_selected(self, importer, project):
        report = importer.import_udfs(["mean_deviation"])
        assert report.imported_names == ["mean_deviation"]
        assert "add_one" in report.skipped
        assert project.has_udf("mean_deviation")
        assert project.ide_project.exists("udfs/mean_deviation.py")

    def test_import_all(self, importer, project):
        report = importer.import_udfs(None)
        assert set(report.imported_names) == set(report.available)
        assert len(project.imported_udfs()) == len(report.available)

    def test_import_unknown_udf(self, importer):
        with pytest.raises(ImportUDFError):
            importer.import_udfs(["does_not_exist"])

    def test_imported_file_is_runnable_python(self, importer, project):
        importer.import_udfs(["mean_deviation"])
        source = project.udf_source("mean_deviation")
        compile(source, "<imported>", "exec")
        assert "def mean_deviation(column, _conn=None):" in source

    def test_import_records_vcs_commit(self, importer, project):
        importer.import_udfs(["mean_deviation"])
        assert len(project.history()) == 1

    def test_import_counts_catalog_queries(self, importer):
        report = importer.import_udfs(["mean_deviation"])
        assert report.queries_issued >= 2  # sys.functions + sys.args


class TestImportNested:
    def test_nested_udf_bundled(self, tmp_path):
        database = Database()
        setup_classifier_database(database, n_rows=30)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        project = DevUDFProject(tmp_path / "nested_project")
        importer = UDFImporter(connection, project)
        report = importer.import_udfs(["find_best_classifier"])
        assert report.imported[0].nested_udfs == ["train_rnforest"]
        source = project.udf_source("find_best_classifier")
        assert "def train_rnforest" in source
        assert "_DevUDFLocalConnection" in source
        connection.close()


class TestExport:
    def test_round_trip_unchanged(self, importer, exporter, rich_server):
        importer.import_udfs(["mean_deviation"])
        before = rich_server.database.catalog.get("mean_deviation").signature.body
        report = exporter.export_udfs(["mean_deviation"])
        assert report.ok
        after = rich_server.database.catalog.get("mean_deviation").signature.body
        assert normalise_body(before) == normalise_body(after)

    def test_edited_udf_changes_server_behaviour(self, importer, exporter, project,
                                                 connection):
        importer.import_udfs(["add_one"])
        buffer = project.open_udf("add_one")
        buffer.set_text(buffer.text.replace("return i + 1", "return i + 1000"))
        buffer.save()
        exporter.export_udfs(["add_one"])
        assert connection.execute("SELECT add_one(1)").scalar() == 1001

    def test_export_without_import_fails(self, exporter):
        report = exporter.export_udfs(["mean_deviation"])
        assert not report.ok
        assert "mean_deviation" in report.failed
        with pytest.raises(ExportUDFError):
            exporter.export_udfs(None)  # nothing imported at all

    def test_export_all_imported(self, importer, exporter):
        importer.import_udfs(["mean_deviation", "add_one"])
        report = exporter.export_udfs(None)
        assert set(report.exported_names) == {"mean_deviation", "add_one"}

    def test_export_reports_failures_per_udf(self, importer, exporter, project):
        importer.import_udfs(["add_one"])
        buffer = project.open_udf("add_one")
        buffer.set_text("# devudf metadata destroyed\n")
        buffer.save()
        report = exporter.export_udfs(["add_one"])
        assert not report.ok
        assert "add_one" in report.failed

    def test_export_statement_is_create_or_replace(self, importer, exporter):
        importer.import_udfs(["mean_deviation"])
        report = exporter.export_udfs(["mean_deviation"])
        assert report.exported[0].create_statement.startswith(
            "CREATE OR REPLACE FUNCTION mean_deviation")

    def test_export_nested_udfs_included(self, tmp_path):
        database = Database()
        setup_classifier_database(database, n_rows=30)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        project = DevUDFProject(tmp_path / "nested_export")
        importer = UDFImporter(connection, project)
        exporter = UDFExporter(connection, project)
        importer.import_udfs(["find_best_classifier"])
        report = exporter.export_udfs(["find_best_classifier"])
        assert set(report.exported_names) == {"find_best_classifier", "train_rnforest"}
        nested_flags = {e.name: e.was_nested for e in report.exported}
        assert nested_flags["train_rnforest"] is True
        connection.close()


class TestFullDevelopmentCycle:
    def test_fix_scenario_a_through_import_export(self, importer, exporter, project,
                                                  connection):
        """The complete §2.5 loop: import, fix the bug, export, correct result."""
        importer.import_udfs(["mean_deviation"])
        buffer = project.open_udf("mean_deviation")
        buffer.set_text(buffer.text.replace("distance += column[i] - mean",
                                            "distance += abs(column[i] - mean)"))
        buffer.save()
        exporter.export_udfs(["mean_deviation"])
        value = connection.execute("SELECT mean_deviation(i) FROM numbers").scalar()
        assert value == pytest.approx(2.0 / 3.0, rel=1e-9)
