"""Tests for nested UDF discovery (paper §2.3)."""

from repro.core.nested import (
    analyse_loopback_queries,
    extract_subquery_arguments,
    find_called_functions,
    find_loopback_queries,
    find_nested_udf_names,
    normalize_query,
    uses_loopback,
)
from repro.workloads.udf_corpus import FIND_BEST_CLASSIFIER_BODY, MEAN_DEVIATION_BUGGY_BODY


class TestNormalizeQuery:
    def test_whitespace_collapsed_and_lowercased(self):
        assert normalize_query("  SELECT  a,\n   b FROM   T ; ") == "select a, b from t"

    def test_idempotent(self):
        once = normalize_query("SELECT data FROM  testingset")
        assert normalize_query(once) == once


class TestFindLoopbackQueries:
    def test_simple_single_quoted(self):
        body = "res = _conn.execute('SELECT i FROM numbers')\nreturn res"
        assert find_loopback_queries(body) == ["SELECT i FROM numbers"]

    def test_triple_quoted_multiline(self):
        queries = find_loopback_queries(FIND_BEST_CLASSIFIER_BODY)
        assert len(queries) == 2
        assert "testingset" in queries[0]
        assert "train_rnforest" in queries[1]

    def test_no_loopback(self):
        assert find_loopback_queries(MEAN_DEVIATION_BUGGY_BODY) == []

    def test_spacing_variants(self):
        body = '_conn . execute ( "SELECT 1" )'
        assert find_loopback_queries(body) == ["SELECT 1"]


class TestFindCalledFunctions:
    def test_names_in_order_without_duplicates(self):
        query = "SELECT f(x), g(f(y)) FROM t"
        assert find_called_functions(query) == ["f", "g"]

    def test_table_function(self):
        assert "train_rnforest" in find_called_functions(
            "SELECT * FROM train_rnforest((SELECT a FROM t), 3)")


class TestSubqueryArguments:
    def test_listing3_shape(self):
        query = ("SELECT * FROM train_rnforest(\n"
                 "   (SELECT data, labels FROM trainingset), %d)")
        assert extract_subquery_arguments(query) == [
            "SELECT data, labels FROM trainingset"]

    def test_multiple_subqueries(self):
        query = "SELECT * FROM f((SELECT a FROM t), (SELECT b FROM u), 3)"
        assert extract_subquery_arguments(query) == ["SELECT a FROM t", "SELECT b FROM u"]

    def test_no_table_function(self):
        assert extract_subquery_arguments("SELECT a FROM t") == []


class TestAnalyseLoopbackQueries:
    def test_classifies_nested_and_plain(self):
        known = ["train_rnforest", "find_best_classifier", "mean_deviation"]
        queries = analyse_loopback_queries(FIND_BEST_CLASSIFIER_BODY, known)
        assert len(queries) == 2
        plain, nested = queries
        assert not plain.calls_nested_udf
        assert not plain.has_placeholders
        assert nested.calls_nested_udf
        assert nested.nested_udfs == ["train_rnforest"]
        assert nested.has_placeholders  # the %d estimator placeholder
        assert nested.subqueries == ["SELECT f0, f1, label FROM trainingset"]

    def test_unknown_functions_not_flagged(self):
        body = "res = _conn.execute('SELECT unknown_fn(i) FROM t')"
        queries = analyse_loopback_queries(body, ["other"])
        assert queries[0].nested_udfs == []

    def test_find_nested_udf_names(self):
        known = ["train_rnforest", "mean_deviation"]
        assert find_nested_udf_names(FIND_BEST_CLASSIFIER_BODY, known) == ["train_rnforest"]
        assert find_nested_udf_names(MEAN_DEVIATION_BUGGY_BODY, known) == []


class TestUsesLoopback:
    def test_detection(self):
        assert uses_loopback(FIND_BEST_CLASSIFIER_BODY)
        assert not uses_loopback(MEAN_DEVIATION_BUGGY_BODY)
