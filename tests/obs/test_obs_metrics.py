"""Unit tests for the zero-dependency observability kit (`repro.obs`)."""

import io
import json
import threading

import pytest

from repro.obs import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    TraceSpan,
    new_trace_id,
)


# --------------------------------------------------------------------------- #
# counters and gauges
# --------------------------------------------------------------------------- #
class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert registry.snapshot()["requests"] == 6

    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(10_000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("hits")
        counter.inc(100)
        assert counter.value == 0
        assert NULL_REGISTRY.counter("anything").value == 0

    def test_gauge_set_and_adjust(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.adjust(-3)
        assert gauge.value == 7


# --------------------------------------------------------------------------- #
# histogram quantile math
# --------------------------------------------------------------------------- #
class TestHistogram:
    def test_empty_histogram_quantiles_are_zero(self):
        histogram = MetricsRegistry().histogram("lat")
        assert histogram.quantile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["lat_count"] == 0
        assert snapshot["lat_p50"] == 0

    def test_single_observation_every_quantile(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.001)  # 1000 us
        # log-bucketed: the estimate must land inside the 1000us bucket,
        # whose bounds are within a factor of sqrt(2) of the true value
        for q in (0.01, 0.5, 0.99):
            estimate = histogram.quantile(q)
            assert 1000 / 1.5 <= estimate <= 1000 * 1.5

    def test_quantiles_are_monotonic_and_ordered(self):
        histogram = MetricsRegistry().histogram("lat")
        for us in range(1, 2000):
            histogram.observe(us / 1e6)
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert p50 <= p95 <= p99
        # uniform 1..1999us: estimates within one bucket factor of truth
        assert 1000 / 1.5 <= p50 <= 1000 * 1.5
        assert 1900 / 1.5 <= p95 <= 1900 * 1.5

    def test_bimodal_distribution(self):
        histogram = MetricsRegistry().histogram("lat")
        for _ in range(90):
            histogram.observe(100 / 1e6)      # 90% fast: 100us
        for _ in range(10):
            histogram.observe(100_000 / 1e6)  # 10% slow: 100ms
        assert histogram.quantile(0.50) < 1000
        assert histogram.quantile(0.95) > 50_000

    def test_count_and_sum_exact(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.000_100)
        histogram.observe(0.000_300)
        snapshot = histogram.snapshot()
        assert snapshot["lat_count"] == 2
        assert snapshot["lat_sum_us"] == 400

    def test_overflow_bucket_bounded_by_max(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(5000.0)  # 5000 s: beyond the last bucket bound
        assert histogram.quantile(0.99) <= 5000.0 * 1e6

    def test_snapshot_values_are_integers(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.123_456)
        for value in histogram.snapshot().values():
            assert isinstance(value, int)

    def test_concurrent_observations_keep_exact_count(self):
        histogram = MetricsRegistry().histogram("lat")

        def worker():
            for i in range(5_000):
                histogram.observe((i % 100 + 1) / 1e6)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.snapshot()["lat_count"] == 20_000

    def test_reset_clears_counts(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.001)
        registry.counter("c").inc()
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["lat_count"] == 0
        assert snapshot["c"] == 0


# --------------------------------------------------------------------------- #
# trace spans
# --------------------------------------------------------------------------- #
class TestTraceSpan:
    def test_nesting_and_breakdown(self):
        root = TraceSpan("query")
        with root.child("parse"):
            pass
        child = root.child("execute")
        grand = child.child("scan")
        grand.finish()
        child.finish()
        root.finish()
        rows = root.breakdown()
        assert [(r["span"], r["depth"]) for r in rows] == [
            ("query", 0), ("parse", 1), ("execute", 1), ("scan", 2)]
        assert all(r["us"] >= 0 for r in rows)

    def test_add_premeasured_child(self):
        root = TraceSpan("query", start=10.0)
        root.add("plan", 10.5, 11.0)
        root.end = 12.0
        spans = {r["span"]: r["us"] for r in root.breakdown()}
        assert spans["plan"] == pytest.approx(500_000)
        assert spans["query"] == pytest.approx(2_000_000)

    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        for trace_id in ids:
            int(trace_id, 16)
            assert len(trace_id) == 16

    def test_to_dict_round_trips_through_json(self):
        root = TraceSpan("query")
        root.child("parse").finish()
        root.finish()
        payload = json.loads(json.dumps(root.to_dict()))
        assert payload["span"] == "query"
        assert payload["children"][0]["span"] == "parse"


# --------------------------------------------------------------------------- #
# structured event log
# --------------------------------------------------------------------------- #
class TestEventLog:
    def test_emits_json_lines(self):
        sink = io.StringIO()
        log = EventLog(sink)
        assert log.emit("query", sql="SELECT 1", us=42)
        line = sink.getvalue().strip()
        event = json.loads(line)
        assert event["event"] == "query"
        assert event["sql"] == "SELECT 1"
        assert event["us"] == 42
        assert "ts" in event

    def test_sampling_keeps_one_in_n(self):
        sink = io.StringIO()
        log = EventLog(sink, sample_every=10)
        emitted = sum(log.emit("tick", n=i) for i in range(100))
        assert emitted == 10
        assert len(sink.getvalue().strip().splitlines()) == 10

    def test_force_bypasses_sampling(self):
        sink = io.StringIO()
        log = EventLog(sink, sample_every=1000)
        log.emit("rare", force=True)
        log.emit("rare", force=True)
        assert len(sink.getvalue().strip().splitlines()) == 2

    def test_file_target_and_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("boot")
        log.close()
        assert json.loads(path.read_text().strip())["event"] == "boot"


# --------------------------------------------------------------------------- #
# registry surface
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_snapshot_merges_all_metric_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(0.001)
        snapshot = registry.snapshot()
        assert snapshot["a"] == 3
        assert snapshot["b"] == 7
        assert snapshot["c_count"] == 1

    def test_exports_expected_symbols(self):
        assert Counter is not None
        assert Gauge is not None
        assert Histogram is not None
