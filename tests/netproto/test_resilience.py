"""Tests for the resilience layer: timeouts, cancellation, admission
control, client retry/backoff, and the structured error taxonomy."""

import threading
import time

import pytest

from repro.errors import (
    ConnectionLostError,
    ExecutionError,
    ProtocolError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerBusyError,
    WireFormatError,
)
from repro.netproto.chaos import FaultyTransport
from repro.netproto.client import (
    Connection,
    ConnectionInfo,
    RetryPolicy,
    is_idempotent_statement,
)
from repro.netproto.messages import (
    ERR_SATURATED,
    ERR_SESSION_LIMIT,
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    MSG_CANCEL,
    error_message_for,
    exception_for_error,
)
from repro.netproto.server import (
    AdmissionController,
    DatabaseServer,
    InProcessTransport,
    ServerLimits,
)
from repro.netproto.wire import decode_frame, decode_message
from repro.sqldb.context import QueryContext
from repro.sqldb.database import Database


BIG_ROWS = 300_000


def make_big_database(rows: int = BIG_ROWS, workers: int = 1) -> Database:
    """A database with a table large enough to split into many morsels."""
    database = Database(workers=workers)
    database.execute("CREATE TABLE big (i INTEGER)")
    column = database.storage.table("big").columns[0]
    column.values.extend(range(rows))
    column.invalidate_cache() if hasattr(column, "invalidate_cache") else None
    return database


@pytest.fixture(scope="module")
def big_database() -> Database:
    return make_big_database()


# --------------------------------------------------------------------------- #
# QueryContext
# --------------------------------------------------------------------------- #
class TestQueryContext:
    def test_no_limits_never_raises(self):
        context = QueryContext()
        context.check()
        assert context.remaining() is None
        assert not context.expired

    def test_timeout_expires(self):
        context = QueryContext(timeout=0.0)
        assert context.expired
        with pytest.raises(QueryTimeoutError):
            context.check()

    def test_cancel_wins_with_reason(self):
        context = QueryContext(timeout=1000.0)
        context.cancel("operator pressed stop")
        with pytest.raises(QueryCancelledError, match="operator pressed stop"):
            context.check()

    def test_resolve_combines_context_and_timeout(self):
        base = QueryContext()
        resolved = QueryContext.resolve(base, 0.0)
        assert resolved is base  # tightened in place
        with pytest.raises(QueryTimeoutError):
            resolved.check()

    def test_resolve_from_nothing(self):
        assert QueryContext.resolve(None, None) is None
        context = QueryContext.resolve(None, 5.0)
        assert context is not None and context.remaining() > 0


# --------------------------------------------------------------------------- #
# statement timeouts through the whole stack
# --------------------------------------------------------------------------- #
class TestTimeouts:
    def test_embedded_timeout_aborts_scan(self, big_database):
        with pytest.raises(QueryTimeoutError):
            big_database.execute("SELECT SUM(i * i) FROM big", timeout=0.0)

    def test_embedded_timeout_leaves_database_usable(self, big_database):
        with pytest.raises(QueryTimeoutError):
            big_database.execute("SELECT SUM(i * i) FROM big", timeout=0.0)
        assert big_database.execute("SELECT COUNT(*) FROM big").scalar() \
            == BIG_ROWS

    def test_timeout_aborts_promptly(self):
        # acceptance: a ~1M-row scan with timeout=0.1 stops within a couple
        # of morsel budgets, not after finishing the whole scan
        database = make_big_database(rows=1_000_000)
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError):
            database.execute(
                "SELECT SUM(i * i * i) FROM big WHERE i % 3 <> 1",
                timeout=0.1)
        assert time.monotonic() - started < 5.0

    def test_client_requested_timeout_over_wire(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        with pytest.raises(QueryTimeoutError):
            connection.execute("SELECT SUM(i * i) FROM big", timeout=0.0)
        assert server.stats.queries_timed_out == 1
        # the error frame is terminal: the connection survives
        assert connection.execute("SELECT 1").scalar() == 1
        connection.close()

    def test_server_side_statement_timeout_cap(self, big_database):
        server = DatabaseServer(
            big_database, limits=ServerLimits(statement_timeout=0.0))
        connection = Connection.connect_in_process(server)
        # client asked for a generous timeout; the server cap still wins
        with pytest.raises(QueryTimeoutError):
            connection.execute("SELECT SUM(i * i) FROM big", timeout=60.0)
        connection.close()

    def test_bad_timeout_option_rejected(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        with pytest.raises(ProtocolError):
            connection.execute("SELECT 1", timeout=-1.0)
        connection.close()


# --------------------------------------------------------------------------- #
# cancellation
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_login_issues_cancel_credentials(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        assert connection.session_id is not None
        assert connection.cancel_key
        connection.close()

    def test_cancel_mid_stream(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None  # first chunk arrived
        assert connection.cancel() is True
        with pytest.raises(QueryCancelledError):
            while stream.fetchone() is not None:
                pass
        assert server.stats.queries_cancelled == 1
        # the terminal error frame leaves the connection usable
        assert connection.execute("SELECT COUNT(*) FROM big").scalar() \
            == BIG_ROWS
        connection.close()

    def test_cancel_with_no_active_query(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        assert connection.cancel() is False
        connection.close()

    def test_cancel_wrong_key_is_a_silent_miss(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None
        intruder = InProcessTransport(server)
        reply = intruder.exchange({
            "type": MSG_CANCEL,
            "session_id": connection.session_id,
            "cancel_key": "not-the-key",
        })
        assert reply == {"type": "cancelled", "found": False}
        intruder.close()
        # the query is unaffected
        assert stream.fetchall()
        connection.close()

    def test_cancel_from_another_thread_over_tcp(self):
        database = make_big_database(workers=2)
        server = DatabaseServer(database)
        from repro.netproto.server import SocketServer

        # Hold chunk production open after the first chunk until the cancel
        # has landed; otherwise the server can push the whole result into
        # socket buffers and finish before the canceller thread runs.
        cancel_sent = threading.Event()
        chunks_seen = [0]

        def hold_after_first(point: str) -> None:
            if point == "chunk":
                chunks_seen[0] += 1
                if chunks_seen[0] > 1:
                    cancel_sent.wait(timeout=10)

        server.fault_hook = hold_after_first
        socket_server = SocketServer(server, host="127.0.0.1", port=0)
        host, port = socket_server.start_background()
        try:
            connection = Connection.connect_tcp(
                ConnectionInfo(host=host, port=port))
            stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
            assert stream.fetchone() is not None
            outcome: dict = {}

            def canceller() -> None:
                outcome["found"] = connection.cancel()
                cancel_sent.set()

            thread = threading.Thread(target=canceller)
            thread.start()
            thread.join(timeout=10)
            assert outcome.get("found") is True
            with pytest.raises(QueryCancelledError):
                stream.fetchall()
            connection.close()
        finally:
            socket_server.stop()


# --------------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_saturation_rejects_with_retryable_error(self, big_database):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                              max_queue_wait=0.0)
        server = DatabaseServer(big_database, limits=limits)
        connection = Connection.connect_in_process(server, retry_policy=None)
        connection.retry_policy = None
        assert server.admission.try_acquire() is None  # hog the only slot
        try:
            with pytest.raises(ServerBusyError) as excinfo:
                connection.execute("SELECT 1")
            assert excinfo.value.retryable
            assert excinfo.value.code == ERR_SATURATED
            assert server.stats.queries_rejected == 1
        finally:
            server.admission.release()
        assert connection.execute("SELECT 1").scalar() == 1
        connection.close()

    def test_queued_query_runs_when_slot_frees(self, big_database):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=4,
                              max_queue_wait=10.0)
        server = DatabaseServer(big_database, limits=limits)
        connection = Connection.connect_in_process(server)
        assert server.admission.try_acquire() is None
        release_timer = threading.Timer(0.1, server.admission.release)
        release_timer.start()
        try:
            assert connection.execute("SELECT 1").scalar() == 1
        finally:
            release_timer.cancel()
        assert server.stats.queries_rejected == 0
        connection.close()

    def test_queue_wait_expiry_rejects(self, big_database):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=4,
                              max_queue_wait=0.05)
        server = DatabaseServer(big_database, limits=limits)
        connection = Connection.connect_in_process(server, retry_policy=None)
        connection.retry_policy = None
        assert server.admission.try_acquire() is None
        try:
            with pytest.raises(ServerBusyError):
                connection.execute("SELECT 1")
        finally:
            server.admission.release()
        connection.close()

    def test_slot_released_after_streamed_result(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        connection.execute("SELECT i FROM big WHERE i < 100")
        assert server.admission.active == 0
        connection.close()

    def test_slot_released_after_error(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        with pytest.raises(ExecutionError):
            connection.execute("SELECT * FROM no_such_table")
        assert server.admission.active == 0
        connection.close()

    def test_session_limit(self, big_database):
        server = DatabaseServer(big_database,
                                limits=ServerLimits(max_sessions=1))
        first = Connection.connect_in_process(server)
        with pytest.raises(ServerBusyError) as excinfo:
            Connection.connect_in_process(server)
        assert excinfo.value.code == ERR_SESSION_LIMIT
        first.close()
        # closing the first session frees the slot
        second = Connection.connect_in_process(server)
        second.close()

    def test_shutdown_drains_and_rejects(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server, retry_policy=None)
        connection.retry_policy = None
        server.begin_shutdown()
        with pytest.raises(ServerBusyError) as excinfo:
            connection.execute("SELECT 1")
        assert excinfo.value.code == ERR_SHUTTING_DOWN
        assert server.drain(timeout=1.0) is True
        connection.close()

    def test_drain_cancels_stragglers(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None  # query now holds a slot
        assert server.drain(timeout=0.05) in (True, False)
        with pytest.raises(QueryCancelledError):
            stream.fetchall()
        assert server.admission.active == 0
        connection.close()


class TestAdmissionControllerUnit:
    def test_acquire_release_counts(self):
        controller = AdmissionController(ServerLimits(max_concurrent_queries=2))
        assert controller.try_acquire() is None
        assert controller.try_acquire() is None
        assert controller.active == 2
        controller.release()
        assert controller.active == 1
        controller.release()
        assert controller.wait_idle(0.1) is True

    def test_queue_depth_bound(self):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                              max_queue_wait=5.0)
        controller = AdmissionController(limits)
        assert controller.try_acquire() is None
        # queue full (depth 0): rejected immediately despite the long wait
        started = time.monotonic()
        assert controller.try_acquire() == ERR_SATURATED
        assert time.monotonic() - started < 1.0

    def test_drain_wakes_waiters(self):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=4,
                              max_queue_wait=30.0)
        controller = AdmissionController(limits)
        assert controller.try_acquire() is None
        results = []
        thread = threading.Thread(
            target=lambda: results.append(controller.try_acquire()))
        thread.start()
        time.sleep(0.05)
        controller.begin_drain()
        thread.join(timeout=5)
        assert results == [ERR_SHUTTING_DOWN]


# --------------------------------------------------------------------------- #
# client retry / backoff / reconnect
# --------------------------------------------------------------------------- #
class TestClientRetry:
    def test_select_retried_until_slot_frees(self, big_database):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                              max_queue_wait=0.0)
        server = DatabaseServer(big_database, limits=limits)
        policy = RetryPolicy(max_attempts=8, base_delay=0.02, jitter=0.0)
        connection = Connection.connect_in_process(server, retry_policy=policy)
        assert server.admission.try_acquire() is None
        release_timer = threading.Timer(0.1, server.admission.release)
        release_timer.start()
        try:
            assert connection.execute("SELECT 1").scalar() == 1
        finally:
            release_timer.cancel()
        assert connection.stats.retries >= 1
        connection.close()

    def test_write_not_retried_on_saturation(self, big_database):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                              max_queue_wait=0.0)
        server = DatabaseServer(big_database, limits=limits)
        connection = Connection.connect_in_process(server)
        assert server.admission.try_acquire() is None
        try:
            with pytest.raises(ServerBusyError):
                connection.execute("INSERT INTO big VALUES (1)")
            assert connection.stats.retries == 0
        finally:
            server.admission.release()
        connection.close()

    def test_retries_exhausted_surfaces_error(self, big_database):
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                              max_queue_wait=0.0)
        server = DatabaseServer(big_database, limits=limits)
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)
        connection = Connection.connect_in_process(server, retry_policy=policy)
        assert server.admission.try_acquire() is None
        try:
            with pytest.raises(ServerBusyError):
                connection.execute("SELECT 1")
        finally:
            server.admission.release()
        assert connection.stats.retries == 1
        connection.close()

    def test_reconnect_after_connection_loss(self, big_database):
        server = DatabaseServer(big_database)
        faulty = FaultyTransport(InProcessTransport(server))
        info = ConnectionInfo(database=server.database.name)
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        connection = Connection(faulty, info, retry_policy=policy)
        connection._transport_factory = lambda: InProcessTransport(server)
        connection.login()
        # the login consumed some receives; fail the next one
        faulty.fail_receive_at = faulty.receives + 1
        assert connection.execute("SELECT 1").scalar() == 1
        assert connection.stats.reconnects == 1
        assert connection.stats.retries == 1
        connection.close()

    def test_lost_connection_write_not_retried(self, big_database):
        server = DatabaseServer(big_database)
        faulty = FaultyTransport(InProcessTransport(server))
        info = ConnectionInfo(database=server.database.name)
        connection = Connection(faulty, info)
        connection._transport_factory = lambda: InProcessTransport(server)
        connection.login()
        faulty.fail_receive_at = faulty.receives + 1
        with pytest.raises(ConnectionLostError):
            connection.execute("INSERT INTO big VALUES (1)")
        connection.close()

    def test_backoff_delays_grow_and_jitter_shrinks(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0,
                             jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(10) == pytest.approx(1.0)  # capped
        jittered = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0,
                               jitter=0.5)
        for attempt in range(5):
            assert 0 < jittered.delay(attempt) <= policy.delay(attempt)

    def test_idempotency_classifier(self):
        assert is_idempotent_statement("SELECT 1")
        assert is_idempotent_statement("  select * from t")
        assert is_idempotent_statement("(SELECT 1)")
        assert is_idempotent_statement("EXPLAIN SELECT 1")
        assert not is_idempotent_statement("INSERT INTO t VALUES (1)")
        assert not is_idempotent_statement("UPDATE t SET i = 1")
        assert not is_idempotent_statement("DELETE FROM t")
        assert not is_idempotent_statement("CREATE TABLE x (i INTEGER)")
        assert not is_idempotent_statement("")


# --------------------------------------------------------------------------- #
# error taxonomy over the wire
# --------------------------------------------------------------------------- #
class TestErrorTaxonomy:
    def test_roundtrip_preserves_type_and_retryability(self):
        for exc, retryable in [
            (QueryTimeoutError("too slow"), False),
            (QueryCancelledError("stopped"), False),
            (ServerBusyError("full"), True),
            (ProtocolError("bad"), False),
            (WireFormatError("garbled"), False),
        ]:
            frame = error_message_for(exc)
            assert frame["retryable"] is retryable
            revived = exception_for_error(frame)
            assert type(revived) is type(exc)
            assert revived.retryable is retryable

    def test_unknown_code_falls_back_to_execution_error(self):
        revived = exception_for_error({"type": "error", "message": "boom",
                                       "code": "from_the_future"})
        assert type(revived) is ExecutionError

    def test_pre_resilience_frame_without_code(self):
        revived = exception_for_error({"type": "error", "message": "boom"})
        assert type(revived) is ExecutionError
        assert not revived.retryable

    def test_timeout_code_on_the_wire(self, big_database):
        server = DatabaseServer(big_database)
        transport = InProcessTransport(server)
        connection = Connection(transport,
                                ConnectionInfo(database="demo"))
        connection._transport_factory = None
        connection.login()
        transport.send({"type": "query", "sql": "SELECT SUM(i * i) FROM big",
                        "options": {"timeout": 0.0}})
        reply = transport.receive()
        # streamed servers put the error in the terminal frame
        while reply.get("type") not in ("error",):
            reply = transport.receive()
        assert reply["code"] == ERR_TIMEOUT
        assert reply["retryable"] is False
        connection.close()


# --------------------------------------------------------------------------- #
# malformed input handling
# --------------------------------------------------------------------------- #
class TestMalformedFrames:
    def test_garbage_payload_gets_structured_error(self, big_database):
        server = DatabaseServer(big_database)
        transport = InProcessTransport(server)
        frames = list(server.handle_frame_stream(
            transport.session, b"\xde\xad\xbe\xef"))
        assert len(frames) == 1
        payload, _ = decode_frame(frames[0])
        reply = decode_message(payload)
        assert reply["type"] == "error"
        assert reply["code"] == "wire_format"
        assert server.stats.wire_errors == 1
        # the session is still usable for a well-formed request afterwards
        transport.send({"type": "hello", "username": "monetdb"})
        assert transport.receive()["type"] == "challenge"
        transport.close()

    def test_non_dict_payload_gets_structured_error(self, big_database):
        from repro.netproto.wire import encode_value

        server = DatabaseServer(big_database)
        transport = InProcessTransport(server)
        frames = list(server.handle_frame_stream(
            transport.session, encode_value([1, 2, 3])))
        payload, _ = decode_frame(frames[0])
        assert decode_message(payload)["code"] == "wire_format"
        transport.close()


# --------------------------------------------------------------------------- #
# session accounting
# --------------------------------------------------------------------------- #
class TestSessionLifecycle:
    def test_close_session_is_idempotent(self, big_database):
        server = DatabaseServer(big_database)
        transport = InProcessTransport(server)
        assert server.active_sessions == 1
        transport.close()
        transport.close()
        assert server.active_sessions == 0
        assert server.stats.sessions_closed == 1

    def test_closing_session_cancels_its_query(self, big_database):
        server = DatabaseServer(big_database)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None
        server.close_session(connection._transport.session)
        assert server.admission.active == 0
        assert server.active_sessions == 0


# --------------------------------------------------------------------------- #
# stalled readers: eager slot release vs. backpressure
# --------------------------------------------------------------------------- #
class TestStalledReader:
    def test_stalled_reader_cannot_pin_execution_slot(self):
        """A client that stops reading mid-stream must be disconnected after
        ``send_timeout`` and its execution slot freed — backpressure pauses
        the query, but never past the admission controller's patience."""
        from repro.netproto.chaos import ChaosProxy, FaultSpec
        from repro.netproto.server import AsyncSocketServer

        database = make_big_database(rows=600_000)
        limits = ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                              send_timeout=0.5)
        server = DatabaseServer(database, result_chunk_rows=8_192,
                                limits=limits)
        front = AsyncSocketServer(server, host="127.0.0.1", port=0)
        # lower the watermarks so backpressure engages without multi-MB
        # results (kernel socket buffers still absorb a few hundred KB)
        front.HIGH_WATER = 128 * 1024
        front.LOW_WATER = 32 * 1024
        host, port = front.start_background()
        try:
            # the proxy relays the handshake, then stops reading from the
            # server: from the server's view the client went quiet mid-stream
            with ChaosProxy((host, port),
                            FaultSpec(stall_after_bytes=2_000)) as proxy:
                failure = []

                def stalled_client():
                    connection = Connection.connect_tcp(
                        ConnectionInfo(host=proxy.address[0],
                                       port=proxy.address[1]))
                    connection.retry_policy = None
                    try:
                        connection.execute("SELECT i FROM big WHERE i >= 0")
                    except Exception as exc:  # noqa: BLE001
                        failure.append(exc)

                thread = threading.Thread(target=stalled_client, daemon=True)
                thread.start()

                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    if server.stats.stalled_disconnects >= 1:
                        break
                    time.sleep(0.05)
                assert server.stats.stalled_disconnects >= 1
                # the slot must be free well before any admission timeout:
                # a direct (well-behaved) client runs immediately
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline and server.admission.active:
                    time.sleep(0.05)
                assert server.admission.active == 0
                survivor = Connection.connect_tcp(
                    ConnectionInfo(host=host, port=port))
                assert survivor.execute(
                    "SELECT COUNT(*) FROM big WHERE i < 10").scalar() == 10
                survivor.close()
        finally:
            front.stop()
