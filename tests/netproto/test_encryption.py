"""Tests for the password-keyed encryption of extracted data (paper §2.1-2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecryptionError
from repro.netproto.encryption import decrypt, derive_key, encrypt, is_encrypted


class TestRoundTrip:
    @pytest.mark.parametrize("payload", [b"", b"x", b"secret data" * 100, bytes(range(256))])
    def test_encrypt_decrypt(self, payload):
        blob = encrypt(payload, "monetdb")
        assert decrypt(blob, "monetdb") == payload

    def test_ciphertext_differs_from_plaintext(self):
        payload = b"sensitive customer records"
        blob = encrypt(payload, "password")
        assert payload not in blob

    def test_encryption_is_randomised(self):
        payload = b"same payload"
        assert encrypt(payload, "pw") != encrypt(payload, "pw")

    def test_is_encrypted_detector(self):
        assert is_encrypted(encrypt(b"data", "pw"))
        assert not is_encrypted(b"plain bytes")


class TestKeying:
    def test_wrong_password_rejected(self):
        blob = encrypt(b"the data", "correct horse")
        with pytest.raises(DecryptionError):
            decrypt(blob, "battery staple")

    def test_tampered_ciphertext_rejected(self):
        blob = bytearray(encrypt(b"the data", "pw"))
        blob[-1] ^= 0xFF
        with pytest.raises(DecryptionError):
            decrypt(bytes(blob), "pw")

    def test_truncated_blob_rejected(self):
        with pytest.raises(DecryptionError):
            decrypt(b"dUE1short", "pw")

    def test_not_a_blob_rejected(self):
        with pytest.raises(DecryptionError):
            decrypt(b"completely unrelated bytes", "pw")

    def test_derive_key_depends_on_salt_and_password(self):
        assert derive_key("pw", b"salt1") != derive_key("pw", b"salt2")
        assert derive_key("pw1", b"salt") != derive_key("pw2", b"salt")
        assert derive_key("pw", b"salt") == derive_key("pw", b"salt")
        assert len(derive_key("pw", b"salt")) == 32


class TestEncryptionProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=2000), st.text(min_size=1, max_size=30))
    def test_roundtrip_property(self, payload, password):
        assert decrypt(encrypt(payload, password), password) == payload

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=500),
           st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
    def test_wrong_password_property(self, payload, password, other):
        if password == other:
            return
        with pytest.raises(DecryptionError):
            decrypt(encrypt(payload, password), other)
