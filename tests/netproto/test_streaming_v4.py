"""Protocol v4: streamed results — morsels leave before execution finishes.

Covers the v4 wire contract (unknown-count header, ``last``-flagged chunks,
dictionary continuity across morsel-encoded chunks), negotiation against
older clients, mid-stream error frames, and the fetch-boundary regression:
``fetchmany`` on an exhausted stream returns ``[]`` even when the final
chunk drained exactly at the fetch boundary.
"""

import time

import pytest

from repro.errors import ExecutionError
from repro.netproto.client import Connection, ConnectionInfo
from repro.netproto.messages import PROTOCOL_VERSION
from repro.netproto.server import DatabaseServer, SocketServer, SocketTransport

ROWS = 40
CHUNK = 8


@pytest.fixture()
def server():
    database_server = DatabaseServer(result_chunk_rows=CHUNK, workers=2)
    db = database_server.database
    db.execute("CREATE TABLE t (a INTEGER, s STRING)")
    table = db.storage.table("t")
    for i in range(ROWS):
        table.insert_row([i, f"name_{i % 4}"])
    return database_server


@pytest.fixture()
def connection(server):
    return Connection.connect_in_process(server)


class TestStreamedResults:
    def test_negotiates_v4(self, connection):
        assert connection.protocol_version == PROTOCOL_VERSION == 4

    def test_header_has_unknown_counts(self, connection):
        stream = connection.execute_stream("SELECT a FROM t")
        assert stream.streamed
        assert stream.row_count == -1
        assert stream._assembler.expected_chunks == -1

    def test_first_rows_arrive_before_the_stream_completes(self, connection):
        stream = connection.execute_stream("SELECT a, s FROM t")
        first = stream.fetchmany(3)
        assert first == [(0, "name_0"), (1, "name_1"), (2, "name_2")]
        assert stream.chunks_received == 1
        assert not stream.complete

    def test_row_count_resolves_after_drain(self, connection):
        stream = connection.execute_stream("SELECT a FROM t")
        rows = stream.fetchall()
        assert len(rows) == ROWS
        assert stream.row_count == ROWS
        assert stream.transfer.total_rows == ROWS

    def test_results_identical_to_materialised_execute(self, server):
        streaming = Connection.connect_in_process(server)
        materialised = Connection.connect_in_process(
            server, max_protocol_version=3)
        for sql in ("SELECT a, s FROM t WHERE a < 30",
                    "SELECT s, COUNT(*) FROM t GROUP BY s",
                    "SELECT a FROM t WHERE a > 1000"):
            assert streaming.execute(sql).fetchall() == \
                materialised.execute(sql).fetchall(), sql

    def test_dictionary_ships_once_across_streamed_chunks(self, connection):
        stream = connection.execute_stream("SELECT s FROM t")
        values = [row[0] for row in stream.fetchall()]
        assert values == [f"name_{i % 4}" for i in range(ROWS)]
        assert stream.chunks_received == ROWS // CHUNK

    def test_empty_streamed_result_keeps_schema(self, connection):
        result = connection.execute("SELECT a, s FROM t WHERE a < 0")
        assert result.column_names == ["a", "s"]
        assert result.fetchall() == []

    def test_dml_still_single_response(self, connection):
        result = connection.execute("INSERT INTO t VALUES (99, 'x')")
        assert result.affected_rows == 1

    def test_non_streamable_selects_fall_back(self, connection):
        stream = connection.execute_stream("SELECT a FROM t ORDER BY a DESC")
        assert not stream.streamed  # materialised header with known counts
        assert stream.row_count == ROWS + 0
        assert stream.fetchone() == (ROWS - 1,)

    def test_stream_results_off_serves_materialised(self):
        quiet = DatabaseServer(result_chunk_rows=CHUNK, stream_results=False)
        quiet.database.execute("CREATE TABLE t (a INTEGER)")
        quiet.database.execute("INSERT INTO t VALUES (1)")
        conn = Connection.connect_in_process(quiet)
        stream = conn.execute_stream("SELECT a FROM t")
        assert not stream.streamed
        assert stream.fetchall() == [(1,)]


class TestFetchBoundaryRegression:
    """`fetchmany` on an exhausted stream returns [] instead of raising
    when the final chunk drained exactly at the fetch boundary."""

    def test_exact_chunk_boundary_then_empty(self, connection):
        cursor = connection.cursor()
        cursor.execute("SELECT a FROM t")  # 40 rows = 5 chunks of 8
        for _ in range(ROWS // CHUNK):
            assert len(cursor.fetchmany(CHUNK)) == CHUNK
        assert cursor.fetchmany(CHUNK) == []
        assert cursor.fetchmany(1) == []
        assert cursor.fetchone() is None

    def test_single_fetch_consuming_everything(self, connection):
        cursor = connection.cursor()
        cursor.execute("SELECT a FROM t")
        assert len(cursor.fetchmany(ROWS)) == ROWS
        assert cursor.fetchmany(3) == []

    def test_fetchall_then_fetchmany(self, connection):
        cursor = connection.cursor()
        cursor.execute("SELECT a FROM t")
        assert len(cursor.fetchall()) == ROWS
        assert cursor.fetchmany(2) == []
        assert cursor.fetchall() == []

    def test_exhausted_empty_result(self, connection):
        cursor = connection.cursor()
        cursor.execute("SELECT a FROM t WHERE a < 0")
        assert cursor.fetchmany(5) == []
        assert cursor.fetchmany(5) == []


class TestMidStreamError:
    def test_error_after_first_chunk_does_not_poison_the_socket(self):
        """A failure in a later morsel arrives as the stream's terminal
        error frame: the client must not issue another blocking receive
        (which would time out and kill the connection) while draining."""
        database_server = DatabaseServer(result_chunk_rows=4)
        db = database_server.database
        db.execute("CREATE TABLE logt (v DOUBLE)")
        # two clean chunks, then LOG(-1) raises inside the third morsel
        db.storage.table("logt").column("v").extend([1.0] * 8 + [-1.0])
        socket_server = SocketServer(database_server)
        host, port = socket_server.start_background()
        transport = SocketTransport(host, port, timeout=3.0)
        connection = Connection(transport, ConnectionInfo(
            host=host, port=port, username="monetdb", password="monetdb",
            database="demo"))
        connection.login()
        try:
            started = time.monotonic()
            with pytest.raises(ExecutionError):
                connection.execute("SELECT LOG(v) FROM logt")
            # the terminal error frame ends the stream: no timed-out drain
            assert time.monotonic() - started < 2.0
            assert connection.execute(
                "SELECT COUNT(*) FROM logt").scalar() == 9
        finally:
            connection.close()
            socket_server.stop()


class TestStreamSafety:
    def test_new_query_drains_streamed_stream(self, connection):
        stream = connection.execute_stream("SELECT a FROM t")
        stream.fetchmany(2)
        assert connection.execute("SELECT COUNT(*) FROM t").scalar() == ROWS
        assert len(stream.fetchall()) == ROWS - 2

    def test_error_then_connection_still_usable(self, connection):
        with pytest.raises(ExecutionError):
            connection.execute("SELECT nosuch FROM t")
        assert connection.execute("SELECT COUNT(*) FROM t").scalar() == ROWS

    def test_older_clients_unaffected(self, server):
        for version, expect in ((1, 1), (2, 2), (3, 3)):
            conn = Connection.connect_in_process(
                server, max_protocol_version=version)
            assert conn.protocol_version == expect
            assert len(conn.execute("SELECT a, s FROM t").fetchall()) == ROWS
