"""Tests for uniform random sampling of result sets (paper §2.1-2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netproto.sampling import SampleSpec, sample_columns, sample_indices


class TestSampleSpec:
    def test_requires_exactly_one_of_size_or_fraction(self):
        with pytest.raises(ValueError):
            SampleSpec()
        with pytest.raises(ValueError):
            SampleSpec(size=10, fraction=0.5)

    def test_validates_ranges(self):
        with pytest.raises(ValueError):
            SampleSpec(size=-1)
        with pytest.raises(ValueError):
            SampleSpec(fraction=0.0)
        with pytest.raises(ValueError):
            SampleSpec(fraction=1.5)

    def test_resolve_size(self):
        assert SampleSpec(size=10).resolve_size(100) == 10
        assert SampleSpec(size=200).resolve_size(100) == 100
        assert SampleSpec(fraction=0.25).resolve_size(100) == 25
        assert SampleSpec(fraction=0.001).resolve_size(100) == 1


class TestSampleIndices:
    def test_without_replacement_and_sorted(self):
        indices = sample_indices(100, SampleSpec(size=30, seed=1))
        assert len(indices) == len(set(indices)) == 30
        assert indices == sorted(indices)
        assert all(0 <= i < 100 for i in indices)

    def test_seed_reproducibility(self):
        spec = SampleSpec(fraction=0.5, seed=42)
        assert sample_indices(50, spec) == sample_indices(50, spec)

    def test_different_seeds_differ(self):
        a = sample_indices(1000, SampleSpec(size=100, seed=1))
        b = sample_indices(1000, SampleSpec(size=100, seed=2))
        assert a != b

    def test_full_sample_returns_all_rows(self):
        assert sample_indices(10, SampleSpec(fraction=1.0)) == list(range(10))
        assert sample_indices(10, SampleSpec(size=10)) == list(range(10))


class TestSampleColumns:
    def test_row_alignment_preserved(self):
        columns = {"i": list(range(100)), "j": [v * 2 for v in range(100)]}
        sampled = sample_columns(columns, SampleSpec(size=20, seed=3))
        assert len(sampled["i"]) == len(sampled["j"]) == 20
        assert all(j == 2 * i for i, j in zip(sampled["i"], sampled["j"]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sample_columns({"a": [1, 2], "b": [1]}, SampleSpec(size=1))

    def test_empty_columns(self):
        assert sample_columns({}, SampleSpec(size=5)) == {}

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.01, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    def test_sample_size_close_to_fraction(self, rows, fraction, seed):
        """Uniform sampling: the sample size tracks the requested fraction (C2)."""
        spec = SampleSpec(fraction=fraction, seed=seed)
        indices = sample_indices(rows, spec)
        expected = spec.resolve_size(rows)
        assert len(indices) == expected
        assert expected <= rows

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=10, max_value=300), st.integers(min_value=0, max_value=100))
    def test_sample_is_subset_of_rows(self, rows, seed):
        values = list(range(rows))
        sampled = sample_columns({"v": values}, SampleSpec(fraction=0.3, seed=seed))
        assert set(sampled["v"]).issubset(set(values))
