"""The async (selector event loop) front end.

The thread-per-connection behaviours are covered by the parametrized suites
in test_socket_server.py / test_chaos.py; this file tests what is *specific*
to the event loop: many idle connections multiplexed by one thread, strict
per-connection frame ordering, saturation pre-rejection, streamed results
through the per-connection send buffers, and idle reaping.
"""

import threading
import time

import pytest

from repro.errors import ReproError, ServerBusyError
from repro.netproto.client import Connection, ConnectionInfo
from repro.netproto.server import (
    AsyncSocketServer,
    DatabaseServer,
    ServerLimits,
)
from repro.sqldb.database import Database


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def make_server(rows: int = 0, **server_kwargs):
    database = Database(workers=2)
    database.execute("CREATE TABLE big (i INTEGER)")
    if rows:
        column = database.storage.table("big").columns[0]
        column.values.extend(range(rows))
    server = DatabaseServer(database, **server_kwargs)
    front = AsyncSocketServer(server, host="127.0.0.1", port=0)
    host, port = front.start_background()
    return server, front, host, port


def tcp(host, port, **kwargs):
    return Connection.connect_tcp(ConnectionInfo(host=host, port=port),
                                  **kwargs)


class TestMultiplexing:
    def test_many_idle_connections_one_loop_thread(self):
        server, front, host, port = make_server(
            rows=1000, limits=ServerLimits(max_sessions=300))
        threads_before = threading.active_count()
        idle = [tcp(host, port) for _ in range(100)]
        try:
            # 100 connections cost zero additional threads (the worker pool
            # is allocated up front, sized by admission limits)
            assert threading.active_count() == threads_before
            assert server.active_sessions == 100
            # an active query is unaffected by the idle crowd
            active = tcp(host, port)
            assert active.execute("SELECT SUM(i) FROM big").scalar() == \
                sum(range(1000))
            active.close()
            # every idle connection still answers
            for connection in idle[::20]:
                assert connection.execute("SELECT 1").scalar() == 1
        finally:
            for connection in idle:
                connection.close()
            front.stop()
        assert wait_until(lambda: server.active_sessions == 0)

    def test_session_limit_still_enforced(self):
        server, front, host, port = make_server(
            limits=ServerLimits(max_sessions=2))
        first = tcp(host, port)
        second = tcp(host, port)
        try:
            with pytest.raises((ServerBusyError, ReproError, OSError)):
                extra = tcp(host, port, retry_policy=None)
                extra.close()
            assert server.active_sessions == 2
        finally:
            first.close()
            second.close()
            front.stop()

    def test_concurrent_queries_across_connections(self):
        server, front, host, port = make_server(rows=50_000)
        connections = [tcp(host, port) for _ in range(8)]
        results, errors = [], []

        def worker(connection, low):
            try:
                value = connection.execute(
                    f"SELECT COUNT(*) FROM big WHERE i >= {low}").scalar()
                results.append((low, value))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c, i * 1000))
                   for i, c in enumerate(connections)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert sorted(results) == [(i * 1000, 50_000 - i * 1000)
                                   for i in range(8)]
        for connection in connections:
            connection.close()
        front.stop()

    def test_streamed_v4_results_through_send_buffers(self):
        server, front, host, port = make_server(
            rows=120_000, result_chunk_rows=4_096)
        connection = tcp(host, port)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        rows = stream.fetchall()
        assert len(rows) == 120_000
        connection.close()
        front.stop()


class TestOrderingAndSaturation:
    def test_pipelined_frames_keep_order(self):
        # raw pipelining: several query frames written back-to-back must be
        # answered in order (the loop queues frames behind the busy one)
        from repro.netproto.wire import decode_message, encode_message, read_frame

        server, front, host, port = make_server(rows=100)
        connection = tcp(host, port)  # does the handshake for us
        stream = connection._transport._stream
        for n in (1, 2, 3, 4):
            stream.write(encode_message(
                {"type": "query", "sql": f"SELECT {n}", "options": {}}))
        stream.flush()
        # v4 answers each query with a result header + a last-flagged chunk;
        # the 4 pipelined queries must come back strictly in order
        replies = [decode_message(read_frame(stream)) for _ in range(8)]
        assert [r["type"] for r in replies] == \
            ["result", "result_chunk"] * 4
        connection.close()
        front.stop()

    def test_saturation_pre_rejection(self):
        server, front, host, port = make_server(
            rows=200_000, result_chunk_rows=4_096,
            limits=ServerLimits(max_concurrent_queries=1, max_queue_depth=0,
                                max_queue_wait=0.05))
        # hold chunk production open after the first chunk so the one
        # execution slot stays occupied while we probe
        release = threading.Event()
        chunks_seen = [0]

        def hold_after_first(point):
            if point == "chunk":
                chunks_seen[0] += 1
                if chunks_seen[0] > 1:
                    release.wait(timeout=10)

        server.fault_hook = hold_after_first
        slow = tcp(host, port)
        slow.retry_policy = None
        stream = slow.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None
        rejected = 0
        try:
            for _ in range(4):
                fast = tcp(host, port)
                fast.retry_policy = None
                try:
                    fast.execute("SELECT 1")
                except ServerBusyError:
                    rejected += 1
                finally:
                    fast.close()
        finally:
            release.set()
        assert rejected >= 1
        assert server.stats.queries_rejected >= 1
        stream.fetchall()
        slow.close()
        front.stop()


class TestIdleReaping:
    def test_idle_connection_reaped(self):
        server, front, host, port = make_server(
            limits=ServerLimits(idle_timeout=0.3))
        front.poll_interval = 0.05
        connection = tcp(host, port)
        assert connection.execute("SELECT 1").scalar() == 1
        assert wait_until(lambda: server.stats.idle_disconnects >= 1,
                          timeout=5.0)
        assert wait_until(lambda: server.active_sessions == 0)
        front.stop()


class TestLifecycle:
    def test_stop_with_open_connections(self):
        server, front, host, port = make_server()
        connections = [tcp(host, port) for _ in range(5)]
        assert server.active_sessions == 5
        front.stop()
        assert server.active_sessions == 0

    def test_clean_close_message(self):
        server, front, host, port = make_server()
        connection = tcp(host, port)
        connection.close()
        assert wait_until(lambda: server.active_sessions == 0)
        assert server.stats.sessions_closed >= 1
        front.stop()
