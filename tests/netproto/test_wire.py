"""Tests for the binary wire codec and framing."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import struct

from repro.errors import ConnectionLostError, WireFormatError
from repro.netproto.wire import (
    MAGIC,
    MAX_FRAME_BYTES,
    decode_frame,
    decode_message,
    decode_value,
    encode_frame,
    encode_message,
    encode_value,
    read_frame,
    write_frame,
)


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**63, -2**70, 3.5, -0.0, "hello", "",
        "unicode: café ∑", b"", b"\x00\xff", [1, 2, 3], [], {"a": 1},
        {"nested": {"list": [1, "x", None]}}, [None, True, {"k": b"v"}],
    ])
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_becomes_list(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_numpy_values_are_normalised(self):
        import numpy as np

        assert decode_value(encode_value(np.int64(7))) == 7
        assert decode_value(encode_value(np.array([1, 2]))) == [1, 2]

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(WireFormatError):
            encode_value({1: "x"})

    def test_unencodable_object_rejected(self):
        with pytest.raises(WireFormatError):
            encode_value(object())

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireFormatError):
            decode_value(encode_value(1) + b"extra")

    def test_truncated_payload_rejected(self):
        with pytest.raises(WireFormatError):
            decode_value(encode_value("hello")[:-1])

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireFormatError):
            decode_value(b"Z")


class TestFraming:
    def test_frame_roundtrip(self):
        payload = b"some payload"
        frame = encode_frame(payload)
        decoded, rest = decode_frame(frame + b"tail")
        assert decoded == payload
        assert rest == b"tail"

    def test_bad_magic_rejected(self):
        with pytest.raises(WireFormatError):
            decode_frame(b"XX\x00\x00\x00\x01a")

    def test_incomplete_frame_rejected(self):
        frame = encode_frame(b"abcdef")
        with pytest.raises(WireFormatError):
            decode_frame(frame[:-2])

    def test_stream_read_write(self):
        stream = io.BytesIO()
        write_frame(stream, b"one")
        write_frame(stream, b"two")
        stream.seek(0)
        assert read_frame(stream) == b"one"
        assert read_frame(stream) == b"two"

    def test_read_frame_on_closed_stream(self):
        # EOF between frames is a peer disconnect, not a codec failure
        with pytest.raises(ConnectionLostError):
            read_frame(io.BytesIO(b""))

    def test_read_frame_on_mid_frame_eof(self):
        frame = encode_frame(b"abcdef")
        with pytest.raises(WireFormatError):
            read_frame(io.BytesIO(frame[:-2]))

    def test_hostile_length_prefix_rejected(self):
        # a 2 GiB length prefix must be rejected before any allocation
        hostile = MAGIC + struct.pack(">I", (1 << 31) - 1) + b"x" * 16
        with pytest.raises(WireFormatError, match="exceeds"):
            read_frame(io.BytesIO(hostile))
        with pytest.raises(WireFormatError, match="exceeds"):
            decode_frame(hostile)

    def test_read_frame_custom_cap(self):
        frame = encode_frame(b"x" * 128)
        with pytest.raises(WireFormatError, match="exceeds"):
            read_frame(io.BytesIO(frame), max_length=64)

    def test_oversized_payload_not_encodable(self):
        class FakePayload(bytes):
            def __len__(self) -> int:
                return MAX_FRAME_BYTES + 1

        with pytest.raises(WireFormatError, match="exceeds"):
            encode_frame(FakePayload())


class TestMessages:
    def test_message_roundtrip(self):
        message = {"type": "query", "sql": "SELECT 1", "options": {"compress": True}}
        frame = encode_message(message)
        payload, _ = decode_frame(frame)
        assert decode_message(payload) == message

    def test_non_dict_message_rejected(self):
        with pytest.raises(WireFormatError):
            decode_message(encode_value([1, 2, 3]))


json_like = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(min_value=-2**40, max_value=2**40),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=30), st.binary(max_size=30)),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=20,
)


class TestWireProperties:
    @settings(max_examples=100, deadline=None)
    @given(json_like)
    def test_value_roundtrip_property(self, value):
        assert decode_value(encode_value(value)) == value

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=2000))
    def test_frame_roundtrip_property(self, payload):
        decoded, rest = decode_frame(encode_frame(payload))
        assert decoded == payload and rest == b""
