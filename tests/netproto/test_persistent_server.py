"""The server over a durable database: --db wiring and restart recovery."""

from repro.netproto.client import Connection
from repro.netproto.server import DatabaseServer, main as server_main
from repro.sqldb.database import Database


class TestPersistentServer:
    def test_queries_survive_server_restart(self, tmp_path):
        path = tmp_path / "server.db"
        database = Database(path=path)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (i INTEGER, s STRING)")
        cursor.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'a')")
        cursor.execute("CHECKPOINT")
        cursor.execute("INSERT INTO t VALUES (4, 'b')")
        connection.close()
        database.close()  # server shutdown: auto-checkpoint

        # "restart": a fresh server process over the same file
        reopened = Database(path=path)
        server2 = DatabaseServer(reopened)
        connection2 = Connection.connect_in_process(server2)
        cursor2 = connection2.cursor()
        cursor2.execute("SELECT * FROM t ORDER BY i")
        assert cursor2.fetchall() == [(1, "a"), (2, None), (3, "a"), (4, "b")]
        connection2.close()
        reopened.close()

    def test_mutations_through_wire_are_wal_logged(self, tmp_path):
        import shutil

        from repro.sqldb.persist import wal_path_for

        path = tmp_path / "wire.db"
        database = Database(path=path)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (i INTEGER)")
        cursor.execute("INSERT INTO t VALUES (7)")
        # crash simulation: never close, just copy the files
        crashed = tmp_path / "crash.db"
        shutil.copy(wal_path_for(path), wal_path_for(crashed))
        recovered = Database(path=crashed)
        assert recovered.execute("SELECT i FROM t").fetchall() == [(7,)]
        recovered.close()
        connection.close()
        database.close()


class TestDemoServerResume:
    def test_crashed_mid_setup_demo_redoes_setup_on_next_launch(self, tmp_path):
        from repro.workloads.udf_corpus import demo_server

        path = tmp_path / "demo.db"
        # simulate a first launch that died after ingesting part of
        # `numbers` but before any CREATE FUNCTION ran (the partial state is
        # durable, and no completion marker was written)
        partial = Database(name="demo", path=path)
        partial.execute("CREATE TABLE numbers (i INTEGER)")
        partial.execute("INSERT INTO numbers VALUES (1), (2), (3)")
        partial.persistence.close(checkpoint=False)

        server, setup = demo_server(str(tmp_path / "csv"), db_path=str(path))
        database = server.database
        # no completion marker: the partial corpus was wiped and fully
        # rebuilt — the full CSV workload, every UDF, and the marker
        assert database.has_function("mean_deviation")
        assert database.has_function("loadNumbers")
        assert database.row_count("numbers") == setup.workload.total_rows
        database.close()

    def test_completed_demo_preserves_user_edits_across_restart(self, tmp_path):
        from repro.workloads.udf_corpus import demo_server

        path = tmp_path / "demo.db"
        server, setup = demo_server(str(tmp_path / "csv"), db_path=str(path))
        total = setup.workload.total_rows
        server.database.execute("DELETE FROM numbers WHERE i < 5")
        remaining = server.database.row_count("numbers")
        assert remaining < total
        server.database.close()

        # a completed demo restarts with the user's edits intact — the
        # marker keeps the setup from re-ingesting the CSVs
        server2, _setup = demo_server(str(tmp_path / "csv"), db_path=str(path))
        assert server2.database.row_count("numbers") == remaining
        server2.database.close()

        # relaunching with an option the original setup didn't include
        # tops up that corpus without disturbing the rest
        server3, _setup = demo_server(str(tmp_path / "csv"), db_path=str(path),
                                      with_classifier=True)
        assert server3.database.row_count("numbers") == remaining
        assert server3.database.row_count("trainingset") > 0
        assert server3.database.has_function("train_rnforest")
        server3.database.close()


class TestServerMainDbFlag:
    def test_main_parser_accepts_db_flag(self, capsys, tmp_path, monkeypatch):
        """``python -m repro.netproto.server --db path`` starts durable."""
        import threading

        path = tmp_path / "cli.db"
        # pre-populate so the served state proves recovery ran
        seeded = Database(path=path)
        seeded.execute("CREATE TABLE greetings (s STRING)")
        seeded.execute("INSERT INTO greetings VALUES ('hello')")
        seeded.close()

        # make the foreground join return immediately so main() exits
        monkeypatch.setattr(threading.Thread, "join",
                            lambda self, timeout=None: None)
        assert server_main(["--db", str(path), "--port", "0"]) == 0
        output = capsys.readouterr().out
        assert "durable" in output and str(path) in output
        # main() closed the database (checkpoint); the file reopens intact
        check = Database(path=path)
        assert check.execute("SELECT s FROM greetings").scalar() == "hello"
        check.close()


class TestStatsMessage:
    def test_server_stats_round_trip(self, tmp_path):
        path = tmp_path / "stats.db"
        database = Database(path=path)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        connection.execute("CREATE TABLE t (i INTEGER)")
        connection.execute("INSERT INTO t VALUES (1), (2)")
        stats = connection.server_stats()
        # one flat namespace: engine, durability, and wire counters together
        assert stats["db.tables"] == 1
        assert stats["server.queries_executed"] == 2
        assert stats["server.corruption_errors"] == 0
        assert stats["persist.wal_sealed"] == 0
        assert "persist.verify_runs" in stats
        connection.close()
        database.close()

    def test_stats_requires_authentication(self):
        from repro.netproto.messages import MSG_STATS

        server = DatabaseServer()
        session = server.open_session()
        reply = next(iter(server.handle_message_stream(
            session, {"type": MSG_STATS})))
        assert reply["type"] == "error"
        assert reply["code"] == "auth"

    def test_corruption_errors_are_counted(self, tmp_path):
        from repro.errors import CorruptionError
        from repro.sqldb.persist import format as persist_format

        path = tmp_path / "rot.db"
        seeded = Database(path=path)
        seeded.execute("CREATE TABLE t (i INTEGER)")
        seeded.execute("INSERT INTO t VALUES (1), (2), (3)")
        seeded.close()
        data = bytearray(path.read_bytes())
        footer = persist_format.read_footer(bytes(data), path)
        segment = footer["tables"][0]["segments"][0]
        data[segment["offset"] + 5] ^= 0xFF
        path.write_bytes(bytes(data))

        database = Database(path=path, salvage=True)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        try:
            connection.execute("SELECT * FROM t")
        except CorruptionError:
            pass
        stats = connection.server_stats()
        assert stats["server.corruption_errors"] == 1
        assert stats["persist.quarantined_tables"] == 1
        connection.close()
        database.persistence.close(checkpoint=False)


class TestVerifyBackupOverWire:
    def test_verify_and_backup_statements(self, tmp_path):
        path = tmp_path / "wireverify.db"
        target = tmp_path / "wirecopy.db"
        database = Database(path=path)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        connection.execute("CREATE TABLE t (i INTEGER)")
        connection.execute("INSERT INTO t VALUES (1), (2), (3)")
        connection.execute("CHECKPOINT")
        verify = connection.execute("VERIFY")
        statuses = dict(zip(verify.to_dict()["object"],
                            verify.to_dict()["status"]))
        assert statuses["t"] == "ok"
        backup = connection.execute(f"BACKUP TO '{target}'")
        assert backup.to_dict()["rows"] == [3]
        connection.close()
        database.close()
        restored = Database(path=target)
        assert restored.execute("SELECT COUNT(*) FROM t").scalar() == 3
        restored.close()


class TestVerifyOnStart:
    def test_clean_database_starts(self, capsys, tmp_path, monkeypatch):
        import threading

        path = tmp_path / "vclean.db"
        seeded = Database(path=path)
        seeded.execute("CREATE TABLE t (i INTEGER)")
        seeded.execute("INSERT INTO t VALUES (1)")
        seeded.close()
        monkeypatch.setattr(threading.Thread, "join",
                            lambda self, timeout=None: None)
        assert server_main(["--db", str(path), "--port", "0",
                            "--verify-on-start"]) == 0
        output = capsys.readouterr().out
        assert "ok=True" in output

    def test_corrupt_database_refuses_to_serve(self, capsys, tmp_path):
        from repro.sqldb.persist import format as persist_format

        path = tmp_path / "vrot.db"
        seeded = Database(path=path)
        seeded.execute("CREATE TABLE t (i INTEGER)")
        seeded.execute("INSERT INTO t VALUES (1), (2), (3)")
        seeded.close()
        data = bytearray(path.read_bytes())
        footer = persist_format.read_footer(bytes(data), path)
        segment = footer["tables"][0]["segments"][0]
        data[segment["offset"] + 5] ^= 0xFF
        path.write_bytes(bytes(data))
        assert server_main(["--db", str(path), "--port", "0",
                            "--verify-on-start"]) == 1
        output = capsys.readouterr().out
        assert "CORRUPT" in output and "table 't'" in output
