"""The server over a durable database: --db wiring and restart recovery."""

from repro.netproto.client import Connection
from repro.netproto.server import DatabaseServer, main as server_main
from repro.sqldb.database import Database


class TestPersistentServer:
    def test_queries_survive_server_restart(self, tmp_path):
        path = tmp_path / "server.db"
        database = Database(path=path)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (i INTEGER, s STRING)")
        cursor.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'a')")
        cursor.execute("CHECKPOINT")
        cursor.execute("INSERT INTO t VALUES (4, 'b')")
        connection.close()
        database.close()  # server shutdown: auto-checkpoint

        # "restart": a fresh server process over the same file
        reopened = Database(path=path)
        server2 = DatabaseServer(reopened)
        connection2 = Connection.connect_in_process(server2)
        cursor2 = connection2.cursor()
        cursor2.execute("SELECT * FROM t ORDER BY i")
        assert cursor2.fetchall() == [(1, "a"), (2, None), (3, "a"), (4, "b")]
        connection2.close()
        reopened.close()

    def test_mutations_through_wire_are_wal_logged(self, tmp_path):
        import shutil

        from repro.sqldb.persist import wal_path_for

        path = tmp_path / "wire.db"
        database = Database(path=path)
        server = DatabaseServer(database)
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE t (i INTEGER)")
        cursor.execute("INSERT INTO t VALUES (7)")
        # crash simulation: never close, just copy the files
        crashed = tmp_path / "crash.db"
        shutil.copy(wal_path_for(path), wal_path_for(crashed))
        recovered = Database(path=crashed)
        assert recovered.execute("SELECT i FROM t").fetchall() == [(7,)]
        recovered.close()
        connection.close()
        database.close()


class TestDemoServerResume:
    def test_crashed_mid_setup_demo_redoes_setup_on_next_launch(self, tmp_path):
        from repro.workloads.udf_corpus import demo_server

        path = tmp_path / "demo.db"
        # simulate a first launch that died after ingesting part of
        # `numbers` but before any CREATE FUNCTION ran (the partial state is
        # durable, and no completion marker was written)
        partial = Database(name="demo", path=path)
        partial.execute("CREATE TABLE numbers (i INTEGER)")
        partial.execute("INSERT INTO numbers VALUES (1), (2), (3)")
        partial.persistence.close(checkpoint=False)

        server, setup = demo_server(str(tmp_path / "csv"), db_path=str(path))
        database = server.database
        # no completion marker: the partial corpus was wiped and fully
        # rebuilt — the full CSV workload, every UDF, and the marker
        assert database.has_function("mean_deviation")
        assert database.has_function("loadNumbers")
        assert database.row_count("numbers") == setup.workload.total_rows
        database.close()

    def test_completed_demo_preserves_user_edits_across_restart(self, tmp_path):
        from repro.workloads.udf_corpus import demo_server

        path = tmp_path / "demo.db"
        server, setup = demo_server(str(tmp_path / "csv"), db_path=str(path))
        total = setup.workload.total_rows
        server.database.execute("DELETE FROM numbers WHERE i < 5")
        remaining = server.database.row_count("numbers")
        assert remaining < total
        server.database.close()

        # a completed demo restarts with the user's edits intact — the
        # marker keeps the setup from re-ingesting the CSVs
        server2, _setup = demo_server(str(tmp_path / "csv"), db_path=str(path))
        assert server2.database.row_count("numbers") == remaining
        server2.database.close()

        # relaunching with an option the original setup didn't include
        # tops up that corpus without disturbing the rest
        server3, _setup = demo_server(str(tmp_path / "csv"), db_path=str(path),
                                      with_classifier=True)
        assert server3.database.row_count("numbers") == remaining
        assert server3.database.row_count("trainingset") > 0
        assert server3.database.has_function("train_rnforest")
        server3.database.close()


class TestServerMainDbFlag:
    def test_main_parser_accepts_db_flag(self, capsys, tmp_path, monkeypatch):
        """``python -m repro.netproto.server --db path`` starts durable."""
        import threading

        path = tmp_path / "cli.db"
        # pre-populate so the served state proves recovery ran
        seeded = Database(path=path)
        seeded.execute("CREATE TABLE greetings (s STRING)")
        seeded.execute("INSERT INTO greetings VALUES ('hello')")
        seeded.close()

        # make the foreground join return immediately so main() exits
        monkeypatch.setattr(threading.Thread, "join",
                            lambda self, timeout=None: None)
        assert server_main(["--db", str(path), "--port", "0"]) == 0
        output = capsys.readouterr().out
        assert "durable" in output and str(path) in output
        # main() closed the database (checkpoint); the file reopens intact
        check = Database(path=path)
        assert check.execute("SELECT s FROM greetings").scalar() == "hello"
        check.close()
