"""PREPARE/EXECUTE over the wire: message round trips, the parameter-binding
type matrix, legacy protocol versions against the async front end, and the
server cache counters exposed through ``stats``."""

import pytest

from repro.errors import ExecutionError, ReproError
from repro.netproto.client import Connection, ConnectionInfo
from repro.netproto.server import (
    AsyncSocketServer,
    DatabaseServer,
    SocketServer,
)
from repro.sqldb.database import Database

FRONT_ENDS = {"threaded": SocketServer, "async": AsyncSocketServer}


@pytest.fixture(params=sorted(FRONT_ENDS))
def prepared_server(request):
    database = Database(result_cache_bytes=1 << 20)
    database.execute(
        "CREATE TABLE typed (i INTEGER, big BIGINT, d DOUBLE, "
        "flag BOOLEAN, s STRING, payload BLOB)")
    server = DatabaseServer(database)
    socket_server = FRONT_ENDS[request.param](server, host="127.0.0.1", port=0)
    host, port = socket_server.start_background()
    yield server, host, port
    socket_server.stop()


def tcp(host, port, **kwargs):
    return Connection.connect_tcp(ConnectionInfo(host=host, port=port),
                                  **kwargs)


class TestPreparedRoundTrip:
    def test_prepare_execute_deallocate(self, prepared_server):
        _, host, port = prepared_server
        connection = tcp(host, port)
        connection.execute("INSERT INTO typed (i) VALUES (1), (2), (3)")
        handle = connection.prepare(
            "above", "SELECT i FROM typed WHERE i > ?")
        assert handle.parameter_count == 1
        assert [r[0] for r in handle.execute([1]).rows()] == [2, 3]
        assert [r[0] for r in handle.execute([2]).rows()] == [3]
        assert handle.deallocate() is True
        with pytest.raises(ReproError):
            connection.execute_prepared("above", [1])
        connection.close()

    def test_handle_arity_check_is_client_side(self, prepared_server):
        _, host, port = prepared_server
        connection = tcp(host, port)
        handle = connection.prepare("one", "SELECT ? + 0")
        with pytest.raises(ExecutionError, match="argument"):
            handle.execute([])
        connection.close()

    def test_prepared_registry_is_shared_across_connections(
            self, prepared_server):
        _, host, port = prepared_server
        first = tcp(host, port)
        first.execute("INSERT INTO typed (i) VALUES (7)")
        first.prepare("shared", "SELECT COUNT(*) FROM typed WHERE i = ?")
        second = tcp(host, port)
        assert second.execute_prepared("shared", [7]).scalar() == 1
        first.close()
        second.close()

    def test_prepare_bad_sql_is_an_error_frame(self, prepared_server):
        _, host, port = prepared_server
        connection = tcp(host, port)
        with pytest.raises(ReproError):
            connection.prepare("broken", "SELEKT 1")
        # the connection survives the failed prepare
        assert connection.execute("SELECT 1").scalar() == 1
        connection.close()


class TestParameterTypeMatrix:
    """Prepared arguments across every wire value type."""

    MATRIX = [
        ("i64", (2, 2 ** 40, 2.5, True, "two", b"\x02"), None),
        ("negative", (-5, -(2 ** 50), -0.5, False, "", b""), None),
        ("i64_extremes", (3, 2 ** 62, 3.5, True, "big", b"\x03" * 8), None),
        ("nulls", (None, None, None, None, None, None), None),
        ("dict_strings", (4, 1, 4.5, False, "repeated" * 4, b"x"), None),
    ]

    @pytest.mark.parametrize("label,row,_", MATRIX,
                             ids=[m[0] for m in MATRIX])
    def test_round_trip(self, prepared_server, label, row, _):
        _, host, port = prepared_server
        connection = tcp(host, port)
        insert = connection.prepare(
            "ins", "INSERT INTO typed VALUES (?, ?, ?, ?, ?, ?)")
        insert.execute(list(row))
        fetched = connection.execute(
            "SELECT i, big, d, flag, s, payload FROM typed")
        assert list(fetched.rows()) == [row]
        connection.close()

    def test_bigint_beyond_i64_argument(self, prepared_server):
        # column storage is int64-backed, but the wire value codec carries
        # arbitrary-precision ints (tag J) — a >64-bit argument must round
        # trip through binding and back in the result
        _, host, port = prepared_server
        connection = tcp(host, port)
        handle = connection.prepare("big_id", "SELECT ? + 1")
        assert handle.execute([2 ** 100]).scalar() == 2 ** 100 + 1
        assert handle.execute([-(2 ** 80)]).scalar() == -(2 ** 80) + 1
        connection.close()

    def test_dictionary_string_argument(self, prepared_server):
        # a repeated string column travels dictionary-encoded on v3+; a
        # string *argument* must bind and filter correctly against it
        _, host, port = prepared_server
        connection = tcp(host, port)
        connection.execute_script(
            "INSERT INTO typed (i, s) VALUES (1, 'aaa');"
            "INSERT INTO typed (i, s) VALUES (2, 'bbb');"
            "INSERT INTO typed (i, s) VALUES (3, 'aaa')")
        handle = connection.prepare(
            "by_s", "SELECT i FROM typed WHERE s = ? ORDER BY i")
        assert [r[0] for r in handle.execute(["aaa"]).rows()] == [1, 3]
        assert [r[0] for r in handle.execute(["bbb"]).rows()] == [2]
        connection.close()

    def test_blob_argument_in_predicate(self, prepared_server):
        _, host, port = prepared_server
        connection = tcp(host, port)
        insert = connection.prepare(
            "ins_blob", "INSERT INTO typed (i, payload) VALUES (?, ?)")
        insert.execute([1, b"\x00\x01\x02"])
        insert.execute([2, b"\xff" * 16])
        result = connection.execute("SELECT payload FROM typed ORDER BY i")
        assert list(result.rows()) == [(b"\x00\x01\x02",), (b"\xff" * 16,)]
        connection.close()


class TestLegacyProtocolVersions:
    """v1-v4 clients negotiate and run against both front ends unchanged."""

    @pytest.mark.parametrize("version", [1, 2, 3, 4])
    def test_query_and_prepared_round_trip(self, prepared_server, version):
        _, host, port = prepared_server
        connection = tcp(host, port, max_protocol_version=version)
        assert connection.protocol_version == version
        connection.execute("INSERT INTO typed (i, s) VALUES (1, 'a'), (2, 'b')")
        assert connection.execute(
            "SELECT COUNT(*) FROM typed").scalar() == 2
        # prepared statements are independent of the result wire format
        handle = connection.prepare("legacy", "SELECT s FROM typed WHERE i = ?")
        assert handle.execute([2]).scalar() == "b"
        connection.close()


class TestCacheCounters:
    def test_stats_expose_cache_and_connection_counters(self, prepared_server):
        server, host, port = prepared_server
        connection = tcp(host, port)
        connection.execute("INSERT INTO typed (i) VALUES (1)")
        connection.execute("SELECT SUM(i) FROM typed")
        connection.execute("SELECT SUM(i) FROM typed")
        stats = connection.server_stats()
        for key in ("server.plan_cache_hits", "server.plan_cache_misses",
                    "server.plan_cache_evictions", "server.result_cache_hits",
                    "server.result_cache_misses",
                    "server.result_cache_invalidations",
                    "server.open_connections"):
            assert key in stats, key
        assert stats["server.open_connections"] >= 1
        assert stats["server.plan_cache_hits"] >= 1
        assert stats["server.result_cache_hits"] >= 1
        connection.close()
