"""Tests for the columnar wire format: chunk codec, streaming, lazy decode,
and version-1 compatibility."""

import numpy as np
import pytest

from repro.errors import WireFormatError
from repro.netproto.client import Connection, TransferOptions
from repro.netproto.columnar import (
    ChunkEncoder,
    decode_chunk,
    encode_result_chunk,
)
from repro.netproto.compression import CODEC_NONE, CODEC_RLE, CODEC_ZLIB
from repro.netproto.messages import (
    FORMAT_COLUMNAR,
    MSG_HELLO,
    MSG_LOGIN,
    MSG_QUERY,
    MSG_RESULT,
    PROTOCOL_VERSION,
    ColumnarResultAssembler,
    TransferStats,
    columnar_result_messages,
    decode_result,
)
from repro.netproto.auth import compute_response
from repro.netproto.server import DatabaseServer, InProcessTransport
from repro.sqldb.database import Database
from repro.sqldb.result import QueryResult, ResultColumn
from repro.sqldb.types import SQLType


def roundtrip(result: QueryResult, *, codec: str = CODEC_NONE,
              chunk_rows: int = 65_536) -> tuple[QueryResult, TransferStats]:
    """Encode a result through the chunked columnar path and decode it back."""
    stream = columnar_result_messages(result, chunk_rows=chunk_rows,
                                      compression=codec)
    assembler = ColumnarResultAssembler(next(stream))
    for chunk in stream:
        assembler.add_chunk(chunk)
    return assembler.finish()


ALL_TYPES_RESULT = QueryResult([
    ResultColumn("i", SQLType.INTEGER, [1, -2, 3]),
    ResultColumn("big", SQLType.BIGINT, [2**40, -2**40, 0]),
    ResultColumn("d", SQLType.DOUBLE, [1.5, -0.25, 3.75]),
    ResultColumn("r", SQLType.REAL, [0.5, 1.0, -1.0]),
    ResultColumn("s", SQLType.STRING, ["alpha", "", "unicode: café ∑"]),
    ResultColumn("b", SQLType.BOOLEAN, [True, False, True]),
    ResultColumn("blob", SQLType.BLOB, [b"\x00\x01", b"", b"\xff" * 4]),
], statement_type="SELECT")


class TestChunkCodec:
    def test_all_types_roundtrip(self):
        decoded, stats = roundtrip(ALL_TYPES_RESULT)
        assert decoded.fetchall() == ALL_TYPES_RESULT.fetchall()
        for column in decoded.columns:
            assert column.sql_type is ALL_TYPES_RESULT.column(column.name).sql_type
        assert stats.chunks == 1
        assert stats.total_rows == 3

    @pytest.mark.parametrize("codec", [CODEC_NONE, CODEC_ZLIB, CODEC_RLE])
    def test_codecs_roundtrip(self, codec):
        decoded, stats = roundtrip(ALL_TYPES_RESULT, codec=codec)
        assert decoded.fetchall() == ALL_TYPES_RESULT.fetchall()
        assert stats.compression_codec == codec

    def test_null_bearing_columns(self):
        result = QueryResult([
            ResultColumn("i", SQLType.INTEGER, [None, 2, None]),
            ResultColumn("d", SQLType.DOUBLE, [1.0, None, 3.0]),
            ResultColumn("s", SQLType.STRING, ["x", None, "z"]),
            ResultColumn("b", SQLType.BOOLEAN, [None, None, True]),
            ResultColumn("blob", SQLType.BLOB, [None, b"q", None]),
        ])
        decoded, _ = roundtrip(result)
        assert decoded.fetchall() == result.fetchall()

    def test_all_null_column(self):
        result = QueryResult([ResultColumn("n", SQLType.INTEGER,
                                           [None, None, None])])
        decoded, _ = roundtrip(result)
        assert decoded["n"] == [None, None, None]

    def test_empty_result_with_schema(self):
        result = QueryResult([ResultColumn("i", SQLType.INTEGER, []),
                              ResultColumn("s", SQLType.STRING, [])])
        decoded, stats = roundtrip(result)
        assert decoded.row_count == 0
        assert decoded.column_names == ["i", "s"]
        assert decoded.column("s").sql_type is SQLType.STRING
        assert stats.chunks == 0

    def test_dml_result_roundtrip(self):
        result = QueryResult.empty(affected_rows=9, statement_type="INSERT")
        decoded, _ = roundtrip(result)
        assert decoded.affected_rows == 9
        assert decoded.statement_type == "INSERT"

    def test_multi_chunk_roundtrip(self):
        rows = 1000
        result = QueryResult([
            ResultColumn("i", SQLType.INTEGER, list(range(rows))),
            ResultColumn("s", SQLType.STRING,
                         [f"row_{i}" if i % 7 else None for i in range(rows)]),
        ])
        decoded, stats = roundtrip(result, chunk_rows=64)
        assert stats.chunks == (rows + 63) // 64
        assert decoded.fetchall() == result.fetchall()

    def test_huge_int_falls_back_to_object_codec(self):
        result = QueryResult([
            ResultColumn("big", SQLType.BIGINT, [2**100, -(2**80), None]),
        ])
        decoded, _ = roundtrip(result)
        assert decoded["big"] == [2**100, -(2**80), None]

    def test_chunk_blob_is_self_contained(self):
        blob, raw_bytes = encode_result_chunk(ALL_TYPES_RESULT)
        row_count, columns = decode_chunk(blob)
        assert row_count == 3
        assert [c.name for c in columns] == ALL_TYPES_RESULT.column_names
        assert raw_bytes > 0

    def test_corrupt_blob_rejected(self):
        blob, _ = encode_result_chunk(ALL_TYPES_RESULT)
        with pytest.raises(WireFormatError):
            decode_chunk(b"XX" + blob[2:])
        with pytest.raises(WireFormatError):
            decode_chunk(blob[:-3])
        with pytest.raises(WireFormatError):
            decode_chunk(blob + b"junk")

    def test_fixed_width_decode_is_zero_copy(self):
        result = QueryResult([ResultColumn("v", SQLType.DOUBLE,
                                           [float(i) for i in range(100)])])
        blob, _ = encode_result_chunk(result)
        _, columns = decode_chunk(blob)
        data = columns[0].data
        assert data.base is not None  # a view over the received buffer
        np.testing.assert_array_equal(data, np.arange(100, dtype="<f8"))

    def test_per_column_compression_shrinks_typed_buffers(self):
        rows = 5_000
        result = QueryResult([
            ResultColumn("k", SQLType.INTEGER, [i % 10 for i in range(rows)]),
            ResultColumn("v", SQLType.DOUBLE, [(i % 10) * 0.5 for i in range(rows)]),
        ])
        plain, plain_stats = roundtrip(result, codec=CODEC_NONE)
        packed, packed_stats = roundtrip(result, codec=CODEC_ZLIB)
        assert packed.fetchall() == plain.fetchall()
        assert packed_stats.wire_bytes < plain_stats.wire_bytes / 3
        assert packed_stats.compression_ratio > 3


class TestLazyDecode:
    def test_values_materialise_only_on_touch(self):
        result = QueryResult([
            ResultColumn("i", SQLType.INTEGER, list(range(500))),
            ResultColumn("s", SQLType.STRING, [f"v{i}" for i in range(500)]),
        ])
        decoded, _ = roundtrip(result)
        int_col = decoded.column("i")
        str_col = decoded.column("s")
        assert not int_col.is_materialised
        assert not str_col.is_materialised
        # shape queries stay lazy
        assert decoded.row_count == 500
        assert len(int_col) == 500
        assert not int_col.is_materialised
        # numeric columns expose the received buffer zero-copy
        array = int_col.to_numpy()
        assert array.dtype == np.dtype("int64")
        assert not int_col.is_materialised
        # touching values materialises plain Python objects
        assert str_col.values[3] == "v3"
        assert str_col.is_materialised
        assert int_col.values[:3] == [0, 1, 2]

    def test_single_chunk_numeric_is_buffer_view(self):
        result = QueryResult([ResultColumn("v", SQLType.DOUBLE,
                                           [0.5] * 1000)])
        decoded, _ = roundtrip(result)
        array = decoded.column("v").to_numpy()
        assert array.base is not None
        assert array.sum() == 500.0


class TestProtocolNegotiation:
    @pytest.fixture()
    def server(self) -> DatabaseServer:
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        database.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'c')")
        return DatabaseServer(database)

    def test_v2_client_gets_columnar_stream(self, server):
        connection = Connection.connect_in_process(server)
        assert connection.protocol_version == PROTOCOL_VERSION
        result = connection.execute("SELECT * FROM t ORDER BY i")
        assert result.fetchall() == [(1, "a"), (2, None), (3, "c")]
        assert connection.stats.last_transfer.chunks == 1
        connection.close()

    def test_v2_compressed_through_connection(self, server):
        for i in range(4, 300):
            server.database.execute(f"INSERT INTO t VALUES ({i}, 's{i}')")
        connection = Connection.connect_in_process(server)
        result = connection.execute(
            "SELECT * FROM t ORDER BY i",
            options=TransferOptions(compression=CODEC_ZLIB))
        assert result.row_count == 299
        transfer = connection.stats.last_transfer
        assert transfer.compression_codec == CODEC_ZLIB
        assert transfer.compressed_bytes < transfer.raw_bytes
        connection.close()

    def test_chunk_rows_option_forces_multiple_chunks(self, server):
        for i in range(4, 104):
            server.database.execute(f"INSERT INTO t VALUES ({i}, 's{i}')")
        connection = Connection.connect_in_process(server)
        options = TransferOptions()
        message_options = options.as_dict()
        message_options["chunk_rows"] = 16
        reply = connection._transport.exchange({
            "type": MSG_QUERY, "sql": "SELECT * FROM t ORDER BY i",
            "options": message_options,
        })
        assert reply["format"] == FORMAT_COLUMNAR
        assert reply["chunk_count"] == (103 + 15) // 16
        assembler = ColumnarResultAssembler(reply)
        for _ in range(reply["chunk_count"]):
            assembler.add_chunk(connection._transport.receive())
        result, stats = assembler.finish()
        assert result.row_count == 103
        assert stats.chunks == reply["chunk_count"]
        connection.close()

    def test_server_chunk_rows_config(self):
        database = Database()
        database.execute("CREATE TABLE n (i INTEGER)")
        for i in range(50):
            database.execute(f"INSERT INTO n VALUES ({i})")
        server = DatabaseServer(database, result_chunk_rows=10)
        connection = Connection.connect_in_process(server)
        result = connection.execute("SELECT i FROM n ORDER BY i")
        assert connection.stats.last_transfer.chunks == 5
        assert [row[0] for row in result.rows()] == list(range(50))
        connection.close()

    def test_encrypted_columnar_roundtrip(self, server):
        connection = Connection.connect_in_process(server)
        result = connection.execute("SELECT * FROM t ORDER BY i",
                                    options=TransferOptions(encrypt=True))
        assert result.fetchall()[0] == (1, "a")
        assert connection.stats.last_transfer.encrypted
        connection.close()

    def test_legacy_client_still_gets_row_payload(self, server):
        """A seed-era client: no protocol_version in hello, single result frame."""
        transport = InProcessTransport(server)
        challenge = transport.exchange({
            "type": MSG_HELLO, "username": "monetdb",
            "database": server.database.name,
        })
        assert challenge["protocol_version"] == 1
        response = compute_response("monetdb", challenge["salt"],
                                    challenge["challenge"])
        login = transport.exchange({
            "type": MSG_LOGIN, "username": "monetdb", "response": response,
        })
        assert login["type"] == "login_ok"
        reply = transport.exchange({
            "type": MSG_QUERY, "sql": "SELECT * FROM t ORDER BY i",
            "options": {},
        })
        # old wire shape: one frame, row-oriented dict payload, no chunks
        assert reply["type"] == MSG_RESULT
        assert "format" not in reply
        result = decode_result(reply["payload"], compressed=False,
                               encrypted=False)
        assert result.fetchall() == [(1, "a"), (2, None), (3, "c")]
        transport.close()

    def test_connection_survives_corrupt_chunk(self, server):
        """A bad chunk raises, but the stream is drained so the connection
        does not desync onto a stale result_chunk frame."""
        for i in range(4, 104):
            server.database.execute(f"INSERT INTO t VALUES ({i}, 's{i}')")
        server.result_chunk_rows = 16
        connection = Connection.connect_in_process(server)
        transport = connection._transport
        original_receive = transport.receive
        corrupted = {"count": 0}

        def corrupting_receive():
            message = original_receive()
            if message.get("type") == "result_chunk" and corrupted["count"] == 0:
                corrupted["count"] += 1
                message = dict(message)
                message["payload"] = b"XX" + bytes(message["payload"])[2:]
            return message

        transport.receive = corrupting_receive
        with pytest.raises(WireFormatError):
            connection.execute("SELECT * FROM t ORDER BY i")
        transport.receive = original_receive
        assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 103
        connection.close()

    def test_malformed_protocol_version_is_clean_error(self, server):
        transport = InProcessTransport(server)
        reply = transport.exchange({
            "type": MSG_HELLO, "username": "monetdb",
            "database": server.database.name,
            "protocol_version": "not-a-number",
        })
        assert reply["type"] == "error"
        transport.close()

    def test_malformed_chunk_rows_is_clean_error(self, server):
        connection = Connection.connect_in_process(server)
        reply = connection._transport.exchange({
            "type": MSG_QUERY, "sql": "SELECT * FROM t",
            "options": {"chunk_rows": "sixteen"},
        })
        assert reply["type"] == "error"
        assert "chunk_rows" in reply["message"]
        connection.close()

    def test_old_server_new_client_downgrades(self, server):
        """A v2 client against a server that caps the version at 1."""
        connection = Connection.connect_in_process(server)
        connection.close()

        original = DatabaseServer.__dict__["_handle_hello"]

        def capped_hello(self, session, message):
            message = dict(message)
            message.pop("protocol_version", None)  # pre-v2 servers ignore it
            reply = original(self, session, message)
            return reply

        server_v1 = DatabaseServer(server.database)
        server_v1._handle_hello = capped_hello.__get__(server_v1)
        downgraded = Connection.connect_in_process(server_v1)
        assert downgraded.protocol_version == 1
        result = downgraded.execute("SELECT * FROM t ORDER BY i")
        assert result.fetchall() == [(1, "a"), (2, None), (3, "c")]
        downgraded.close()


class TestChunkEncoder:
    def test_encoder_slices_consistently(self):
        rows = 100
        result = QueryResult([
            ResultColumn("i", SQLType.INTEGER, list(range(rows))),
            ResultColumn("s", SQLType.STRING, [f"s{i}" for i in range(rows)]),
        ])
        encoder = ChunkEncoder(result)
        pieces = []
        for start in range(0, rows, 30):
            blob, _ = encoder.encode(start, min(start + 30, rows))
            _, columns = decode_chunk(blob)
            pieces.append(columns)
        ints = [v for piece in pieces for v in piece[0].materialise()[0].tolist()]
        assert ints == list(range(rows))
