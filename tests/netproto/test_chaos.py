"""Chaos suite: fault injection against the live TCP server.

Asserts the resilience invariants: the server never leaks a session, never
wedges its worker pool, answers garbage with a structured error (or a clean
close), and the durable store always recovers after a crash — even one in
the middle of a result stream.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.errors import (
    ConnectionLostError,
    ExecutionError,
    ProtocolError,
    ReproError,
    ServerBusyError,
    WireFormatError,
)
from repro.netproto.chaos import ChaosProxy, FaultSpec, FaultyTransport
from repro.netproto.client import Connection, ConnectionInfo
from repro.netproto.server import (
    AsyncSocketServer,
    DatabaseServer,
    InProcessTransport,
    ServerLimits,
    SocketServer,
)
from repro.netproto.wire import encode_frame, read_frame, write_frame
from repro.sqldb.database import Database


ROWS = 200_000
CHUNK_ROWS = 4_096  # small chunks -> many frames -> faults land mid-stream


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


FRONT_ENDS = {"threaded": SocketServer, "async": AsyncSocketServer}


@pytest.fixture(params=sorted(FRONT_ENDS))
def chaos_server(request):
    """A TCP server over a big table, with small result chunks.

    Parametrized over both front ends: every chaos scenario must hold for
    the thread-per-connection server and the async event loop alike.
    """
    database = Database(workers=2)
    database.execute("CREATE TABLE big (i INTEGER)")
    column = database.storage.table("big").columns[0]
    column.values.extend(range(ROWS))
    server = DatabaseServer(database, result_chunk_rows=CHUNK_ROWS)
    socket_server = FRONT_ENDS[request.param](server, host="127.0.0.1", port=0)
    host, port = socket_server.start_background()
    yield server, host, port
    socket_server.stop()


def tcp_connection(host: str, port: int) -> Connection:
    connection = Connection.connect_tcp(ConnectionInfo(host=host, port=port))
    connection.retry_policy = None  # chaos tests assert the *first* failure
    return connection


def abrupt_close(sock: socket.socket) -> None:
    """Simulate a client vanishing: force the FIN out now.

    A plain ``close()`` defers the real close while ``makefile`` objects
    still reference the socket, so the server would never see EOF.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    sock.close()


class TestProxyFaults:
    def test_kill_mid_stream_raises_not_hangs(self, chaos_server):
        server, host, port = chaos_server
        with ChaosProxy((host, port),
                        FaultSpec(kill_after_bytes=8_000)) as proxy:
            proxy_host, proxy_port = proxy.address
            connection = tcp_connection(proxy_host, proxy_port)
            started = time.monotonic()
            with pytest.raises((ProtocolError, OSError)):
                connection.execute("SELECT i FROM big WHERE i >= 0").fetchall()
            assert time.monotonic() - started < 30.0
            assert proxy.connections_killed == 1
        assert wait_until(lambda: server.active_sessions == 0)
        assert server.admission.active == 0

    def test_corrupted_frame_magic_detected(self, chaos_server):
        server, host, port = chaos_server
        # offset 0 lands on the first downstream frame's magic byte
        with ChaosProxy((host, port), FaultSpec(corrupt_at=0)) as proxy:
            proxy_host, proxy_port = proxy.address
            with pytest.raises((WireFormatError, OSError)):
                tcp_connection(*proxy.address)
        assert wait_until(lambda: server.active_sessions == 0)

    def test_chopped_and_delayed_stream_still_correct(self, chaos_server):
        server, host, port = chaos_server
        # brutal fragmentation (7-byte writes) and per-read delays must not
        # corrupt the stream, only slow it down
        database = server.database
        with ChaosProxy((host, port),
                        FaultSpec(chop=7, delay=0.001)) as proxy:
            connection = tcp_connection(*proxy.address)
            assert connection.execute(
                "SELECT COUNT(*) FROM big WHERE i < 500").scalar() == 500
            connection.close()
        assert wait_until(lambda: server.active_sessions == 0)

    def test_kill_storm_leaks_nothing(self, chaos_server):
        server, host, port = chaos_server
        for kill_at in (50, 300, 1_000, 3_000, 9_000, 20_000):
            with ChaosProxy((host, port),
                            FaultSpec(kill_after_bytes=kill_at)) as proxy:
                try:
                    connection = tcp_connection(*proxy.address)
                    connection.execute("SELECT i FROM big WHERE i >= 0")
                except (ReproError, OSError):
                    pass
        assert wait_until(lambda: server.active_sessions == 0)
        assert server.admission.active == 0
        # the worker pool is alive: a parallel scan still answers
        survivor = tcp_connection(host, port)
        assert survivor.execute("SELECT SUM(i) FROM big WHERE i < 100") \
            .scalar() == sum(range(100))
        survivor.close()


class TestHostileBytes:
    def test_http_garbage_gets_error_frame_then_close(self, chaos_server):
        server, host, port = chaos_server
        raw = socket.create_connection((host, port), timeout=5)
        stream = raw.makefile("rwb")
        stream.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        stream.flush()
        # the server answers with a structured error frame, then hangs up
        reply = read_frame(stream)
        assert b"wire_format" in reply or b"magic" in reply
        with pytest.raises((ProtocolError, OSError)):
            read_frame(stream)
        raw.close()
        assert wait_until(lambda: server.stats.wire_errors >= 1)
        assert wait_until(lambda: server.active_sessions == 0)

    def test_hostile_length_prefix_rejected_not_allocated(self, chaos_server):
        server, host, port = chaos_server
        raw = socket.create_connection((host, port), timeout=5)
        stream = raw.makefile("rwb")
        stream.write(b"dU\x7f\xff\xff\xff")  # 2 GiB length prefix
        stream.flush()
        reply = read_frame(stream)
        assert b"exceeds" in reply
        raw.close()
        assert wait_until(lambda: server.active_sessions == 0)
        # and the server still serves well-formed clients
        connection = tcp_connection(host, port)
        assert connection.execute("SELECT 1").scalar() == 1
        connection.close()

    def test_valid_frame_garbage_payload_keeps_connection(self, chaos_server):
        server, host, port = chaos_server
        raw = socket.create_connection((host, port), timeout=5)
        stream = raw.makefile("rwb")
        write_frame(stream, b"\x00\x01\x02 not a message")
        reply = read_frame(stream)
        assert b"wire_format" in reply
        # framing stayed in sync: a real handshake works on the same socket
        from repro.netproto.wire import decode_message, encode_message

        stream.write(encode_message({"type": "hello", "username": "monetdb",
                                     "database": "demo"}))
        stream.flush()
        assert decode_message(read_frame(stream))["type"] == "challenge"
        abrupt_close(raw)
        assert wait_until(lambda: server.active_sessions == 0)


class TestClientDisconnects:
    def test_disconnect_mid_result_stream_frees_session(self, chaos_server):
        server, host, port = chaos_server
        connection = tcp_connection(host, port)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None
        # vanish without a close message, mid-stream
        abrupt_close(connection._transport._socket)
        assert wait_until(lambda: server.active_sessions == 0, timeout=10.0)
        assert wait_until(lambda: server.stats.client_disconnects >= 1,
                          timeout=10.0)
        assert server.admission.active == 0
        # no thread is wedged: the next client gets real answers
        survivor = tcp_connection(host, port)
        assert survivor.execute("SELECT COUNT(*) FROM big").scalar() == ROWS
        survivor.close()

    def test_disconnect_between_queries_is_clean(self, chaos_server):
        server, host, port = chaos_server
        connection = tcp_connection(host, port)
        assert connection.execute("SELECT 1").scalar() == 1
        errors_before = server.stats.errors
        abrupt_close(connection._transport._socket)
        assert wait_until(lambda: server.active_sessions == 0)
        assert server.stats.errors == errors_before  # silent, not an error

    def test_idle_connection_reaped(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER)")
        server = DatabaseServer(database,
                                limits=ServerLimits(idle_timeout=0.2))
        socket_server = SocketServer(server, host="127.0.0.1", port=0)
        host, port = socket_server.start_background()
        try:
            connection = tcp_connection(host, port)
            assert connection.execute("SELECT 1").scalar() == 1
            assert wait_until(lambda: server.stats.idle_disconnects >= 1,
                              timeout=5.0)
            assert wait_until(lambda: server.active_sessions == 0)
        finally:
            socket_server.stop()


class TestServerFaultHook:
    def test_fault_at_query_start_releases_slot(self, chaos_server):
        server, host, port = chaos_server

        def explode(point: str) -> None:
            if point == "query_start":
                raise ExecutionError("injected failure at query start")

        server.fault_hook = explode
        try:
            connection = tcp_connection(host, port)
            with pytest.raises(ExecutionError, match="injected"):
                connection.execute("SELECT 1")
            assert server.admission.active == 0
        finally:
            server.fault_hook = None
        assert connection.execute("SELECT 1").scalar() == 1
        connection.close()

    def test_fault_mid_chunk_stream_becomes_error_frame(self, chaos_server):
        server, host, port = chaos_server
        seen = {"chunks": 0}

        def explode(point: str) -> None:
            if point == "chunk":
                seen["chunks"] += 1
                if seen["chunks"] == 3:
                    raise ExecutionError("injected mid-stream failure")

        server.fault_hook = explode
        try:
            connection = tcp_connection(host, port)
            with pytest.raises(ExecutionError, match="mid-stream"):
                connection.execute("SELECT i FROM big WHERE i >= 0").fetchall()
            assert server.admission.active == 0
            # terminal error frame: the connection survives
            server.fault_hook = None
            assert connection.execute("SELECT 1").scalar() == 1
            connection.close()
        finally:
            server.fault_hook = None

    def test_transport_fault_injection_counts(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER)")
        server = DatabaseServer(database)
        faulty = FaultyTransport(InProcessTransport(server), fail_send_at=1)
        with pytest.raises(ConnectionLostError):
            faulty.send({"type": "hello"})
        assert faulty.faults_fired == 1
        faulty.heal()
        assert faulty.exchange({"type": "hello", "username": "monetdb"})[
            "type"] == "challenge"
        faulty.close()
        assert server.active_sessions == 0


class TestCrashDuringStream:
    """Kill the server process mid-stream; the client must fail fast and the
    durable store must recover on restart."""

    @pytest.fixture()
    def durable_path(self, tmp_path):
        path = tmp_path / "crash.db"
        database = Database(name="demo", path=str(path))
        database.execute("CREATE TABLE big (i INTEGER)")
        for start in range(0, 50_000, 10_000):
            values = ", ".join(f"({i})" for i in range(start, start + 10_000))
            database.execute(f"INSERT INTO big VALUES {values}")
        database.close()
        return path

    def start_server(self, durable_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.netproto.server",
             "--db", str(durable_path), "--port", "0",
             "--chunk-rows", str(CHUNK_ROWS)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env)
        # first line: human banner "server listening on host:port ..."
        banner = proc.stdout.readline()
        assert "listening" in banner, banner
        address = banner.split("listening on ", 1)[1].split()[0]
        host, port = address.rsplit(":", 1)
        return proc, host, int(port)

    def test_server_crash_mid_stream_then_recovery(self, durable_path):
        proc, host, port = self.start_server(durable_path)
        try:
            connection = tcp_connection(host, port)
            stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
            assert stream.fetchone() is not None  # streaming has begun
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            started = time.monotonic()
            with pytest.raises((ProtocolError, OSError)):
                stream.fetchall()
            # a clear, prompt connection error — not a hang
            assert time.monotonic() - started < 30.0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
        # the durable store recovers everything that was committed
        reopened = Database(name="demo", path=str(durable_path))
        assert reopened.execute("SELECT COUNT(*) FROM big").scalar() == 50_000
        assert reopened.execute("SELECT SUM(i) FROM big").scalar() \
            == sum(range(50_000))
        reopened.close()

    def test_graceful_stop_drains_inflight_queries(self):
        database = Database(workers=2)
        database.execute("CREATE TABLE big (i INTEGER)")
        database.storage.table("big").columns[0].values.extend(range(ROWS))
        server = DatabaseServer(database, result_chunk_rows=CHUNK_ROWS)
        socket_server = SocketServer(server, host="127.0.0.1", port=0)
        host, port = socket_server.start_background()
        connection = tcp_connection(host, port)
        stream = connection.execute_stream("SELECT i FROM big WHERE i >= 0")
        assert stream.fetchone() is not None
        # stop() drains: the straggler is cancelled, nothing deadlocks
        socket_server.stop(drain_timeout=0.2)
        assert server.admission.active == 0
        with pytest.raises((ReproError, OSError)):
            stream.fetchall()
            connection.execute("SELECT 1")
