"""Tests for protocol message helpers and transfer statistics."""

import pytest

from repro.errors import ProtocolError
from repro.netproto.compression import CODEC_ZLIB
from repro.netproto.messages import (
    TransferStats,
    decode_result,
    encode_result,
    payload_dict_to_result,
    result_to_payload_dict,
)
from repro.sqldb.result import QueryResult, ResultColumn
from repro.sqldb.types import SQLType


@pytest.fixture()
def sample_result() -> QueryResult:
    return QueryResult([
        ResultColumn("i", SQLType.INTEGER, [1, 2, 3]),
        ResultColumn("name", SQLType.STRING, ["a", "b", None]),
    ], affected_rows=0, statement_type="SELECT")


class TestPayloadDicts:
    def test_result_to_payload_and_back(self, sample_result):
        payload = result_to_payload_dict(sample_result)
        assert payload["statement_type"] == "SELECT"
        assert payload["columns"][0]["name"] == "i"
        rebuilt = payload_dict_to_result(payload)
        assert rebuilt.fetchall() == sample_result.fetchall()
        assert rebuilt.column("name").sql_type is SQLType.STRING

    def test_numpy_scalars_normalised(self):
        import numpy as np

        result = QueryResult([ResultColumn("x", SQLType.INTEGER, [np.int64(5)])])
        payload = result_to_payload_dict(result)
        assert payload["columns"][0]["values"] == [5]

    def test_dml_result_round_trip(self):
        result = QueryResult.empty(affected_rows=7, statement_type="INSERT")
        rebuilt = payload_dict_to_result(result_to_payload_dict(result))
        assert rebuilt.affected_rows == 7
        assert rebuilt.statement_type == "INSERT"
        assert rebuilt.row_count == 0


class TestEncodeDecodeResult:
    def test_plain(self, sample_result):
        encoded = encode_result(sample_result)
        assert not encoded.compressed and not encoded.encrypted
        decoded = decode_result(encoded.blob, compressed=False, encrypted=False)
        assert decoded.fetchall() == sample_result.fetchall()

    def test_encrypted_requires_key_to_decode(self, sample_result):
        encoded = encode_result(sample_result, encryption_key="k")
        with pytest.raises(ProtocolError):
            decode_result(encoded.blob, compressed=False, encrypted=True)
        decoded = decode_result(encoded.blob, compressed=False, encrypted=True,
                                encryption_key="k")
        assert decoded.row_count == 3

    def test_compression_none_keyword_is_noop(self, sample_result):
        encoded = encode_result(sample_result, compression="none")
        assert not encoded.compressed
        assert encoded.stats.compression_codec == "none"

    def test_stats_compression_ratio(self, sample_result):
        big = QueryResult([ResultColumn("s", SQLType.STRING, ["x" * 50] * 500)])
        encoded = encode_result(big, compression=CODEC_ZLIB)
        assert encoded.stats.compression_ratio > 10


class TestTransferStats:
    def test_ratio_defaults_to_one(self):
        assert TransferStats().compression_ratio == 1.0

    def test_as_dict_keys(self):
        stats = TransferStats(raw_bytes=100, compressed_bytes=50, wire_bytes=50,
                              compression_codec=CODEC_ZLIB)
        payload = stats.as_dict()
        assert payload["compression_ratio"] == 2.0
        assert payload["compression_codec"] == CODEC_ZLIB
        assert set(payload) >= {"raw_bytes", "wire_bytes", "encrypted", "total_rows"}
