"""Tests for the transfer compression codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.netproto.compression import (
    CODEC_NONE,
    CODEC_RLE,
    CODEC_ZLIB,
    available_codecs,
    compress,
    compression_ratio,
    decompress,
    get_codec,
    rle_compress,
    rle_decompress,
)


class TestCodecRegistry:
    def test_available_codecs(self):
        assert set(available_codecs()) == {CODEC_NONE, CODEC_ZLIB, CODEC_RLE}

    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError):
            get_codec("lz4")

    def test_case_insensitive(self):
        assert get_codec("ZLIB").name == CODEC_ZLIB


class TestRoundTrips:
    @pytest.mark.parametrize("codec", [CODEC_NONE, CODEC_ZLIB, CODEC_RLE])
    @pytest.mark.parametrize("payload", [b"", b"a", b"hello world" * 100, bytes(range(256))])
    def test_roundtrip(self, codec, payload):
        assert decompress(compress(payload, codec)) == payload

    def test_self_describing_payload(self):
        """decompress() does not need to be told which codec was used."""
        payload = b"42," * 500
        for codec in available_codecs():
            assert decompress(compress(payload, codec)) == payload

    def test_empty_compressed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decompress(b"")

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(ProtocolError):
            decompress(bytes([250]) + b"data")


class TestCompressionEffect:
    def test_repetitive_data_compresses_well(self):
        """The demo data (repetitive integer text) must show a clear win (C1)."""
        payload = ("1234\n" * 2000).encode()
        assert compression_ratio(payload, CODEC_ZLIB) > 5

    def test_rle_wins_on_long_runs(self):
        payload = b"a" * 5000 + b"b" * 5000
        assert compression_ratio(payload, CODEC_RLE) > 50

    def test_none_codec_adds_only_header(self):
        payload = b"x" * 100
        assert len(compress(payload, CODEC_NONE)) == len(payload) + 1

    def test_random_data_does_not_explode(self):
        import os

        payload = os.urandom(4096)
        assert len(compress(payload, CODEC_ZLIB)) < len(payload) * 1.05


class TestRLE:
    def test_simple_runs(self):
        assert rle_compress(b"aaaabbb") == bytes([4, ord("a"), 3, ord("b")])
        assert rle_decompress(rle_compress(b"aaaabbb")) == b"aaaabbb"

    def test_long_run_split_at_255(self):
        data = b"z" * 600
        assert rle_decompress(rle_compress(data)) == data

    def test_empty(self):
        assert rle_compress(b"") == b""
        assert rle_decompress(b"") == b""

    def test_corrupt_stream_rejected(self):
        with pytest.raises(ProtocolError):
            rle_decompress(b"\x01")

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=1000))
    def test_rle_roundtrip_property(self, data):
        assert rle_decompress(rle_compress(data)) == data

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=1000), st.sampled_from([CODEC_NONE, CODEC_ZLIB, CODEC_RLE]))
    def test_all_codecs_roundtrip_property(self, data, codec):
        assert decompress(compress(data, codec)) == data
