"""Tests for the challenge/response authentication."""

import pytest

from repro.errors import AuthenticationError
from repro.netproto.auth import UserRegistry, compute_response


@pytest.fixture()
def registry() -> UserRegistry:
    reg = UserRegistry()
    reg.add_user("monetdb", "monetdb", database="demo")
    return reg


class TestRegistry:
    def test_add_and_lookup(self, registry):
        assert registry.has_user("monetdb")
        assert not registry.has_user("nobody")

    def test_challenge_changes_every_time(self, registry):
        _, challenge_a = registry.challenge_for("monetdb")
        _, challenge_b = registry.challenge_for("monetdb")
        assert challenge_a != challenge_b

    def test_salt_is_stable_per_user(self, registry):
        salt_a, _ = registry.challenge_for("monetdb")
        salt_b, _ = registry.challenge_for("monetdb")
        assert salt_a == salt_b

    def test_unknown_user_still_gets_a_challenge(self, registry):
        salt, challenge = registry.challenge_for("ghost")
        assert len(salt) == 16 and len(challenge) == 16


class TestVerification:
    def test_correct_password_accepted(self, registry):
        salt, challenge = registry.challenge_for("monetdb")
        response = compute_response("monetdb", salt, challenge)
        account = registry.verify("monetdb", challenge, response)
        assert account.username == "monetdb"

    def test_wrong_password_rejected(self, registry):
        salt, challenge = registry.challenge_for("monetdb")
        response = compute_response("wrong", salt, challenge)
        with pytest.raises(AuthenticationError):
            registry.verify("monetdb", challenge, response)

    def test_unknown_user_rejected(self, registry):
        salt, challenge = registry.challenge_for("ghost")
        response = compute_response("whatever", salt, challenge)
        with pytest.raises(AuthenticationError):
            registry.verify("ghost", challenge, response)

    def test_replayed_response_with_new_challenge_rejected(self, registry):
        salt, challenge = registry.challenge_for("monetdb")
        response = compute_response("monetdb", salt, challenge)
        registry.verify("monetdb", challenge, response)
        _, new_challenge = registry.challenge_for("monetdb")
        with pytest.raises(AuthenticationError):
            registry.verify("monetdb", new_challenge, response)

    def test_database_access_check(self, registry):
        salt, challenge = registry.challenge_for("monetdb")
        response = compute_response("monetdb", salt, challenge)
        with pytest.raises(AuthenticationError):
            registry.verify("monetdb", challenge, response, database="other_db")
        registry.verify("monetdb", challenge, response, database="demo")
