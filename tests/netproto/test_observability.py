"""End-to-end observability over the wire: SHOW STATS histograms, the
bounded query log, the slow-query ring, and trace ids in result headers."""

import threading

import pytest

from repro.netproto.client import Connection, ConnectionInfo
from repro.netproto.server import (
    AsyncSocketServer,
    DatabaseServer,
    ServerStats,
    SocketServer,
)
from repro.sqldb import Database


def _make_database():
    db = Database(workers=2)
    db.execute("CREATE TABLE t (i INTEGER, v DOUBLE)")
    db.execute("INSERT INTO t VALUES " +
               ", ".join(f"({i}, {i * 0.5})" for i in range(500)))
    return db


@pytest.fixture(params=["threaded", "async"])
def tcp_connection(request):
    db = _make_database()
    server = DatabaseServer(db, slow_query_ms=0.0)  # everything is "slow"
    cls = SocketServer if request.param == "threaded" else AsyncSocketServer
    socket_server = cls(server, port=0)
    host, port = socket_server.start_background()
    connection = Connection.connect_tcp(
        ConnectionInfo(host=host, port=port, database=db.name))
    yield connection, server
    connection.close()
    socket_server.stop()
    db.close()


class TestShowStatsRoundTrip:
    def test_histogram_quantiles_over_both_front_ends(self, tcp_connection):
        connection, _ = tcp_connection
        connection.execute("SELECT COUNT(*) FROM t")
        rows = dict(connection.execute("SHOW STATS").rows())
        for key in ("db.query_us_p50", "db.query_us_p95", "db.query_us_p99",
                    "db.query_us_count", "db.parse_us_count",
                    "server.query_us_p95", "server.query_us_count",
                    "server.queries_executed", "server.query_log_dropped",
                    "server.slow_queries"):
            assert key in rows, f"missing {key}"
        assert rows["db.query_us_count"] >= 1
        assert rows["server.query_us_count"] >= 1

    def test_stats_message_matches_show_stats(self, tcp_connection):
        connection, _ = tcp_connection
        connection.execute("SELECT 1")
        message_stats = connection.server_stats()
        show_stats = dict(connection.execute("SHOW STATS").rows())
        for key in ("db.query_us_p50", "server.queries_executed"):
            assert key in message_stats and key in show_stats


class TestSlowQueryLog:
    def test_entries_carry_trace_id_sql_and_spans(self, tcp_connection):
        connection, server = tcp_connection
        stream = connection.execute_stream("SELECT i, v FROM t WHERE v > 10")
        stream.result()
        assert stream.trace_id  # header carried the trace id
        entries = connection.server_slow_queries()
        assert entries
        matching = [e for e in entries if e["trace_id"] == stream.trace_id]
        assert matching, (stream.trace_id, entries)
        entry = matching[0]
        assert "WHERE v > 10" in entry["sql"]
        assert entry["duration_ms"] >= 0
        assert entry["rows"] == 479
        assert entry["bytes"] > 0
        span_names = [s["span"] for s in entry["spans"]]
        assert "query" in span_names
        assert "parse" in span_names

    def test_ring_is_bounded(self):
        db = _make_database()
        server = DatabaseServer(db, slow_query_ms=0.0, slow_query_log_size=4)
        connection = Connection.connect_in_process(server)
        for i in range(10):
            connection.execute(f"SELECT {i}")
        assert len(server.slow_query_log) == 4
        assert server.stats.slow_queries == 10
        connection.close()

    def test_disabled_means_no_traces_no_entries(self):
        db = _make_database()
        server = DatabaseServer(db, slow_query_ms=None)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT COUNT(*) FROM t")
        stream.result()
        assert stream.trace_id is None
        assert not connection.server_slow_queries()
        assert server.stats.slow_queries == 0
        connection.close()

    def test_fast_queries_not_logged_with_high_threshold(self):
        db = _make_database()
        server = DatabaseServer(db, slow_query_ms=60_000.0)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT COUNT(*) FROM t")
        stream.result()
        assert stream.trace_id  # traced (sampling policy: tracking enabled)
        assert not connection.server_slow_queries()  # but not slow
        connection.close()


class TestBoundedQueryLog:
    def test_query_log_keeps_last_n_and_counts_drops(self):
        stats = ServerStats(query_log_limit=5)
        for i in range(12):
            stats.log_query(f"SELECT {i}")
        assert list(stats.query_log) == [f"SELECT {i}" for i in range(7, 12)]
        assert stats.query_log_dropped == 7
        assert stats.counters()["query_log_dropped"] == 7

    def test_direct_counter_assignment_rejected(self):
        stats = ServerStats()
        with pytest.raises(AttributeError):
            stats.queries_executed += 1
        with pytest.raises(AttributeError):
            stats.errors = 5

    def test_inc_is_thread_safe(self):
        stats = ServerStats()

        def worker():
            for _ in range(10_000):
                stats.inc("wire_errors")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.wire_errors == 80_000

    def test_counters_exposes_all_names(self):
        stats = ServerStats()
        counters = stats.counters()
        for name in ServerStats.COUNTER_NAMES:
            assert name in counters


class TestTraceIdInHeaders:
    def test_materialised_v2_result_carries_trace_id(self):
        db = _make_database()
        server = DatabaseServer(db, stream_results=False)
        connection = Connection.connect_in_process(server)
        stream = connection.execute_stream("SELECT COUNT(*) FROM t")
        stream.result()
        assert stream.trace_id
        connection.close()

    def test_legacy_v1_result_carries_trace_id(self):
        db = _make_database()
        server = DatabaseServer(db)
        connection = Connection.connect_in_process(
            server, max_protocol_version=1)
        stream = connection.execute_stream("SELECT COUNT(*) FROM t")
        stream.result()
        assert stream.trace_id
        connection.close()
