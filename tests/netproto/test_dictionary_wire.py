"""TAG_DICT wire format, v1/v2/v3 negotiation and the incremental cursor."""

import numpy as np
import pytest

from repro.errors import WireFormatError
from repro.netproto.client import Connection, ConnectionInfo
from repro.netproto.columnar import (
    TAG_DICT,
    TAG_UTF8,
    ChunkEncoder,
    decode_chunk,
    encode_result_chunk,
)
from repro.netproto.messages import (
    PROTOCOL_VERSION,
    ColumnarResultAssembler,
    columnar_result_messages,
)
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.sqldb.result import QueryResult, ResultColumn
from repro.sqldb.types import SQLType
from repro.sqldb.vector import Vector


def low_cardinality_result(rows=1000, cardinality=10):
    values = [f"name_{i % cardinality}" for i in range(rows)]
    return QueryResult([ResultColumn("s", SQLType.STRING, values)])


def roundtrip_stream(result, *, chunk_rows=100, protocol_version=PROTOCOL_VERSION):
    messages = list(columnar_result_messages(result, chunk_rows=chunk_rows,
                                             protocol_version=protocol_version))
    assembler = ColumnarResultAssembler(messages[0])
    for message in messages[1:]:
        assembler.add_chunk(message)
    return messages, assembler.finish()[0]


@pytest.fixture
def server():
    database = Database()
    database.execute("CREATE TABLE t (name STRING, v DOUBLE)")
    table = database.storage.table("t")
    table.column("name").extend(
        None if i % 17 == 0 else f"cat_{i % 25}" for i in range(5000))
    table.column("v").extend(float(i) for i in range(5000))
    return DatabaseServer(database, result_chunk_rows=1000)


class TestDictionaryEncoding:
    def test_single_chunk_roundtrip(self):
        result = low_cardinality_result()
        blob, _ = encode_result_chunk(result, allow_dict=True)
        row_count, columns = decode_chunk(blob)
        assert columns[0].tag == TAG_DICT
        data, mask = columns[0].materialise()
        assert isinstance(data, Vector)
        assert data.to_list() == result.columns[0].values

    def test_dictionary_shipped_once_per_column(self):
        result = low_cardinality_result(rows=1000)
        messages, decoded = roundtrip_stream(result, chunk_rows=250)
        chunks = messages[1:]
        assert len(chunks) == 4
        # the later chunks reference the first chunk's dictionary: smaller
        assert all(len(c["payload"]) < len(chunks[0]["payload"])
                   for c in chunks[1:])
        assert decoded.columns[0].values == result.columns[0].values

    def test_multi_chunk_column_stays_dictionary_backed(self):
        result = low_cardinality_result(rows=600)
        _, decoded = roundtrip_stream(result, chunk_rows=200)
        vector = decoded.columns[0].vector()
        assert vector is not None and vector.is_dict

    def test_chunk_without_inline_dictionary_needs_cache(self):
        result = low_cardinality_result(rows=200)
        encoder = ChunkEncoder(result, allow_dict=True)
        first, _ = encoder.encode(0, 100)
        second, _ = encoder.encode(100, 200)
        cache: dict = {}
        decode_chunk(first, dictionaries=cache)
        # the second chunk resolves against the cache...
        _, columns = decode_chunk(second, dictionaries=cache)
        assert columns[0].materialise()[0].to_list() \
            == result.columns[0].values[100:200]
        # ...and is rejected without it
        with pytest.raises(WireFormatError):
            decode_chunk(second)

    def test_nulls_and_sentinel_values_roundtrip(self):
        values = (["", None, "x"] * 40)
        result = QueryResult([ResultColumn("s", SQLType.STRING, list(values))])
        _, decoded = roundtrip_stream(result, chunk_rows=50)
        assert decoded.columns[0].values == values

    def test_high_cardinality_stays_utf8(self):
        values = [f"unique_{i}" for i in range(500)]
        result = QueryResult([ResultColumn("s", SQLType.STRING, values)])
        blob, _ = encode_result_chunk(result, allow_dict=True)
        _, columns = decode_chunk(blob)
        assert columns[0].tag == TAG_UTF8

    def test_tiny_column_stays_utf8(self):
        result = QueryResult([ResultColumn("s", SQLType.STRING, ["a", "a"])])
        blob, _ = encode_result_chunk(result, allow_dict=True)
        _, columns = decode_chunk(blob)
        assert columns[0].tag == TAG_UTF8

    def test_engine_vector_flows_to_wire_without_reencoding(self):
        """A dictionary built by the executor is reused by the encoder."""
        database = Database()
        database.execute("CREATE TABLE t (name STRING)")
        database.storage.table("t").column("name").extend(
            f"v{i % 4}" for i in range(100))
        result = database.execute("SELECT name FROM t")
        vector = result.columns[0].vector()
        assert vector is not None and vector.is_dict
        encoder = ChunkEncoder(result, allow_dict=True)
        _, tag, data, _, dictionary = encoder._columns[0]
        assert tag == TAG_DICT
        assert dictionary is vector.dictionary  # zero re-encode

    def test_dict_disabled_below_v3(self):
        result = low_cardinality_result(rows=200)
        messages, decoded = roundtrip_stream(result, protocol_version=2)
        blob = messages[1]["payload"]
        _, columns = decode_chunk(blob)
        assert columns[0].tag == TAG_UTF8
        assert decoded.columns[0].values == result.columns[0].values

    def test_dict_wire_bytes_smaller_than_utf8(self):
        result = low_cardinality_result(rows=5000, cardinality=20)
        v3_messages = list(columnar_result_messages(result, protocol_version=3))
        v2_messages = list(columnar_result_messages(result, protocol_version=2))
        v3_bytes = sum(len(m["payload"]) for m in v3_messages[1:])
        v2_bytes = sum(len(m["payload"]) for m in v2_messages[1:])
        assert v3_bytes < v2_bytes

    def test_out_of_range_code_rejected(self):
        result = low_cardinality_result(rows=200, cardinality=5)
        encoder = ChunkEncoder(result, allow_dict=True)
        encoder.encode(0, 100)  # ships the dictionary inline
        second, _ = encoder.encode(100, 200)
        # a dictionary smaller than the codes demand must be rejected
        cache = {0: np.array(["only_entry"], dtype=object)}
        with pytest.raises(WireFormatError):
            decode_chunk(second, dictionaries=cache)


class TestProtocolCompat:
    def test_v3_client_negotiates_dictionaries(self, server):
        connection = Connection.connect_in_process(server)
        # the default negotiation lands on this build's ceiling (v4 since
        # streamed results); dictionary columns behave the same from v3 up
        assert connection.protocol_version == PROTOCOL_VERSION == 4
        result = connection.execute("SELECT name, v FROM t")
        assert result.row_count == 5000
        assert result.columns[0].values[1] == "cat_1"
        assert result.columns[0].values[17] is None

    def test_v2_client_gets_columnar_without_dict(self, server):
        connection = Connection.connect_in_process(server, max_protocol_version=2)
        assert connection.protocol_version == 2
        result = connection.execute("SELECT name, v FROM t")
        reference = Connection.connect_in_process(server) \
            .execute("SELECT name, v FROM t")
        assert result.columns[0].values == reference.columns[0].values
        assert result.columns[1].values == reference.columns[1].values

    def test_v1_client_gets_legacy_payload(self, server):
        connection = Connection.connect_in_process(server, max_protocol_version=1)
        assert connection.protocol_version == 1
        result = connection.execute("SELECT name FROM t WHERE name = 'cat_3'")
        assert set(result.columns[0].values) == {"cat_3"}

    def test_v2_and_v3_wire_bytes_differ(self, server):
        v3 = Connection.connect_in_process(server)
        v2 = Connection.connect_in_process(server, max_protocol_version=2)
        v3.execute("SELECT name FROM t")
        v2.execute("SELECT name FROM t")
        assert v3.stats.last_transfer.wire_bytes \
            < v2.stats.last_transfer.wire_bytes


class TestIncrementalCursor:
    def test_fetchmany_yields_before_full_assembly(self, server):
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("SELECT name, v FROM t")
        stream = cursor._stream
        # v4 streams morsels: the chunk count is unknown until the
        # last-flagged chunk arrives
        assert stream.streamed
        assert stream._assembler.expected_chunks == -1
        first = cursor.fetchmany(10)
        assert len(first) == 10
        assert stream.chunks_received == 1  # only the first chunk was pulled
        assert not stream.complete
        rest = cursor.fetchall()
        assert len(first) + len(rest) == 5000

    def test_fetchall_identical_to_eager_execute(self, server):
        connection = Connection.connect_in_process(server)
        eager = connection.execute("SELECT name, v FROM t").fetchall()
        cursor = connection.cursor()
        cursor.execute("SELECT name, v FROM t")
        assert cursor.fetchall() == eager

    def test_partial_fetch_then_fetchall_covers_every_row(self, server):
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("SELECT v FROM t")
        head = [cursor.fetchone() for _ in range(1500)]  # crosses a chunk edge
        tail = cursor.fetchall()
        assert len(head) + len(tail) == 5000
        assert head[0] == (0.0,) and tail[-1] == (4999.0,)

    def test_new_query_drains_pending_stream(self, server):
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("SELECT name, v FROM t")
        cursor.fetchmany(3)  # leaves chunks on the wire
        # a second query must not desync the transport
        other = connection.execute("SELECT COUNT(*) FROM t")
        assert other.scalar() == 5000
        # the old stream was drained and stays fully readable
        assert len(cursor.fetchall()) == 5000 - 3

    def test_cursor_metadata_before_rows_are_touched(self, server):
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("SELECT name, v FROM t")
        assert [d[0] for d in cursor.description] == ["name", "v"]
        # a streamed (v4) result does not know its row count up front:
        # DB-API's "unknown" value until the stream is drained
        assert cursor.rowcount == -1
        cursor.fetchall()
        assert cursor.rowcount == 5000

    def test_cursor_against_v1_server_payload(self, server):
        connection = Connection.connect_in_process(server, max_protocol_version=1)
        cursor = connection.cursor()
        cursor.execute("SELECT COUNT(*) FROM t")
        assert cursor.fetchone() == (5000,)
        assert cursor.fetchone() is None

    def test_dml_through_cursor(self, server):
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("CREATE TABLE dml_t (x INTEGER)")
        cursor.execute("INSERT INTO dml_t VALUES (1), (2)")
        assert cursor.rowcount == 2
        assert cursor.description is None
        cursor.execute("SELECT x FROM dml_t")
        assert cursor.fetchall() == [(1,), (2,)]

    def test_stats_recorded_once_per_query(self, server):
        connection = Connection.connect_in_process(server)
        cursor = connection.cursor()
        cursor.execute("SELECT name FROM t")
        cursor.fetchall()
        cursor.execute("SELECT v FROM t")
        cursor.fetchall()
        assert connection.stats.queries == 2
        assert connection.stats.rows_received == 10000
