"""Integration tests for the TCP socket transport."""

import pytest

from repro.errors import AuthenticationError
from repro.netproto.client import Connection, ConnectionInfo, TransferOptions
from repro.netproto.server import (
    AsyncSocketServer,
    DatabaseServer,
    SocketServer,
    start_demo_server,
)
from repro.sqldb.database import Database

FRONT_ENDS = {"threaded": SocketServer, "async": AsyncSocketServer}


@pytest.fixture(params=sorted(FRONT_ENDS))
def tcp_server(request):
    database = Database()
    database.execute("CREATE TABLE t (i INTEGER)")
    database.execute("INSERT INTO t VALUES (1), (2), (3)")
    server = DatabaseServer(database)
    socket_server = FRONT_ENDS[request.param](server, host="127.0.0.1", port=0)
    host, port = socket_server.start_background()
    yield server, host, port
    socket_server.stop()


class TestSocketTransport:
    def test_query_over_tcp(self, tcp_server):
        _, host, port = tcp_server
        connection = Connection.connect_tcp(ConnectionInfo(host=host, port=port))
        assert connection.execute("SELECT SUM(i) FROM t").scalar() == 6
        connection.close()

    def test_multiple_sequential_connections(self, tcp_server):
        server, host, port = tcp_server
        for _ in range(3):
            connection = Connection.connect_tcp(ConnectionInfo(host=host, port=port))
            assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 3
            connection.close()
        assert server.stats.sessions_opened == 3

    def test_concurrent_connections(self, tcp_server):
        _, host, port = tcp_server
        connections = [Connection.connect_tcp(ConnectionInfo(host=host, port=port))
                       for _ in range(4)]
        try:
            for index, connection in enumerate(connections):
                assert connection.execute("SELECT %d", (index,)).scalar() == index
        finally:
            for connection in connections:
                connection.close()

    def test_wrong_password_over_tcp(self, tcp_server):
        _, host, port = tcp_server
        with pytest.raises(AuthenticationError):
            Connection.connect_tcp(ConnectionInfo(host=host, port=port, password="bad"))

    def test_transfer_options_over_tcp(self, tcp_server):
        _, host, port = tcp_server
        connection = Connection.connect_tcp(ConnectionInfo(host=host, port=port))
        result = connection.execute(
            "SELECT * FROM t", options=TransferOptions(compression="zlib", encrypt=True))
        assert result.row_count == 3
        connection.close()

    def test_udf_lifecycle_over_tcp(self, tcp_server):
        _, host, port = tcp_server
        connection = Connection.connect_tcp(ConnectionInfo(host=host, port=port))
        connection.execute("CREATE FUNCTION halve(x INTEGER) RETURNS DOUBLE "
                           "LANGUAGE PYTHON { return x / 2.0 }")
        assert connection.execute("SELECT halve(i) FROM t WHERE i = 2").scalar() == 1.0
        connection.close()


class TestStartDemoServer:
    def test_start_and_query(self):
        server, socket_server, (host, port) = start_demo_server()
        try:
            connection = Connection.connect_tcp(
                ConnectionInfo(host=host, port=port, database=server.database.name))
            assert connection.execute("SELECT 1 + 1").scalar() == 2
            connection.close()
        finally:
            socket_server.stop()
