"""Tests for the in-process protocol: server, client connection, result transfer."""

import pytest

from repro.errors import (
    AuthenticationError,
    ConnectionClosedError,
    ExecutionError,
    ProtocolError,
)
from repro.netproto.client import Connection, ConnectionInfo, TransferOptions
from repro.netproto.compression import CODEC_ZLIB
from repro.netproto.messages import decode_result, encode_result
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.sqldb.result import QueryResult, ResultColumn
from repro.sqldb.types import SQLType


@pytest.fixture()
def populated_server() -> DatabaseServer:
    database = Database()
    database.execute("CREATE TABLE t (i INTEGER, s STRING)")
    database.execute("INSERT INTO t VALUES (1, 'aaa'), (2, 'bbb'), (3, NULL)")
    return DatabaseServer(database)


@pytest.fixture()
def client(populated_server) -> Connection:
    connection = Connection.connect_in_process(populated_server)
    yield connection
    connection.close()


class TestLogin:
    def test_default_user_can_login(self, populated_server):
        connection = Connection.connect_in_process(populated_server)
        assert not connection.closed
        connection.close()

    def test_wrong_password_rejected(self, populated_server):
        info = ConnectionInfo(username="monetdb", password="nope")
        with pytest.raises(AuthenticationError):
            Connection.connect_in_process(populated_server, info)

    def test_unknown_user_rejected(self, populated_server):
        info = ConnectionInfo(username="ghost", password="x")
        with pytest.raises(AuthenticationError):
            Connection.connect_in_process(populated_server, info)

    def test_extra_users_can_be_registered(self, populated_server):
        populated_server.registry.add_user("analyst", "secret",
                                           database=populated_server.database.name)
        info = ConnectionInfo(username="analyst", password="secret")
        connection = Connection.connect_in_process(populated_server, info)
        assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 3
        connection.close()

    def test_session_stats_tracked(self, populated_server):
        connection = Connection.connect_in_process(populated_server)
        connection.execute("SELECT 1")
        assert populated_server.stats.sessions_opened == 1
        assert populated_server.stats.queries_executed == 1
        connection.close()


class TestQueries:
    def test_select_roundtrip(self, client):
        result = client.execute("SELECT * FROM t ORDER BY i")
        assert result.fetchall() == [(1, "aaa"), (2, "bbb"), (3, None)]
        assert result.column("i").sql_type is SQLType.INTEGER

    def test_ddl_and_dml_through_protocol(self, client):
        client.execute("CREATE TABLE made (x DOUBLE)")
        insert = client.execute("INSERT INTO made VALUES (1.5), (2.5)")
        assert insert.affected_rows == 2
        assert client.execute("SELECT SUM(x) FROM made").scalar() == 4.0

    def test_parameterised_query(self, client):
        result = client.execute("SELECT * FROM t WHERE i = %d", (2,))
        assert result.fetchall() == [(2, "bbb")]

    def test_sql_error_surfaces_as_execution_error(self, client):
        with pytest.raises(ExecutionError):
            client.execute("SELECT * FROM missing_table")
        # connection still usable afterwards
        assert client.execute("SELECT 1").scalar() == 1

    def test_empty_query_rejected(self, client):
        # structured error codes preserve the server-side exception type
        with pytest.raises(ProtocolError):
            client.execute("   ")

    def test_closed_connection_rejects_queries(self, populated_server):
        connection = Connection.connect_in_process(populated_server)
        connection.close()
        with pytest.raises(ConnectionClosedError):
            connection.execute("SELECT 1")

    def test_script_execution(self, client):
        results = client.execute_script(
            "CREATE TABLE s (i INTEGER); INSERT INTO s VALUES (1); SELECT COUNT(*) FROM s;")
        assert len(results) == 3
        assert results[-1].scalar() == 1

    def test_udf_create_and_call_through_protocol(self, client):
        client.execute("CREATE FUNCTION twice(x INTEGER) RETURNS INTEGER "
                       "LANGUAGE PYTHON { return x * 2 }")
        result = client.execute("SELECT twice(i) FROM t ORDER BY i")
        assert [r[0] for r in result.rows()] == [2, 4, 6]


class TestTransferOptions:
    def test_compression_reduces_wire_bytes(self, populated_server):
        database = populated_server.database
        database.execute("CREATE TABLE big (v STRING)")
        for _ in range(200):
            database.execute("INSERT INTO big VALUES ('repetitive payload text')")
        connection = Connection.connect_in_process(populated_server)
        plain = connection.execute("SELECT * FROM big")
        plain_bytes = connection.stats.last_transfer.wire_bytes
        compressed = connection.execute(
            "SELECT * FROM big", options=TransferOptions(compression=CODEC_ZLIB))
        compressed_bytes = connection.stats.last_transfer.wire_bytes
        assert compressed.fetchall() == plain.fetchall()
        assert compressed_bytes < plain_bytes / 2
        connection.close()

    def test_encryption_roundtrip(self, client):
        result = client.execute("SELECT * FROM t ORDER BY i",
                                options=TransferOptions(encrypt=True))
        assert result.row_count == 3
        assert client.stats.last_transfer.encrypted

    def test_compression_and_encryption_combined(self, client):
        options = TransferOptions(compression=CODEC_ZLIB, encrypt=True)
        result = client.execute("SELECT * FROM t ORDER BY i", options=options)
        assert result.fetchall()[0] == (1, "aaa")

    def test_stats_accumulate(self, client):
        client.execute("SELECT 1")
        client.execute("SELECT * FROM t")
        assert client.stats.queries == 2
        assert client.stats.rows_received == 4
        assert len(client.stats.history) == 2


class TestCursor:
    def test_cursor_api(self, client):
        cursor = client.cursor()
        cursor.execute("SELECT i, s FROM t ORDER BY i")
        assert cursor.rowcount == 3
        assert cursor.description[0][0] == "i"
        assert cursor.fetchone() == (1, "aaa")
        assert cursor.fetchmany(2) == [(2, "bbb"), (3, None)]
        assert cursor.fetchone() is None

    def test_cursor_fetchall_after_partial(self, client):
        cursor = client.cursor().execute("SELECT i FROM t ORDER BY i")
        cursor.fetchone()
        assert cursor.fetchall() == [(2,), (3,)]

    def test_cursor_rowcount_for_dml(self, client):
        cursor = client.cursor()
        cursor.execute("CREATE TABLE c (i INTEGER)")
        cursor.execute("INSERT INTO c VALUES (1), (2)")
        assert cursor.rowcount == 2


class TestResultEncoding:
    def make_result(self) -> QueryResult:
        return QueryResult([
            ResultColumn("i", SQLType.INTEGER, [1, 2, None]),
            ResultColumn("x", SQLType.DOUBLE, [1.5, None, 3.0]),
            ResultColumn("s", SQLType.STRING, ["a", "b", None]),
            ResultColumn("b", SQLType.BLOB, [b"\x00\x01", None, b""]),
        ], statement_type="SELECT")

    def test_plain_roundtrip(self):
        encoded = encode_result(self.make_result())
        decoded = decode_result(encoded.blob, compressed=False, encrypted=False)
        assert decoded.fetchall() == self.make_result().fetchall()
        assert [c.sql_type for c in decoded.columns] == [
            SQLType.INTEGER, SQLType.DOUBLE, SQLType.STRING, SQLType.BLOB]

    def test_compressed_and_encrypted_roundtrip(self):
        encoded = encode_result(self.make_result(), compression=CODEC_ZLIB,
                                encryption_key="secret")
        decoded = decode_result(encoded.blob, compressed=True, encrypted=True,
                                encryption_key="secret")
        assert decoded.row_count == 3
        assert encoded.stats.encrypted

    def test_stats_fields(self):
        encoded = encode_result(self.make_result(), compression=CODEC_ZLIB)
        stats = encoded.stats
        assert stats.raw_bytes > 0
        assert stats.compressed_bytes <= stats.raw_bytes + 16
        assert stats.wire_bytes == stats.compressed_bytes
        assert stats.total_rows == 3
