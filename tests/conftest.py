"""Shared fixtures for the devUDF reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.netproto.client import Connection
from repro.netproto.server import DatabaseServer
from repro.sqldb.database import Database
from repro.workloads.udf_corpus import (
    MEAN_DEVIATION_BUGGY_BODY,
    MEAN_DEVIATION_FIXED_BODY,
    load_numbers_create_sql,
    mean_deviation_create_sql,
    setup_classifier_database,
    setup_mixed_catalog,
    setup_numbers_database,
)


@pytest.fixture()
def database() -> Database:
    """An empty embedded database."""
    return Database(name="demo")


@pytest.fixture()
def numbers_database(database: Database) -> Database:
    """A database with a small ``numbers`` table."""
    database.execute("CREATE TABLE numbers (i INTEGER)")
    database.execute("INSERT INTO numbers VALUES (1), (2), (3), (4), (10)")
    return database


@pytest.fixture()
def demo_database(database: Database, tmp_path) -> Database:
    """The demo database: CSV-backed numbers table + buggy mean_deviation."""
    setup_numbers_database(database, str(tmp_path / "csv"), n_files=3, rows_per_file=10)
    database.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY))
    return database


@pytest.fixture()
def fixed_demo_database(database: Database, tmp_path) -> Database:
    setup_numbers_database(database, str(tmp_path / "csv_fixed"), n_files=3,
                           rows_per_file=10)
    database.execute(mean_deviation_create_sql(MEAN_DEVIATION_FIXED_BODY))
    return database


@pytest.fixture()
def classifier_database(database: Database) -> Database:
    """A database with training/testing sets and the classifier UDFs."""
    setup_classifier_database(database, n_rows=60, seed=3)
    return database


@pytest.fixture()
def server(database: Database) -> DatabaseServer:
    """A protocol server wrapping an empty database (default monetdb/monetdb user)."""
    return DatabaseServer(database)


@pytest.fixture()
def demo_server_fixture(demo_database: Database) -> DatabaseServer:
    return DatabaseServer(demo_database)


@pytest.fixture()
def connection(server: DatabaseServer) -> Connection:
    """An authenticated in-process client connection."""
    conn = Connection.connect_in_process(server)
    yield conn
    conn.close()


@pytest.fixture()
def mixed_catalog_server(demo_database: Database) -> DatabaseServer:
    """Demo database plus the extra ordinary UDF corpus."""
    setup_mixed_catalog(demo_database)
    demo_database.execute(load_numbers_create_sql())
    return DatabaseServer(demo_database)


@pytest.fixture()
def project(tmp_path) -> DevUDFProject:
    """A fresh devUDF project under a temporary directory."""
    return DevUDFProject(tmp_path / "ide_project")


@pytest.fixture()
def settings() -> DevUDFSettings:
    return DevUDFSettings(debug_query="SELECT mean_deviation(i) FROM numbers")
