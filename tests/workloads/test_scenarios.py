"""Tests for the demo scenarios A and B as DebuggingScenario objects."""

import contextlib
import io

import pytest

from repro.core.debugger import DebugSession
from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.netproto.client import Connection
from repro.netproto.server import DatabaseServer
from repro.workloads.scenarios import ScenarioA, ScenarioB


def quiet_execute(connection, sql):
    with contextlib.redirect_stdout(io.StringIO()):
        return connection.execute(sql)


class TestScenarioA:
    @pytest.fixture()
    def scenario(self, tmp_path) -> ScenarioA:
        scenario = ScenarioA(tmp_path / "csv", n_files=3, rows_per_file=10)
        return scenario

    @pytest.fixture()
    def server(self, scenario) -> DatabaseServer:
        server = DatabaseServer()
        scenario.setup(server)
        return server

    def test_setup_creates_buggy_udf_and_data(self, scenario, server):
        database = server.database
        assert database.has_function("mean_deviation")
        assert database.row_count("numbers") == 30

    def test_buggy_result_detected_as_incorrect(self, scenario, server):
        connection = Connection.connect_in_process(server)
        value = connection.execute(scenario.debug_query).scalar()
        assert not scenario.is_correct(value)
        assert scenario.reference_value() > 0
        connection.close()

    def test_fix_sql_produces_correct_result(self, scenario, server):
        connection = Connection.connect_in_process(server)
        connection.execute(scenario.fixed_create_sql())
        value = connection.execute(scenario.debug_query).scalar()
        assert scenario.is_correct(value)
        connection.close()

    def test_instrumented_bodies_run(self, scenario, server):
        connection = Connection.connect_in_process(server)
        for round_index in range(scenario.print_debug_rounds()):
            quiet_execute(connection, scenario.instrumented_create_sql(round_index))
            quiet_execute(connection, scenario.debug_query)
        connection.close()

    def test_fix_applied_to_generated_source(self, scenario, server, tmp_path):
        settings = DevUDFSettings(debug_query=scenario.debug_query)
        plugin = DevUDFPlugin(DevUDFProject(tmp_path / "proj"), settings, server=server)
        plugin.import_udfs([scenario.udf_name])
        source = plugin.project.udf_source(scenario.udf_name)
        fixed = scenario.apply_fix_to_source(source)
        assert "abs(column[i] - mean)" in fixed
        assert scenario.debugger_breakpoints(source)
        plugin.close()

    def test_bug_visible_in_debugger(self, scenario, server, tmp_path):
        settings = DevUDFSettings(debug_query=scenario.debug_query)
        plugin = DevUDFPlugin(DevUDFProject(tmp_path / "proj"), settings, server=server)
        preparation = plugin.prepare_debug(scenario.udf_name)
        source = plugin.project.udf_source(scenario.udf_name)
        outcome = DebugSession(
            preparation.script_path,
            breakpoints=scenario.debugger_breakpoints(source),
            watches=scenario.debugger_watches(),
            working_directory=preparation.script_path.parent,
        ).run()
        assert scenario.bug_visible_in_debugger(outcome)
        plugin.close()


class TestScenarioB:
    @pytest.fixture()
    def scenario(self, tmp_path) -> ScenarioB:
        return ScenarioB(tmp_path / "csv", n_files=4, rows_per_file=8)

    @pytest.fixture()
    def server(self, scenario) -> DatabaseServer:
        server = DatabaseServer()
        scenario.setup(server)
        return server

    def test_debug_query_set_after_setup(self, scenario, server):
        assert "loadNumbers" in scenario.debug_query
        assert str(scenario.workload.directory) in scenario.debug_query

    def test_buggy_loader_detected_as_incorrect(self, scenario, server):
        connection = Connection.connect_in_process(server)
        rows = connection.execute(scenario.debug_query).fetchall()
        assert not scenario.is_correct(rows)
        assert len(rows) == scenario.workload.rows_excluding_last_file
        connection.close()

    def test_fix_sql_produces_correct_result(self, scenario, server):
        connection = Connection.connect_in_process(server)
        connection.execute(scenario.fixed_create_sql())
        rows = connection.execute(scenario.debug_query).fetchall()
        assert scenario.is_correct(rows)
        connection.close()

    def test_bug_visible_in_debugger(self, scenario, server, tmp_path):
        settings = DevUDFSettings(debug_query=scenario.debug_query)
        plugin = DevUDFPlugin(DevUDFProject(tmp_path / "proj"), settings, server=server)
        preparation = plugin.prepare_debug(scenario.udf_name)
        source = plugin.project.udf_source(scenario.udf_name)
        outcome = DebugSession(
            preparation.script_path,
            breakpoints=scenario.debugger_breakpoints(source),
            watches=scenario.debugger_watches(),
            working_directory=preparation.script_path.parent,
        ).run()
        assert scenario.bug_visible_in_debugger(outcome)
        plugin.close()

    def test_mean_deviation_registered_correct_in_scenario_b(self, scenario, server):
        """Scenario B uses the *correct* UDF; only the loader is buggy."""
        connection = Connection.connect_in_process(server)
        value = connection.execute(
            f"SELECT mean_deviation(i) FROM loadNumbers('{scenario.workload.directory}')"
        ).scalar()
        # correct UDF over incomplete data: close to, but not equal to, the reference
        assert value == pytest.approx(
            scenario.workload.mean_deviation_excluding_last_file())
        connection.close()
