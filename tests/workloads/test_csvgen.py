"""Tests for the CSV workload generator (the demo's data, §2.5)."""

import numpy as np
import pytest

from repro.workloads.csvgen import (
    generate_csv_directory,
    load_workload,
    reference_mean_deviation,
)


class TestGeneration:
    def test_files_and_rows(self, tmp_path):
        workload = generate_csv_directory(tmp_path / "csv", n_files=4, rows_per_file=15)
        assert len(workload.files) == 4
        assert workload.total_rows == 60
        assert all(path.exists() for path in workload.files)

    def test_single_integer_column(self, tmp_path):
        workload = generate_csv_directory(tmp_path / "csv", n_files=2, rows_per_file=5)
        for path in workload.files:
            for line in path.read_text().splitlines():
                int(line)  # must parse as an integer

    def test_deterministic_with_seed(self, tmp_path):
        a = generate_csv_directory(tmp_path / "a", seed=5)
        b = generate_csv_directory(tmp_path / "b", seed=5)
        assert a.all_values == b.all_values

    def test_value_range_respected(self, tmp_path):
        workload = generate_csv_directory(tmp_path / "csv", low=10, high=20)
        assert all(10 <= value <= 20 for value in workload.all_values)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            generate_csv_directory(tmp_path / "x", n_files=0)
        with pytest.raises(ValueError):
            generate_csv_directory(tmp_path / "y", rows_per_file=0)

    def test_load_workload_round_trip(self, tmp_path):
        generated = generate_csv_directory(tmp_path / "csv", n_files=3, rows_per_file=7)
        loaded = load_workload(tmp_path / "csv")
        assert loaded.all_values == generated.all_values
        assert len(loaded.files) == 3


class TestReferenceStatistics:
    def test_mean_deviation_matches_numpy(self, tmp_path):
        workload = generate_csv_directory(tmp_path / "csv", n_files=3, rows_per_file=50)
        values = np.asarray(workload.all_values, dtype=float)
        expected = float(np.mean(np.abs(values - values.mean())))
        assert workload.mean_deviation() == pytest.approx(expected)
        assert reference_mean_deviation(workload.all_values) == pytest.approx(expected)

    def test_rows_excluding_last_file(self, tmp_path):
        workload = generate_csv_directory(tmp_path / "csv", n_files=4, rows_per_file=10)
        assert workload.rows_excluding_last_file == 30

    def test_deviation_excluding_last_file_differs(self, tmp_path):
        """Scenario B's observable symptom: dropping a file changes the statistic."""
        workload = generate_csv_directory(tmp_path / "csv", n_files=5, rows_per_file=30,
                                          seed=3)
        assert workload.mean_deviation() != pytest.approx(
            workload.mean_deviation_excluding_last_file(), abs=1e-12)

    def test_empty_reference(self):
        assert reference_mean_deviation([]) == 0.0
