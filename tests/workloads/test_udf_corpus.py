"""Tests for the UDF corpus: the paper's listings really run on the engine."""

import pytest

from repro.netproto.client import Connection
from repro.sqldb.database import Database
from repro.workloads.csvgen import reference_mean_deviation
from repro.workloads.udf_corpus import (
    EXTRA_UDFS_SQL,
    LOAD_NUMBERS_BUGGY_BODY,
    LOAD_NUMBERS_FIXED_BODY,
    MEAN_DEVIATION_BUGGY_BODY,
    MEAN_DEVIATION_FIXED_BODY,
    demo_server,
    load_numbers_create_sql,
    mean_deviation_create_sql,
    setup_classifier_database,
    setup_mixed_catalog,
    setup_numbers_database,
)


class TestMeanDeviation:
    @pytest.fixture()
    def db(self, tmp_path) -> Database:
        database = Database()
        setup_numbers_database(database, str(tmp_path / "csv"), n_files=3,
                               rows_per_file=20)
        return database

    def test_fixed_udf_matches_reference(self, db):
        db.execute(mean_deviation_create_sql(MEAN_DEVIATION_FIXED_BODY))
        values = db.execute("SELECT i FROM numbers").column("i").values
        result = db.execute("SELECT mean_deviation(i) FROM numbers").scalar()
        assert result == pytest.approx(reference_mean_deviation(values))

    def test_buggy_udf_is_wrong_but_runs(self, db):
        """Listing 4: syntactically correct, logically incorrect (§2.5)."""
        db.execute(mean_deviation_create_sql(MEAN_DEVIATION_BUGGY_BODY))
        values = db.execute("SELECT i FROM numbers").column("i").values
        result = db.execute("SELECT mean_deviation(i) FROM numbers").scalar()
        reference = reference_mean_deviation(values)
        assert abs(result) < 1e-6  # sums of signed deviations cancel out
        assert abs(result - reference) > 1.0


class TestLoadNumbers:
    def test_buggy_loader_skips_last_file(self, tmp_path):
        database = Database()
        setup = setup_numbers_database(database, str(tmp_path / "csv"), n_files=4,
                                       rows_per_file=10, load_with="none")
        database.execute(load_numbers_create_sql(LOAD_NUMBERS_BUGGY_BODY))
        result = database.execute(
            f"SELECT COUNT(*) FROM loadNumbers('{setup.csv_directory}')")
        assert result.scalar() == setup.workload.rows_excluding_last_file

    def test_fixed_loader_reads_everything(self, tmp_path):
        database = Database()
        setup = setup_numbers_database(database, str(tmp_path / "csv"), n_files=4,
                                       rows_per_file=10, load_with="none")
        database.execute(load_numbers_create_sql(LOAD_NUMBERS_FIXED_BODY))
        result = database.execute(
            f"SELECT * FROM loadNumbers('{setup.csv_directory}')")
        assert sorted(r[0] for r in result.rows()) == sorted(setup.workload.all_values)

    def test_loader_composes_with_mean_deviation(self, tmp_path):
        """The demo's end goal: mean deviation over the loaded CSV directory."""
        database = Database()
        setup = setup_numbers_database(database, str(tmp_path / "csv"), n_files=3,
                                       rows_per_file=15, load_with="none")
        database.execute(load_numbers_create_sql(LOAD_NUMBERS_FIXED_BODY))
        database.execute(mean_deviation_create_sql(MEAN_DEVIATION_FIXED_BODY))
        result = database.execute(
            f"SELECT mean_deviation(i) FROM loadNumbers('{setup.csv_directory}')")
        assert result.scalar() == pytest.approx(setup.workload.mean_deviation())


class TestClassifierUDFs:
    @pytest.fixture()
    def db(self) -> Database:
        database = Database()
        setup_classifier_database(database, n_rows=50, seed=3)
        return database

    def test_tables_created(self, db):
        assert db.row_count("trainingset") + db.row_count("testingset") == 50
        assert db.has_function("train_rnforest")
        assert db.has_function("find_best_classifier")

    def test_train_rnforest_returns_pickled_model(self, db):
        import binascii
        import pickle

        result = db.execute(
            "SELECT * FROM train_rnforest((SELECT f0, f1, label FROM trainingset), 3)")
        row = result.fetchone()
        model = pickle.loads(binascii.unhexlify(row[0]))
        assert row[1] == 3
        assert model.n_estimators == 3

    def test_find_best_classifier_sweeps_estimators(self, db):
        result = db.execute("SELECT * FROM find_best_classifier(3)")
        clf_hex, best_n, correct = result.fetchone()
        assert 1 <= best_n <= 3
        assert correct > 0
        assert db.udf_runtime.invocation_counts["train_rnforest"] == 3

    def test_best_classifier_beats_chance(self, db):
        _, _, correct = db.execute("SELECT * FROM find_best_classifier(2)").fetchone()
        test_rows = db.row_count("testingset")
        assert correct / test_rows > 0.6


class TestMixedCatalog:
    def test_extra_udfs_register_and_run(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER, x DOUBLE)")
        database.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 6.0)")
        created = setup_mixed_catalog(database)
        assert set(created) == set(EXTRA_UDFS_SQL)
        assert database.execute("SELECT add_one(i) FROM t").fetchall() == [(2,), (3,), (4,)]
        assert database.execute("SELECT total_sum(i) FROM t").scalar() == 6.0
        stats = database.execute("SELECT * FROM column_stats((SELECT x FROM t))")
        assert ("max", 6.0) in stats.fetchall()
        series = database.execute("SELECT COUNT(*) FROM generate_series_py(7)")
        assert series.scalar() == 7

    def test_setup_is_idempotent(self):
        database = Database()
        setup_mixed_catalog(database)
        setup_mixed_catalog(database)  # second call must not raise


class TestDemoServer:
    def test_demo_server_end_to_end(self, tmp_path):
        server, setup = demo_server(str(tmp_path / "csv"), buggy_mean_deviation=False,
                                    with_extras=True)
        connection = Connection.connect_in_process(server)
        value = connection.execute("SELECT mean_deviation(i) FROM numbers").scalar()
        assert value == pytest.approx(setup.workload.mean_deviation())
        assert "add_one" in server.database.function_names()
        connection.close()

    def test_demo_server_with_classifier(self, tmp_path):
        server, _ = demo_server(str(tmp_path / "csv"), with_classifier=True,
                                n_files=2, rows_per_file=5)
        assert server.database.has_function("find_best_classifier")
        assert server.database.row_count("trainingset") > 0
