"""Tests for the editor buffer model."""

from pathlib import Path

import pytest

from repro.errors import ProjectError
from repro.ide.editor import EditorBuffer


@pytest.fixture()
def buffer(tmp_path) -> EditorBuffer:
    path = tmp_path / "udf.py"
    text = "def f(x):\n    return x\n"
    path.write_text(text)
    return EditorBuffer(path=path, text=text)


class TestAccess:
    def test_lines_and_line(self, buffer):
        assert buffer.lines == ["def f(x):", "    return x"]
        assert buffer.line(2) == "    return x"

    def test_line_out_of_range(self, buffer):
        with pytest.raises(ProjectError):
            buffer.line(0)
        with pytest.raises(ProjectError):
            buffer.line(5)

    def test_find_line(self, buffer):
        assert buffer.find_line("return") == 2
        with pytest.raises(ProjectError):
            buffer.find_line("missing text")


class TestEdits:
    def test_set_text_marks_dirty(self, buffer):
        buffer.set_text("print('hi')\n")
        assert buffer.dirty
        assert buffer.edit_count == 1

    def test_replace_line(self, buffer):
        buffer.replace_line(2, "    return x + 1")
        assert buffer.line(2) == "    return x + 1"
        assert buffer.text.endswith("\n")

    def test_insert_line(self, buffer):
        buffer.insert_line(2, "    x = abs(x)")
        assert buffer.lines[1] == "    x = abs(x)"
        assert len(buffer.lines) == 3

    def test_replace_text_counts(self, buffer):
        assert buffer.replace_text("x", "y") == 2
        assert buffer.replace_text("not there", "z") == 0

    def test_replace_text_limited_count(self, buffer):
        assert buffer.replace_text("x", "y", count=1) == 1
        assert "x" in buffer.text

    def test_undo(self, buffer):
        original = buffer.text
        buffer.set_text("changed")
        assert buffer.undo()
        assert buffer.text == original
        buffer._undo_stack.clear()
        assert not buffer.undo()


class TestPersistence:
    def test_save_clears_dirty(self, buffer):
        buffer.set_text("new content\n")
        saved_path = buffer.save()
        assert saved_path.read_text() == "new content\n"
        assert not buffer.dirty

    def test_reload_discards_changes(self, buffer):
        buffer.set_text("scratch")
        buffer.reload()
        assert buffer.text == "def f(x):\n    return x\n"

    def test_reload_missing_file(self, tmp_path):
        buffer = EditorBuffer(path=tmp_path / "gone.py", text="x")
        with pytest.raises(ProjectError):
            buffer.reload()

    def test_save_creates_parent_directories(self, tmp_path):
        buffer = EditorBuffer(path=tmp_path / "deep" / "dir" / "f.py", text="pass\n")
        assert buffer.save().exists()
