"""Tests for the IDE project model."""

import pytest

from repro.errors import ProjectError
from repro.ide.project_model import IDEProject


@pytest.fixture()
def project(tmp_path) -> IDEProject:
    return IDEProject(tmp_path / "proj", name="demo")


class TestFiles:
    def test_create_and_read(self, project):
        project.create_file("udfs/f.py", "pass\n")
        assert project.exists("udfs/f.py")
        assert project.read_text("udfs/f.py") == "pass\n"

    def test_create_no_overwrite(self, project):
        project.create_file("a.py", "1")
        with pytest.raises(ProjectError):
            project.create_file("a.py", "2", overwrite=False)
        project.create_file("a.py", "3")
        assert project.read_text("a.py") == "3"

    def test_open_missing_file(self, project):
        with pytest.raises(ProjectError):
            project.open_file("missing.py")

    def test_delete_file(self, project):
        project.create_file("x.py", "")
        project.delete_file("x.py")
        assert not project.exists("x.py")
        with pytest.raises(ProjectError):
            project.delete_file("x.py")

    def test_files_listing_sorted(self, project):
        project.create_file("b.py", "")
        project.create_file("a.py", "")
        project.create_file("notes.txt", "")
        assert project.relative_files() == ["a.py", "b.py"]

    def test_path_escape_rejected(self, project):
        with pytest.raises(ProjectError):
            project.path_of("../outside.py")


class TestBuffers:
    def test_open_returns_same_buffer(self, project):
        project.create_file("f.py", "x = 1\n")
        first = project.open_file("f.py")
        second = project.open_file("f.py")
        assert first is second

    def test_read_text_prefers_unsaved_buffer(self, project):
        project.create_file("f.py", "on disk\n")
        buffer = project.open_file("f.py")
        buffer.set_text("in buffer\n")
        assert project.read_text("f.py") == "in buffer\n"

    def test_dirty_buffers_and_save_all(self, project):
        project.create_file("a.py", "a")
        project.create_file("b.py", "b")
        project.open_file("a.py").set_text("changed")
        assert project.dirty_buffers() == ["a.py"]
        assert project.save_all() == 1
        assert project.dirty_buffers() == []
        assert project.path_of("a.py").read_text() == "changed"

    def test_project_name_defaults_to_directory(self, tmp_path):
        project = IDEProject(tmp_path / "my_project")
        assert project.name == "my_project"
