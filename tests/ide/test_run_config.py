"""Tests for run configurations and the subprocess runner."""

import pytest

from repro.errors import ProjectError
from repro.ide.run_config import RunConfiguration, RunManager


@pytest.fixture()
def manager() -> RunManager:
    return RunManager()


def write_script(tmp_path, name: str, body: str):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestConfigurations:
    def test_add_and_get(self, manager, tmp_path):
        config = RunConfiguration("demo", tmp_path / "script.py")
        manager.add(config)
        assert manager.get("demo") is config
        with pytest.raises(ProjectError):
            manager.get("other")

    def test_working_directory_defaults_to_script_parent(self, tmp_path):
        config = RunConfiguration("demo", tmp_path / "sub" / "script.py")
        assert config.resolved_working_directory == tmp_path / "sub"


class TestRunning:
    def test_successful_run_captures_stdout(self, manager, tmp_path):
        script = write_script(tmp_path, "ok.py", "print('hello from udf')\n")
        manager.add(RunConfiguration("ok", script))
        outcome = manager.run("ok")
        assert outcome.succeeded
        assert "hello from udf" in outcome.stdout
        assert manager.history[-1] is outcome

    def test_failing_run_reports_exit_code_and_stderr(self, manager, tmp_path):
        script = write_script(tmp_path, "fail.py", "raise SystemExit(3)\n")
        manager.add(RunConfiguration("fail", script))
        outcome = manager.run("fail")
        assert not outcome.succeeded
        assert outcome.exit_code == 3

    def test_exception_traceback_in_stderr(self, manager, tmp_path):
        script = write_script(tmp_path, "boom.py", "raise ValueError('boom')\n")
        manager.add(RunConfiguration("boom", script))
        outcome = manager.run("boom")
        assert "ValueError" in outcome.stderr

    def test_arguments_and_environment(self, manager, tmp_path):
        script = write_script(
            tmp_path, "args.py",
            "import os, sys\nprint(sys.argv[1], os.environ.get('DEVUDF_FLAG'))\n")
        manager.add(RunConfiguration("args", script, arguments=["alpha"],
                                     environment={"DEVUDF_FLAG": "on"}))
        outcome = manager.run("args")
        assert "alpha on" in outcome.stdout

    def test_missing_script_raises(self, manager, tmp_path):
        manager.add(RunConfiguration("missing", tmp_path / "absent.py"))
        with pytest.raises(ProjectError):
            manager.run("missing")
