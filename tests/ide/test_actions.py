"""Tests for the action/menu registry (Figure 1 surface)."""

import pytest

from repro.errors import ProjectError
from repro.ide.actions import Action, MainMenu, MenuGroup


class TestAction:
    def test_invoke_counts(self):
        action = Action("demo.hello", "Hello", callback=lambda: "hi")
        assert action.invoke() == "hi"
        assert action.invocations == 1

    def test_invoke_without_callback(self):
        with pytest.raises(ProjectError):
            Action("demo.noop", "Noop").invoke()

    def test_invoke_passes_arguments(self):
        action = Action("demo.add", "Add", callback=lambda a, b: a + b)
        assert action.invoke(2, b=3) == 5


class TestMenuGroup:
    def test_add_and_find(self):
        group = MenuGroup("Tools")
        group.add_action(Action("a.one", "One"))
        sub = group.submenu("Sub")
        sub.add_action(Action("a.two", "Two"))
        assert group.action("a.one").label == "One"
        assert group.action("a.two").label == "Two"
        assert group.action_labels() == ["One"]

    def test_duplicate_action_id_rejected(self):
        group = MenuGroup("Tools")
        group.add_action(Action("x", "X"))
        with pytest.raises(ProjectError):
            group.add_action(Action("x", "X again"))

    def test_unknown_action(self):
        with pytest.raises(ProjectError):
            MenuGroup("Empty").action("nope")

    def test_submenu_is_stable(self):
        group = MenuGroup("Tools")
        assert group.submenu("A") is group.submenu("A")

    def test_tree_rendering(self):
        group = MenuGroup("Tools")
        group.add_action(Action("a", "Alpha"))
        group.submenu("Nested").add_action(Action("b", "Beta"))
        tree = group.tree()
        assert "Tools" in tree and "Alpha" in tree and "Beta" in tree


class TestMainMenu:
    def test_default_menus_present(self):
        menu = MainMenu()
        for label in ("File", "Edit", "Tools", "Run", "VCS"):
            assert label in menu.labels()

    def test_plugin_can_add_a_new_top_level_menu(self):
        menu = MainMenu()
        group = menu.menu("UDF Development")
        group.add_action(Action("devudf.settings", "Settings"))
        assert "UDF Development" in menu.labels()
        assert menu.find_action("devudf.settings").label == "Settings"

    def test_find_action_across_menus(self):
        menu = MainMenu()
        menu.menu("Tools").add_action(Action("t.x", "X"))
        assert menu.find_action("t.x").action_id == "t.x"
        with pytest.raises(ProjectError):
            menu.find_action("missing")
