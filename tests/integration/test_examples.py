"""The shipped examples must run end-to-end (they are executable documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout, check=False,
    )


@pytest.mark.parametrize("script,expected_marker", [
    ("quickstart.py", "quickstart finished"),
    ("nested_classifier.py", "nested example finished"),
    ("scenario_b_data_loader.py", "scenario B finished"),
    ("remote_transfer_options.py", "remote example finished"),
])
def test_example_runs_to_completion(script, expected_marker):
    completed = run_example(script)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected_marker in completed.stdout
