"""Tests for the ``devudf`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.netproto.server import SocketServer
from repro.workloads.udf_corpus import demo_server


@pytest.fixture()
def running_server(tmp_path):
    server, setup = demo_server(str(tmp_path / "csv"), buggy_mean_deviation=True,
                                with_extras=True, n_files=3, rows_per_file=10)
    socket_server = SocketServer(server, host="127.0.0.1", port=0)
    host, port = socket_server.start_background()
    yield server, setup, host, port
    socket_server.stop()


@pytest.fixture()
def configured_project(running_server, tmp_path):
    _, _, host, port = running_server
    project_dir = str(tmp_path / "cli_project")
    code = main([
        "configure", "--project", project_dir,
        "--host", host, "--port", str(port), "--database", "demo",
        "--username", "monetdb", "--password", "monetdb",
        "--debug-query", "SELECT mean_deviation(i) FROM numbers",
    ])
    assert code == 0
    return project_dir


class TestConfigure:
    def test_configure_writes_settings(self, configured_project):
        settings_file = f"{configured_project}/.devudf/settings.json"
        payload = json.loads(open(settings_file).read())
        assert payload["database"] == "demo"
        assert payload["debug_query"].startswith("SELECT mean_deviation")

    def test_configure_transfer_options(self, configured_project, capsys):
        code = main(["configure", "--project", configured_project,
                     "--compression", "zlib", "--encrypt", "--sample-size", "50"])
        assert code == 0
        assert "compression=zlib" in capsys.readouterr().out

    def test_unconfigured_project_rejected(self, tmp_path, capsys):
        code = main(["list", "--project", str(tmp_path / "nowhere")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestListImportExport:
    def test_list(self, configured_project, capsys):
        assert main(["list", "--project", configured_project]) == 0
        out = capsys.readouterr().out
        assert "mean_deviation" in out and "add_one" in out

    def test_import_and_export(self, configured_project, running_server, capsys):
        assert main(["import", "--project", configured_project, "mean_deviation"]) == 0
        assert "imported mean_deviation" in capsys.readouterr().out
        assert main(["export", "--project", configured_project, "mean_deviation"]) == 0
        assert "exported mean_deviation" in capsys.readouterr().out

    def test_import_all(self, configured_project, capsys):
        assert main(["import", "--project", configured_project]) == 0
        out = capsys.readouterr().out
        assert "mean_deviation" in out and "add_one" in out

    def test_history_after_import(self, configured_project, capsys):
        main(["import", "--project", configured_project, "mean_deviation"])
        capsys.readouterr()
        assert main(["history", "--project", configured_project]) == 0
        assert "Import UDFs" in capsys.readouterr().out


class TestDebugCommand:
    def test_debug_run_only(self, configured_project, capsys):
        code = main(["debug", "--project", configured_project, "--run-only"])
        assert code == 0
        out = capsys.readouterr().out
        assert "debug target: mean_deviation" in out
        assert "local run succeeded" in out

    def test_debug_with_breakpoint_text_and_watch(self, configured_project, capsys):
        code = main([
            "debug", "--project", configured_project,
            "--breakpoint-text", "distance += column[i] - mean",
            "--watch", "distance",
            "--max-stops", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "debug session finished" in out
        assert "distance" in out


class TestStandaloneCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Eclipse" in out and "PyCharm" in out and "IDE share" in out

    def test_demo_server_command(self, tmp_path, capsys):
        code = main(["demo-server", "--csv-dir", str(tmp_path / "cli_csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "demo server listening" in out
        assert "CSV workload" in out

    def test_demo_server_command_durable(self, tmp_path, capsys):
        db_path = tmp_path / "demo.db"
        code = main(["demo-server", "--csv-dir", str(tmp_path / "cli_csv"),
                     "--db", str(db_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "durable" in out
        # shutdown auto-checkpointed: the demo corpus survives on disk
        assert db_path.exists()
        from repro.sqldb.database import Database

        recovered = Database(path=db_path)
        assert recovered.row_count("numbers") > 0
        assert recovered.has_function("mean_deviation")
        recovered.close()
        # a second launch over the same file serves the recovered state
        # without re-ingesting the CSVs
        rows_before = recovered.row_count("numbers")
        code = main(["demo-server", "--csv-dir", str(tmp_path / "cli_csv"),
                     "--db", str(db_path)])
        assert code == 0
        recheck = Database(path=db_path)
        assert recheck.row_count("numbers") == rows_before
        recheck.close()
