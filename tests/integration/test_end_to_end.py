"""End-to-end integration tests spanning all subsystems.

These reproduce the paper's demo outline (§2.5) over a *real TCP connection*:
server with CSV data and buggy UDFs -> plugin connects -> import -> local
debug -> fix -> export -> verify, for both scenarios and for the nested
classifier example.
"""

import contextlib
import io

import pytest

from repro.core.plugin import DevUDFPlugin
from repro.core.project import DevUDFProject
from repro.core.settings import DevUDFSettings
from repro.netproto.server import SocketServer
from repro.workloads.scenarios import ScenarioA
from repro.workloads.udf_corpus import demo_server, setup_classifier_database


@pytest.fixture()
def tcp_demo(tmp_path):
    """A demo server (buggy mean_deviation + extras + classifier) over TCP."""
    server, setup = demo_server(str(tmp_path / "csv"), buggy_mean_deviation=True,
                                with_extras=True, n_files=4, rows_per_file=25)
    setup_classifier_database(server.database, n_rows=40)
    socket_server = SocketServer(server, host="127.0.0.1", port=0)
    host, port = socket_server.start_background()
    yield server, setup, host, port, tmp_path
    socket_server.stop()


class TestScenarioAOverTCP:
    def test_full_demo_walkthrough(self, tcp_demo):
        server, setup, host, port, tmp_path = tcp_demo
        reference = setup.workload.mean_deviation()
        settings = DevUDFSettings(
            host=host, port=port, database="demo",
            username="monetdb", password="monetdb",
            debug_query="SELECT mean_deviation(i) FROM numbers",
        )
        project = DevUDFProject(tmp_path / "ide_project")
        plugin = DevUDFPlugin(project, settings)
        try:
            # the buggy UDF gives the wrong answer on the server
            wrong = plugin.execute_sql(settings.debug_query).scalar()
            assert abs(wrong - reference) > 1.0

            # import -> extract -> debug -> the bug is visible
            plugin.import_udfs(["mean_deviation"])
            preparation = plugin.prepare_debug("mean_deviation")
            source = project.udf_source("mean_deviation")
            line = next(number for number, text in enumerate(source.splitlines(), 1)
                        if "distance += column[i] - mean" in text)
            outcome = plugin.debug_udf(preparation=preparation, breakpoints=[line],
                                       watches={"distance": "distance"})
            assert any(isinstance(s.watches["distance"], (int, float))
                       and s.watches["distance"] < 0 for s in outcome.breakpoint_stops)

            # fix, verify locally, export, verify remotely
            buffer = project.open_udf("mean_deviation")
            buffer.set_text(buffer.text.replace("distance += column[i] - mean",
                                                "distance += abs(column[i] - mean)"))
            buffer.save()
            local = plugin.run_udf_locally(preparation=preparation)
            assert local.result == pytest.approx(reference)
            plugin.export_udfs(["mean_deviation"])
            fixed = plugin.execute_sql(settings.debug_query).scalar()
            assert fixed == pytest.approx(reference)

            # the whole history is in version control
            messages = [commit.message for commit in project.history()]
            assert any("Import" in message for message in messages)
            assert any("Export" in message for message in messages)
        finally:
            plugin.close()

    def test_transfer_options_affect_extraction_only_not_results(self, tcp_demo):
        _, setup, host, port, tmp_path = tcp_demo
        settings = DevUDFSettings(
            host=host, port=port, database="demo",
            username="monetdb", password="monetdb",
            debug_query="SELECT mean_deviation(i) FROM numbers",
        )
        project = DevUDFProject(tmp_path / "transfer_project")
        plugin = DevUDFPlugin(project, settings)
        try:
            plugin.import_udfs(["mean_deviation"])
            plain = plugin.prepare_debug("mean_deviation")
            plugin.configure(use_compression=True, use_encryption=True)
            protected = plugin.prepare_debug("mean_deviation")
            assert protected.inputs.rows_extracted == plain.inputs.rows_extracted
            assert protected.inputs.wire_bytes != plain.inputs.wire_bytes
            local = plugin.run_udf_locally(preparation=protected)
            assert local.completed
        finally:
            plugin.close()


class TestNestedClassifierOverTCP:
    def test_nested_udf_local_run_matches_server(self, tcp_demo):
        server, _, host, port, tmp_path = tcp_demo
        settings = DevUDFSettings(
            host=host, port=port, database="demo",
            username="monetdb", password="monetdb",
            debug_query="SELECT * FROM find_best_classifier(2)",
        )
        project = DevUDFProject(tmp_path / "nested_project")
        plugin = DevUDFPlugin(project, settings)
        try:
            report = plugin.import_udfs(["find_best_classifier"])
            assert report.imported[0].nested_udfs == ["train_rnforest"]
            preparation = plugin.prepare_debug("find_best_classifier")
            local = plugin.run_udf_locally(preparation=preparation)
            assert local.completed
            server_row = plugin.execute_sql(settings.debug_query).fetchone()
            assert local.result["n_estimators"] == server_row[1]
            assert local.result["correct"] == server_row[2]
        finally:
            plugin.close()


class TestMultiUserDevelopment:
    def test_two_developers_share_one_server(self, tcp_demo):
        """Cooperative development: two projects against the same server."""
        server, setup, host, port, tmp_path = tcp_demo
        server.registry.add_user("alice", "alicepw", database="demo")
        server.registry.add_user("bob", "bobpw", database="demo")

        def make_plugin(user, password, directory):
            settings = DevUDFSettings(
                host=host, port=port, database="demo", username=user, password=password,
                debug_query="SELECT mean_deviation(i) FROM numbers")
            return DevUDFPlugin(DevUDFProject(tmp_path / directory), settings)

        alice = make_plugin("alice", "alicepw", "alice_project")
        bob = make_plugin("bob", "bobpw", "bob_project")
        try:
            alice.import_udfs(["mean_deviation"])
            buffer = alice.project.open_udf("mean_deviation")
            buffer.set_text(buffer.text.replace("distance += column[i] - mean",
                                                "distance += abs(column[i] - mean)"))
            buffer.save()
            alice.export_udfs(["mean_deviation"])

            # Bob imports after Alice's fix and sees the corrected body
            bob.import_udfs(["mean_deviation"])
            assert "abs(column[i] - mean)" in bob.project.udf_source("mean_deviation")
        finally:
            alice.close()
            bob.close()


class TestWorkflowComparisonSmoke:
    def test_scenario_a_comparison_runs_quickly(self, tmp_path):
        from repro.core.workflow import compare_workflows
        from repro.workloads.scenarios import make_scenario_a

        with contextlib.redirect_stdout(io.StringIO()):
            comparison = compare_workflows(
                make_scenario_a(tmp_path / "wf", n_files=2, rows_per_file=5),
                project_root=tmp_path / "projects")
        assert comparison.devudf_wins


class TestScenarioObjectsAgainstInProcessServer:
    def test_scenario_a_reference_stable_across_instances(self, tmp_path):
        first = ScenarioA(tmp_path / "csv", n_files=3, rows_per_file=10, seed=21)
        second = ScenarioA(tmp_path / "csv2", n_files=3, rows_per_file=10, seed=21)
        from repro.netproto.server import DatabaseServer

        server_a, server_b = DatabaseServer(), DatabaseServer()
        first.setup(server_a)
        second.setup(server_b)
        assert first.reference_value() == pytest.approx(second.reference_value())
