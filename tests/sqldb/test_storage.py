"""Unit tests for the columnar storage engine."""

import numpy as np
import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sqldb.schema import ColumnDef, TableSchema
from repro.sqldb.storage import Storage, Table, column_to_numpy
from repro.sqldb.types import ColumnType, SQLType


def make_schema(name: str = "t") -> TableSchema:
    return TableSchema(name, [
        ColumnDef("i", ColumnType(SQLType.INTEGER)),
        ColumnDef("s", ColumnType(SQLType.STRING)),
    ])


class TestTableSchema:
    def test_column_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.column_index("I") == 0
        assert schema.column("S").name == "s"
        assert schema.has_column("i")
        assert not schema.has_column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [
                ColumnDef("x", ColumnType(SQLType.INTEGER)),
                ColumnDef("X", ColumnType(SQLType.DOUBLE)),
            ])


class TestTable:
    def test_insert_and_rows(self):
        table = Table(make_schema())
        table.insert_row([1, "a"])
        table.insert_row([2, None])
        assert table.row_count == 2
        assert list(table.rows()) == [(1, "a"), (2, None)]

    def test_insert_coerces_types(self):
        table = Table(make_schema())
        table.insert_row(["3", 42])
        assert list(table.rows()) == [(3, "42")]

    def test_insert_wrong_arity(self):
        table = Table(make_schema())
        with pytest.raises(ExecutionError):
            table.insert_row([1])

    def test_insert_rows_counts(self):
        table = Table(make_schema())
        assert table.insert_rows([(1, "a"), (2, "b"), (3, "c")]) == 3

    def test_delete_rows_with_mask(self):
        table = Table(make_schema())
        table.insert_rows([(1, "a"), (2, "b"), (3, "c")])
        removed = table.delete_rows([True, False, True])
        assert removed == 1
        assert list(table.rows()) == [(1, "a"), (3, "c")]

    def test_delete_mask_length_mismatch(self):
        table = Table(make_schema())
        table.insert_row([1, "a"])
        with pytest.raises(ExecutionError):
            table.delete_rows([True, False])

    def test_update_rows(self):
        table = Table(make_schema())
        table.insert_rows([(1, "a"), (2, "b")])
        updated = table.update_rows([False, True], {"s": ["x", "y"]})
        assert updated == 1
        assert list(table.rows()) == [(1, "a"), (2, "y")]

    def test_truncate(self):
        table = Table(make_schema())
        table.insert_row([1, "a"])
        table.truncate()
        assert table.row_count == 0

    def test_to_dict_and_numpy_dict(self):
        table = Table(make_schema())
        table.insert_rows([(1, "a"), (2, "b")])
        assert table.to_dict() == {"i": [1, 2], "s": ["a", "b"]}
        arrays = table.to_numpy_dict()
        assert arrays["i"].dtype == np.int64
        assert arrays["s"].dtype == object


class TestColumnToNumpy:
    def test_integer_column(self):
        array = column_to_numpy([1, 2, 3], SQLType.INTEGER)
        assert array.dtype == np.int64
        assert array.tolist() == [1, 2, 3]

    def test_double_column(self):
        array = column_to_numpy([1.5, 2.5], SQLType.DOUBLE)
        assert array.dtype == np.float64

    def test_string_column_is_object(self):
        array = column_to_numpy(["a", "bb"], SQLType.STRING)
        assert array.dtype == object

    def test_nulls_force_object_dtype(self):
        array = column_to_numpy([1, None, 3], SQLType.INTEGER)
        assert array.dtype == object
        assert array[1] is None

    def test_empty_column(self):
        assert len(column_to_numpy([], SQLType.INTEGER)) == 0


class TestStorage:
    def test_create_and_lookup(self):
        storage = Storage()
        storage.create_table(make_schema("alpha"))
        assert storage.has_table("ALPHA")
        assert storage.table("alpha").name == "alpha"
        assert storage.table_names() == ["alpha"]

    def test_duplicate_create_raises(self):
        storage = Storage()
        storage.create_table(make_schema("t"))
        with pytest.raises(CatalogError):
            storage.create_table(make_schema("t"))

    def test_create_if_not_exists(self):
        storage = Storage()
        first = storage.create_table(make_schema("t"))
        second = storage.create_table(make_schema("t"), if_not_exists=True)
        assert first is second

    def test_drop(self):
        storage = Storage()
        storage.create_table(make_schema("t"))
        storage.drop_table("t")
        assert not storage.has_table("t")
        with pytest.raises(CatalogError):
            storage.drop_table("t")
        storage.drop_table("t", if_exists=True)  # no error

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Storage().table("nope")
