"""Disk fault injection matrix for the durable storage subsystem.

Every cell of the required matrix — fault {EIO, ENOSPC, short write, torn
write, bit flip, fsync failure} x site {WAL append, WAL reset, checkpoint
image, checkpoint swap, backup} — must land in one of three acceptable
outcomes:

* the store stays **fully usable** (the failing operation rolled back),
* the store **seals** with a structured :class:`PersistenceError` (no
  further write can honestly claim durability), or
* the damage is **detected on reopen** (checksums catch what a lying disk
  acknowledged) and recovery converges to an intact prefix.

Never acceptable: silently losing a write the caller saw acknowledged as
durable, or silently applying bytes the disk corrupted.

Faults are injected through :mod:`repro.sqldb.persist.faults` — the
storage-side twin of the network chaos proxy: deterministic, keyed on byte
offsets and call counts, never timers.
"""

import shutil
from pathlib import Path

import pytest

from repro.errors import CorruptionError, PersistenceError
from repro.sqldb.database import Database
from repro.sqldb.persist import read_wal, wal_path_for
from repro.sqldb.persist.faults import DiskFaultSpec, FaultyFS, injected
from repro.sqldb.persist.recovery import tmp_path_for
from repro.sqldb.persist.wal import HEADER_SIZE, WriteAheadLog


def seeded_database(path: Path) -> Database:
    database = Database(path=path)
    database.execute("CREATE TABLE t (i INTEGER, s STRING)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return database


def row_values(database: Database) -> list[tuple]:
    return database.execute("SELECT * FROM t ORDER BY i").fetchall()


SEED_ROWS = [(1, "a"), (2, "b"), (3, "c")]


# --------------------------------------------------------------------------- #
# WAL unit level: fsyncgate semantics
# --------------------------------------------------------------------------- #
class TestWalFsyncgate:
    """A failed fsync must never be retried against the dirty page cache."""

    def test_append_fsync_failure_truncates_group_and_recovers(self, tmp_path):
        """With nothing pending beyond the group, a failed append fsync is
        fully contained: truncate the group and the log stays honest."""
        wal_file = tmp_path / "log.wal"
        # fsync #1 is the header; #2 is the first (batch-of-1) append
        fs = FaultyFS(DiskFaultSpec(match=".wal", fail_fsync_at_call=2))
        wal = WriteAheadLog(wal_file, fsync_batch=1, fs=fs)
        wal.create(generation=1)
        with pytest.raises(PersistenceError, match="rolled back"):
            wal.append({"op": "truncate", "table": "t"})
        # the unacknowledged record was truncated away, not left behind,
        # and no earlier record's durability is in doubt: no seal
        assert wal.failed is None
        fs.heal()
        assert wal_file.stat().st_size == HEADER_SIZE
        assert read_wal(wal_file).records == []
        wal.append({"op": "truncate", "table": "u"})
        wal.close()
        assert [r["table"] for r in read_wal(wal_file).records] == ["u"]

    def test_append_fsync_failure_with_pending_records_seals(self, tmp_path):
        """Earlier acknowledged-but-unsynced records were covered by the
        failed fsync too — their pages may be gone, so the log must seal."""
        wal_file = tmp_path / "log.wal"
        fs = FaultyFS(DiskFaultSpec(match=".wal", fail_fsync_at_call=2))
        wal = WriteAheadLog(wal_file, fsync_batch=2, fs=fs)
        wal.create(generation=1)
        wal.append({"op": "truncate", "table": "t"})  # pending, no fsync yet
        with pytest.raises(PersistenceError, match="sealed"):
            wal.append({"op": "truncate", "table": "u"})  # batch fsync fails
        assert wal.failed is not None
        # only the unacknowledged group was truncated; the earlier record
        # stays in the file for recovery to re-read from disk
        fs.heal()
        assert [r["table"] for r in read_wal(wal_file).records] == ["t"]
        # sealed for good: append, flush, reset all refuse
        with pytest.raises(PersistenceError, match="sealed"):
            wal.append({"op": "truncate", "table": "t"})
        with pytest.raises(PersistenceError, match="sealed"):
            wal.flush()
        with pytest.raises(PersistenceError, match="sealed"):
            wal.reset(generation=2)
        wal.close()  # releases the handle without claiming durability

    def test_flush_fsync_failure_seals(self, tmp_path):
        wal_file = tmp_path / "log.wal"
        fs = FaultyFS(DiskFaultSpec(match=".wal", fail_fsync_at_call=2))
        wal = WriteAheadLog(wal_file, fsync_batch=1000, fs=fs)
        wal.create(generation=1)
        wal.append({"op": "truncate", "table": "t"})  # batched, no fsync yet
        with pytest.raises(PersistenceError, match="sealed"):
            wal.flush()
        assert wal.failed is not None
        wal.close()

    def test_reset_write_failure_seals(self, tmp_path):
        wal_file = tmp_path / "log.wal"
        # write #1 creates the header, #2 is the append, #3 is the reset's
        # fresh header — fail that one
        fs = FaultyFS(DiskFaultSpec(match=".wal", fail_write_at_call=3))
        wal = WriteAheadLog(wal_file, fsync_batch=1000, fs=fs)
        wal.create(generation=1)
        wal.append({"op": "truncate", "table": "t"})
        with pytest.raises(PersistenceError, match="reset"):
            wal.reset(generation=2)
        assert wal.failed is not None
        with pytest.raises(PersistenceError, match="sealed"):
            wal.append({"op": "truncate", "table": "t"})
        wal.close()

    def test_append_write_eio_rolls_back_and_stays_usable(self, tmp_path):
        wal_file = tmp_path / "log.wal"
        fs = FaultyFS(DiskFaultSpec(match=".wal", fail_write_at_call=2))
        wal = WriteAheadLog(wal_file, fsync_batch=1000, fs=fs)
        wal.create(generation=1)
        with pytest.raises(PersistenceError, match="rolled back"):
            wal.append({"op": "truncate", "table": "t"})
        # an EIO append truncates the group: the log is still healthy
        assert wal.failed is None
        wal.append({"op": "truncate", "table": "u"})
        wal.close()
        contents = read_wal(wal_file)
        assert [r["table"] for r in contents.records] == ["u"]
        assert not contents.torn


# --------------------------------------------------------------------------- #
# store level: WAL append site
# --------------------------------------------------------------------------- #
class TestWalAppendFaults:
    @pytest.mark.parametrize("kind", ["eio", "enospc", "torn"])
    def test_failed_append_rolls_back_statement(self, tmp_path, kind):
        path = tmp_path / "t.db"
        # write faults apply to handles *opened through* the faulty fs, so
        # the whole lifetime runs under injection; the fault is armed after
        # seeding by pointing it at the next write / the current file end
        fs = FaultyFS(DiskFaultSpec(match=".wal"))
        with injected(fs):
            database = seeded_database(path)
            wal_size = wal_path_for(path).stat().st_size
            if kind == "eio":
                fs.spec.fail_write_at_call = fs.writes + 1
            elif kind == "enospc":
                fs.spec.enospc_at_byte = wal_size + 8
            else:
                fs.spec.torn_write_at_call = fs.writes + 1
            with pytest.raises(PersistenceError):
                database.execute("INSERT INTO t VALUES (4, 'd')")
            assert fs.faults_fired >= 1
            # live state rolled back with the WAL group: statement atomicity
            assert row_values(database) == SEED_ROWS
            # the store is fully usable once the fault clears
            fs.heal()
            database.execute("INSERT INTO t VALUES (5, 'e')")
            database.close()
        reopened = Database(path=path)
        assert row_values(reopened) == SEED_ROWS + [(5, "e")]
        reopened.persistence.close(checkpoint=False)

    def test_short_write_is_caught_by_checksum_on_reopen(self, tmp_path):
        """A lying disk acknowledges half a record; the crc catches it."""
        path = tmp_path / "t.db"
        fs = FaultyFS(DiskFaultSpec(match=".wal"))
        with injected(fs):
            database = seeded_database(path)
            fs.spec.short_write_at_call = fs.writes + 1
            database.execute("INSERT INTO t VALUES (4, 'd')")  # disk lied
        assert fs.faults_fired == 1
        # simulate the crash that makes the lie matter (a clean close would
        # checkpoint and rewrite the image from intact memory)
        crash = tmp_path / "crash.db"
        if path.exists():  # no checkpoint ran: state may live in the WAL only
            shutil.copy(path, crash)
        shutil.copy(wal_path_for(path), wal_path_for(crash))
        database.persistence.close(checkpoint=False)
        reopened = Database(path=crash)
        # the half-written record is a torn tail: detected and discarded,
        # never decoded into garbage rows
        assert reopened.persistence.last_recovery.wal_torn_tail
        assert row_values(reopened) == SEED_ROWS
        reopened.execute("INSERT INTO t VALUES (9, 'z')")  # log still usable
        reopened.persistence.close(checkpoint=False)

    def test_fsync_failure_seals_store_but_loses_nothing_durable(self, tmp_path):
        path = tmp_path / "t.db"
        database = seeded_database(path)
        fs = FaultyFS(DiskFaultSpec(match=".wal", fail_fsync_at_call=1))
        with injected(fs):
            # CHECKPOINT starts with a WAL flush -> fsync -> injected EIO
            with pytest.raises(PersistenceError, match="fsync|sealed"):
                database.execute("CHECKPOINT")
            assert database.persistence.wal.failed is not None
            with pytest.raises(PersistenceError, match="sealed"):
                database.execute("INSERT INTO t VALUES (4, 'd')")
        database.persistence.close(checkpoint=False)
        # reopen re-reads what actually hit the disk: every acknowledged
        # record is still there
        reopened = Database(path=path)
        assert row_values(reopened) == SEED_ROWS
        reopened.persistence.close(checkpoint=False)


# --------------------------------------------------------------------------- #
# store level: checkpoint image + swap + WAL reset sites
# --------------------------------------------------------------------------- #
class TestCheckpointFaults:
    @pytest.mark.parametrize("spec", [
        DiskFaultSpec(match=".tmp", fail_write_at_call=1),
        DiskFaultSpec(match=".tmp", enospc_at_byte=64),
        DiskFaultSpec(match=".tmp", torn_write_at_call=1),
        DiskFaultSpec(match=".tmp", fail_fsync_at_call=1),
    ], ids=["eio", "enospc", "torn", "fsync"])
    def test_failed_image_write_is_retryable(self, tmp_path, spec):
        path = tmp_path / "t.db"
        database = seeded_database(path)
        fs = FaultyFS(spec)
        with injected(fs):
            with pytest.raises(PersistenceError, match="retryable"):
                database.execute("CHECKPOINT")
        assert fs.faults_fired >= 1
        # the half-written temp image never survives a failed prepare
        assert not tmp_path_for(path).exists()
        # old image + WAL are intact; the checkpoint simply retries
        fs.heal()
        with injected(fs):
            stats = database.checkpoint()
        assert stats.rows == 3
        database.close()
        reopened = Database(path=path)
        assert row_values(reopened) == SEED_ROWS
        reopened.persistence.close(checkpoint=False)

    def test_failed_swap_is_retryable(self, tmp_path):
        path = tmp_path / "t.db"
        database = seeded_database(path)
        fs = FaultyFS(DiskFaultSpec(match=".tmp", fail_replace=True))
        with injected(fs):
            with pytest.raises(PersistenceError, match="swap"):
                database.execute("CHECKPOINT")
        assert not tmp_path_for(path).exists()
        fs.heal()
        with injected(fs):
            database.checkpoint()
        database.close()
        reopened = Database(path=path)
        assert row_values(reopened) == SEED_ROWS
        reopened.persistence.close(checkpoint=False)

    def test_failed_wal_reset_after_swap_seals_store(self, tmp_path):
        """Past the point of no return: new image installed, WAL reset dies.

        Appending to a WAL whose generation no longer matches the image
        would make recovery classify those records as already-checkpointed
        and drop them — the store must seal instead.  The on-disk state
        (new image + truncated WAL) is consistent, so reopening recovers
        everything the checkpoint captured.
        """
        path = tmp_path / "t.db"
        fs = FaultyFS(DiskFaultSpec(match=".wal"))
        with injected(fs):
            database = seeded_database(path)
            # the next .wal write is the reset's fresh header (the
            # pre-checkpoint flush writes nothing, it only fsyncs)
            fs.spec.fail_write_at_call = fs.writes + 1
            with pytest.raises(PersistenceError, match="reset"):
                database.execute("CHECKPOINT")
        assert database.persistence.closed
        with pytest.raises(PersistenceError, match="closed"):
            database.execute("INSERT INTO t VALUES (4, 'd')")
        reopened = Database(path=path)
        # the headerless truncated log is recreated at the image generation
        assert reopened.persistence.last_recovery.wal_torn_header
        assert row_values(reopened) == SEED_ROWS
        reopened.persistence.close(checkpoint=False)


# --------------------------------------------------------------------------- #
# store level: backup site
# --------------------------------------------------------------------------- #
class TestBackupFaults:
    @pytest.mark.parametrize("spec", [
        # the match token must not collide with the pytest tmp dir name
        # (which embeds this test's name, containing "backup")
        DiskFaultSpec(match="copyout", fail_write_at_call=1),
        DiskFaultSpec(match="copyout", enospc_at_byte=64),
        DiskFaultSpec(match="copyout", fail_fsync_at_call=1),
        DiskFaultSpec(match="copyout", fail_replace=True),
    ], ids=["eio", "enospc", "fsync", "replace"])
    def test_failed_backup_leaves_live_store_untouched(self, tmp_path, spec):
        path = tmp_path / "t.db"
        target = tmp_path / "copyout.db"
        database = seeded_database(path)
        generation_before = database.persistence.generation
        fs = FaultyFS(spec)
        with injected(fs):
            with pytest.raises(PersistenceError):
                database.execute(f"BACKUP TO '{target}'")
        # cleanup convention: no half-written target, no stray temp file
        assert not target.exists()
        assert not tmp_path_for(target).exists()
        # the live store never noticed
        assert database.persistence.generation == generation_before
        assert row_values(database) == SEED_ROWS
        fs.heal()
        with injected(fs):
            database.execute(f"BACKUP TO '{target}'")
        database.close()
        restored = Database(path=target)
        assert row_values(restored) == SEED_ROWS
        restored.persistence.close(checkpoint=False)


# --------------------------------------------------------------------------- #
# bit flips: written corrupt, read corrupt
# --------------------------------------------------------------------------- #
class TestBitFlips:
    def test_bit_flip_on_image_write_is_detected_on_reopen(self, tmp_path):
        """The disk flips a byte inside a segment as the image is written;
        the segment checksum (computed from intact memory) convicts it."""
        path = tmp_path / "t.db"
        database = seeded_database(path)
        # offset 20 lands inside the first segment (the header is 16 bytes)
        fs = FaultyFS(DiskFaultSpec(match=".tmp", corrupt_at_byte=20))
        with injected(fs):
            database.close()  # closing checkpoint writes the corrupt image
        assert fs.faults_fired == 1
        with pytest.raises(CorruptionError, match="checksum") as info:
            Database(path=path)
        assert info.value.table == "t"
        assert info.value.row_range is not None
        assert info.value.offset is not None
        # salvage mode contains the same damage instead of failing the open
        salvaged = Database(path=path, salvage=True)
        assert salvaged.persistence.last_recovery.quarantined_segments == 1
        with pytest.raises(CorruptionError, match="quarantined"):
            salvaged.execute("SELECT * FROM t")
        salvaged.persistence.close(checkpoint=False)

    def test_bit_rot_on_read_is_detected_at_open(self, tmp_path):
        path = tmp_path / "t.db"
        seeded_database(path).close()
        fs = FaultyFS(DiskFaultSpec(match="t.db", corrupt_read_at_byte=20))
        with injected(fs):
            with pytest.raises(CorruptionError, match="checksum"):
                Database(path=path)
        # the rot was transient (a bad cable, not bad media): the file on
        # disk is intact and opens cleanly without the fault
        reopened = Database(path=path)
        assert row_values(reopened) == SEED_ROWS
        reopened.persistence.close(checkpoint=False)

    def test_read_eio_at_open_is_structured(self, tmp_path):
        path = tmp_path / "t.db"
        seeded_database(path).close()
        fs = FaultyFS(DiskFaultSpec(match="t.db", fail_read_at_call=1))
        with injected(fs):
            with pytest.raises(PersistenceError, match="read failed"):
                Database(path=path)
        reopened = Database(path=path)
        assert row_values(reopened) == SEED_ROWS
        reopened.persistence.close(checkpoint=False)


# --------------------------------------------------------------------------- #
# torn-tail property: truncation at EVERY byte offset
# --------------------------------------------------------------------------- #
class TestTornTailEveryByte:
    def test_recovery_from_every_truncation_offset(self, tmp_path):
        """Chop the WAL at every single byte offset; recovery must always
        converge to a complete-statement prefix and stay appendable."""
        path = tmp_path / "full.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("CHECKPOINT")  # the image owns the (empty) table
        database.execute("INSERT INTO t VALUES (1)")
        database.execute("INSERT INTO t VALUES (2), (3)")
        database.execute("DELETE FROM t WHERE i = 1")
        database.persistence.close(checkpoint=False)  # keep the WAL populated

        wal_bytes = wal_path_for(path).read_bytes()
        assert len(wal_bytes) > HEADER_SIZE

        for cut in range(len(wal_bytes) + 1):
            copy = tmp_path / "cut.db"
            if path.exists():
                shutil.copy(path, copy)
            wal_path_for(copy).write_bytes(wal_bytes[:cut])

            if cut < HEADER_SIZE:
                # shorter than a header: recovery recreates the log
                reopened = Database(path=copy)
                assert reopened.persistence.last_recovery.wal_torn_header
                expected_rows: list[tuple] = []
            else:
                # the intact-prefix oracle: whatever records survive the cut,
                # minus a trailing unterminated statement group
                contents = read_wal(wal_path_for(copy))
                records = list(contents.records)
                while records and records[-1].get("more"):
                    records.pop()
                expected: list[int] = []
                for record in records:
                    if record["op"] == "insert":
                        expected.extend(row[0] for row in record["rows"])
                    elif record["op"] == "delete":
                        expected = [value for keep, value in
                                    zip(_unpack(record), expected) if keep]
                expected_rows = [(value,) for value in sorted(expected)]
                reopened = Database(path=copy)
            assert reopened.execute(
                "SELECT * FROM t ORDER BY i").fetchall() == expected_rows, \
                f"diverged at truncation offset {cut}"
            # the recovered log accepts new appends at every offset
            reopened.execute("INSERT INTO t VALUES (99)")
            reopened.persistence.close(checkpoint=False)


def _unpack(record):
    from repro.sqldb.persist import wal as wal_mod

    return wal_mod.unpack_mask(record["keep"], int(record["count"]))
