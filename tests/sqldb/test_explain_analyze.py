"""EXPLAIN ANALYZE: instrumented execution with per-operator actuals.

The annotations must be *correct*, not just present: at ``workers=1`` the
recorded rows match the sequential whole-batch execution exactly, and at
``workers=4`` the per-morsel samples must merge to the same row totals with
the batch count equal to the number of morsels.
"""

import re

import pytest

from repro.sqldb import Database


def _make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (i INTEGER, v DOUBLE, s VARCHAR)")
    values = ", ".join(f"({i}, {i * 0.5}, 'k{i % 7}')" for i in range(400))
    db.execute(f"INSERT INTO t VALUES {values}")
    return db


def _analyze_lines(db, sql):
    result = db.execute(f"EXPLAIN ANALYZE {sql}")
    assert result.statement_type == "EXPLAIN ANALYZE"
    column = result.columns[0]
    assert column.name == "plan"
    return [str(value) for value in column.values]


_ACTUAL = re.compile(
    r"\(actual rows=(\d+) batches=(\d+) time=([0-9.]+)ms\)")


def _actuals(lines):
    """Map operator-line prefix -> (rows, batches) for annotated lines."""
    out = {}
    for line in lines:
        match = _ACTUAL.search(line)
        if match:
            prefix = line[:match.start()].strip()
            out[prefix] = (int(match.group(1)), int(match.group(2)))
    return out


class TestExplainAnalyzeSequential:
    def test_scan_filter_project_actuals(self):
        db = _make_db(workers=1)
        lines = _analyze_lines(db, "SELECT i, v FROM t WHERE v > 100")
        actuals = _actuals(lines)
        # 400 rows scanned; v > 100 keeps i in 201..399 => 199 rows
        by_op = {name.split(" ")[0]: counts
                 for name, counts in actuals.items()}
        assert by_op["Scan"] == (400, 1)
        assert by_op["Filter"] == (199, 1)
        assert by_op["Project"] == (199, 1)

    def test_total_time_footer(self):
        db = _make_db(workers=1)
        lines = _analyze_lines(db, "SELECT i FROM t")
        assert lines[-1].startswith("-- workers=1")
        assert "total_time=" in lines[-1]

    def test_aggregate_actual_rows(self):
        db = _make_db(workers=1)
        lines = _analyze_lines(
            db, "SELECT s, COUNT(*) FROM t GROUP BY s")
        actuals = _actuals(lines)
        agg = next(counts for name, counts in actuals.items()
                   if name.startswith("HashAggregate"))
        assert agg == (7, 1)  # 7 groups, one sequential batch

    def test_time_is_nonnegative(self):
        db = _make_db(workers=1)
        lines = _analyze_lines(db, "SELECT i FROM t WHERE v > 0")
        for line in lines:
            match = _ACTUAL.search(line)
            if match:
                assert float(match.group(3)) >= 0.0


class TestExplainAnalyzeParallel:
    def test_morsel_samples_sum_to_sequential_rows(self):
        # force 10 morsels of 40 rows
        db = _make_db(workers=4, morsel_rows=40, parallel_threshold=1)
        lines = _analyze_lines(db, "SELECT i, v FROM t WHERE v > 100")
        actuals = _actuals(lines)
        by_op = {name.split(" ")[0]: counts
                 for name, counts in actuals.items()}
        # row totals identical to sequential; batches = morsel count
        assert by_op["Scan"] == (400, 10)
        assert by_op["Filter"] == (199, 10)
        assert by_op["Project"] == (199, 10)

    def test_parallel_aggregate_merges_morsel_batches(self):
        db = _make_db(workers=4, morsel_rows=40, parallel_threshold=1)
        lines = _analyze_lines(
            db, "SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s")
        actuals = _actuals(lines)
        agg = next(counts for name, counts in actuals.items()
                   if name.startswith("HashAggregate"))
        assert agg[0] == 7       # group count unchanged by parallelism
        assert agg[1] == 10      # one partial state per morsel

    def test_analyze_result_rows_match_plain_select(self):
        db = _make_db(workers=4, morsel_rows=40, parallel_threshold=1)
        plain = db.execute("SELECT COUNT(*) FROM t WHERE v > 100")
        assert list(plain.rows()) == [(199,)]
        # running EXPLAIN ANALYZE must not disturb later executions
        _analyze_lines(db, "SELECT COUNT(*) FROM t WHERE v > 100")
        again = db.execute("SELECT COUNT(*) FROM t WHERE v > 100")
        assert list(again.rows()) == [(199,)]


class TestExplainAnalyzeJoin:
    @pytest.fixture()
    def db(self):
        db = Database(workers=4, morsel_rows=40, parallel_threshold=1)
        db.execute("CREATE TABLE l (k INTEGER, v DOUBLE)")
        db.execute("CREATE TABLE r (k INTEGER, name VARCHAR)")
        db.execute("INSERT INTO l VALUES " +
                   ", ".join(f"({i % 5}, {i * 1.0})" for i in range(200)))
        db.execute("INSERT INTO r VALUES " +
                   ", ".join(f"({i}, 'n{i}')" for i in range(5)))
        return db

    def test_join_probe_rows_recorded(self, db):
        lines = _analyze_lines(
            db, "SELECT l.v, r.name FROM l JOIN r ON l.k = r.k")
        actuals = _actuals(lines)
        join = next(counts for name, counts in actuals.items()
                    if name.startswith("HashJoin"))
        assert join[0] == 200  # every probe row matches


class TestPlainExplainUnchanged:
    def test_plain_explain_has_no_actuals(self):
        db = _make_db(workers=1)
        result = db.execute("SELECT i FROM t")  # warm anything lazily
        assert result.row_count == 400
        explain = db.execute("EXPLAIN SELECT i FROM t WHERE v > 100")
        assert explain.statement_type == "EXPLAIN"
        for value in explain.columns[0].values:
            assert "actual" not in str(value)

    def test_plain_explain_still_does_not_execute(self):
        db = Database(workers=1)
        db.execute("CREATE TABLE q (x INTEGER)")
        db.execute("INSERT INTO q VALUES (1)")
        calls = {"n": 0}
        original = db.scheduler.map

        def counting_map(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        db.scheduler.map = counting_map
        db.execute("EXPLAIN SELECT x FROM q")
        assert calls["n"] == 0

    def test_analyze_still_usable_as_identifier(self):
        db = Database()
        db.execute("CREATE TABLE w (analyze INTEGER)")
        db.execute("INSERT INTO w VALUES (42)")
        result = db.execute("SELECT analyze FROM w")
        assert list(result.rows()) == [(42,)]
