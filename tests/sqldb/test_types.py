"""Unit tests for the SQL type system."""

import pytest

from repro.errors import TypeMismatchError
from repro.sqldb.types import (
    ColumnType,
    SQLType,
    coerce_value,
    common_type,
    infer_sql_type,
    parse_type_name,
)


class TestParseTypeName:
    def test_canonical_names(self):
        assert parse_type_name("INTEGER") is SQLType.INTEGER
        assert parse_type_name("DOUBLE") is SQLType.DOUBLE
        assert parse_type_name("STRING") is SQLType.STRING
        assert parse_type_name("BOOLEAN") is SQLType.BOOLEAN
        assert parse_type_name("BLOB") is SQLType.BLOB

    def test_aliases(self):
        assert parse_type_name("INT") is SQLType.INTEGER
        assert parse_type_name("varchar") is SQLType.STRING
        assert parse_type_name("TEXT") is SQLType.STRING
        assert parse_type_name("FLOAT") is SQLType.DOUBLE
        assert parse_type_name("bool") is SQLType.BOOLEAN
        assert parse_type_name("BIGINT") is SQLType.BIGINT

    def test_case_insensitive(self):
        assert parse_type_name("integer") is SQLType.INTEGER
        assert parse_type_name("Clob") is SQLType.STRING

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_type_name("GEOMETRY")


class TestTypePredicates:
    def test_numeric_flags(self):
        assert SQLType.INTEGER.is_numeric
        assert SQLType.DOUBLE.is_numeric
        assert not SQLType.STRING.is_numeric

    def test_integer_vs_floating(self):
        assert SQLType.BIGINT.is_integer
        assert not SQLType.BIGINT.is_floating
        assert SQLType.REAL.is_floating
        assert not SQLType.REAL.is_integer


class TestCoerceValue:
    def test_none_passes_through(self):
        for sql_type in SQLType:
            assert coerce_value(None, sql_type) is None

    def test_integer_coercions(self):
        assert coerce_value(5, SQLType.INTEGER) == 5
        assert coerce_value(5.0, SQLType.INTEGER) == 5
        assert coerce_value("7", SQLType.INTEGER) == 7
        assert coerce_value(True, SQLType.INTEGER) == 1

    def test_non_integral_float_to_integer_fails(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5.5, SQLType.INTEGER)

    def test_double_coercions(self):
        assert coerce_value(5, SQLType.DOUBLE) == 5.0
        assert isinstance(coerce_value(5, SQLType.DOUBLE), float)
        assert coerce_value("2.5", SQLType.DOUBLE) == 2.5

    def test_string_coercions(self):
        assert coerce_value(42, SQLType.STRING) == "42"
        assert coerce_value(b"abc", SQLType.STRING) == "abc"

    def test_boolean_coercions(self):
        assert coerce_value("true", SQLType.BOOLEAN) is True
        assert coerce_value("F", SQLType.BOOLEAN) is False
        assert coerce_value(1, SQLType.BOOLEAN) is True
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", SQLType.BOOLEAN)

    def test_blob_coercions(self):
        assert coerce_value("abc", SQLType.BLOB) == b"abc"
        assert coerce_value(bytearray(b"xy"), SQLType.BLOB) == b"xy"
        with pytest.raises(TypeMismatchError):
            coerce_value(12, SQLType.BLOB)

    def test_garbage_string_to_number_fails(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("not-a-number", SQLType.DOUBLE)


class TestInferSQLType:
    def test_inference(self):
        assert infer_sql_type(True) is SQLType.BOOLEAN
        assert infer_sql_type(3) is SQLType.INTEGER
        assert infer_sql_type(2**40) is SQLType.BIGINT
        assert infer_sql_type(1.5) is SQLType.DOUBLE
        assert infer_sql_type("x") is SQLType.STRING
        assert infer_sql_type(b"x") is SQLType.BLOB


class TestCommonType:
    def test_same_type(self):
        assert common_type(SQLType.INTEGER, SQLType.INTEGER) is SQLType.INTEGER

    def test_numeric_promotion(self):
        assert common_type(SQLType.INTEGER, SQLType.DOUBLE) is SQLType.DOUBLE
        assert common_type(SQLType.INTEGER, SQLType.BIGINT) is SQLType.BIGINT

    def test_string_absorbs(self):
        assert common_type(SQLType.STRING, SQLType.INTEGER) is SQLType.STRING

    def test_incompatible_types(self):
        with pytest.raises(TypeMismatchError):
            common_type(SQLType.BLOB, SQLType.BOOLEAN)


class TestColumnType:
    def test_str_rendering(self):
        assert str(ColumnType(SQLType.INTEGER)) == "INTEGER"
        assert str(ColumnType(SQLType.DOUBLE, nullable=False)) == "DOUBLE NOT NULL"
