"""PREPARE / EXECUTE / DEALLOCATE, the plan cache, and the result cache.

The cache-correctness guard lives here: every mutation class (DML, DDL,
full-table DELETE, UDF redefinition, post-recovery open) must invalidate
whatever it makes stale, and a cached plan must never read a dropped or
re-created table's old data.
"""

import pytest

from repro.errors import CatalogError, ExecutionError, ParseError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.cache import (
    PlanCache,
    ResultCache,
    bind_parameters,
    estimate_result_bytes,
    normalize_sql,
    profile_statement,
)
from repro.sqldb.database import Database
from repro.sqldb.parser import parse_statement


@pytest.fixture()
def db():
    database = Database(result_cache_bytes=1 << 20)
    database.execute("CREATE TABLE t (a INTEGER, b DOUBLE, s STRING)")
    database.execute(
        "INSERT INTO t VALUES (1, 1.5, 'x'), (2, 2.5, 'y'), (3, 3.5, 'x')")
    return database


# --------------------------------------------------------------------------- #
# parsing
# --------------------------------------------------------------------------- #
class TestParsing:
    def test_prepare_parses_inner_statement(self):
        statement = parse_statement("PREPARE p AS SELECT a FROM t WHERE a > ?")
        assert isinstance(statement, ast.Prepare)
        assert statement.name == "p"
        assert isinstance(statement.statement, ast.Select)
        assert "SELECT" in statement.sql

    def test_parameters_are_numbered_in_order(self):
        statement = parse_statement(
            "PREPARE p AS SELECT ? + a, ? * b FROM t WHERE a BETWEEN ? AND ?")
        profile = profile_statement(statement.statement)
        assert profile.parameter_count == 4

    def test_parameter_numbering_resets_per_statement(self):
        first = parse_statement("SELECT ? + 1")
        second = parse_statement("SELECT ? + 2")
        assert profile_statement(first).parameter_count == 1
        assert profile_statement(second).parameter_count == 1

    def test_execute_with_and_without_args(self):
        bare = parse_statement("EXECUTE p")
        assert isinstance(bare, ast.ExecutePrepared)
        assert bare.args == []
        with_args = parse_statement("EXECUTE p (1, 'x', 2.5)")
        assert len(with_args.args) == 3

    def test_deallocate_forms(self):
        assert parse_statement("DEALLOCATE p").name == "p"
        assert parse_statement("DEALLOCATE ALL").name is None

    def test_prepare_of_prepare_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("PREPARE p AS PREPARE q AS SELECT 1")

    def test_normalize_sql_collapses_whitespace(self):
        assert normalize_sql("SELECT  a\n FROM   t ;") == \
            normalize_sql("SELECT a FROM t")


# --------------------------------------------------------------------------- #
# execution semantics
# --------------------------------------------------------------------------- #
class TestPreparedExecution:
    def test_prepare_execute_roundtrip(self, db):
        db.execute("PREPARE above AS SELECT a, b FROM t WHERE a > ?")
        result = db.execute("EXECUTE above (1)")
        assert list(result.rows()) == [(2, 2.5), (3, 3.5)]
        result = db.execute("EXECUTE above (2)")
        assert list(result.rows()) == [(3, 3.5)]

    def test_execute_prepared_api(self, db):
        db.prepare("above", "SELECT a FROM t WHERE a > ?")
        result = db.execute_prepared("above", [1])
        assert [row[0] for row in result.rows()] == [2, 3]

    def test_prepared_dml(self, db):
        db.execute("PREPARE add_row AS INSERT INTO t VALUES (?, ?, ?)")
        db.execute("EXECUTE add_row (9, 9.5, 'z')")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 4
        assert db.execute(
            "SELECT s FROM t WHERE a = 9").scalar() == "z"

    def test_arity_mismatch_is_an_error(self, db):
        db.execute("PREPARE p AS SELECT a FROM t WHERE a = ?")
        with pytest.raises(ExecutionError, match="argument"):
            db.execute("EXECUTE p")
        with pytest.raises(ExecutionError, match="argument"):
            db.execute("EXECUTE p (1, 2)")

    def test_unbound_placeholder_outside_prepare_is_an_error(self, db):
        with pytest.raises(ExecutionError, match="PREPARE"):
            db.execute("SELECT a FROM t WHERE a = ?")

    def test_execute_unknown_name_is_an_error(self, db):
        with pytest.raises(ExecutionError, match="no prepared statement"):
            db.execute("EXECUTE nope (1)")

    def test_deallocate_then_execute_errors(self, db):
        db.execute("PREPARE p AS SELECT 1")
        db.execute("DEALLOCATE p")
        with pytest.raises(ExecutionError):
            db.execute("EXECUTE p")
        with pytest.raises(ExecutionError):
            db.execute("DEALLOCATE p")

    def test_deallocate_all(self, db):
        db.execute("PREPARE p1 AS SELECT 1")
        db.execute("PREPARE p2 AS SELECT 2")
        db.execute("DEALLOCATE ALL")
        assert db.prepared_names() == []

    def test_reprepare_replaces(self, db):
        db.execute("PREPARE p AS SELECT 1")
        db.execute("PREPARE p AS SELECT 2")
        assert db.execute("EXECUTE p").scalar() == 2

    def test_prepared_survives_table_recreation(self, db):
        # templates re-bind tables at execution, so DDL on a referenced
        # table gives the *new* semantics rather than stale results
        db.execute("PREPARE cnt AS SELECT COUNT(*) FROM t WHERE a >= ?")
        assert db.execute("EXECUTE cnt (0)").scalar() == 3
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.execute("EXECUTE cnt (0)")
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (7)")
        assert db.execute("EXECUTE cnt (0)").scalar() == 1

    def test_bind_parameters_handles_case_expressions(self):
        statement = parse_statement(
            "SELECT CASE WHEN a > ? THEN ? ELSE ? END FROM t")
        bound = bind_parameters(statement, [1, 10, 20])
        literals = [expr for expr in _walk_literals(bound)]
        assert 10 in literals and 20 in literals


def _walk_literals(root):
    from repro.sqldb.cache import iter_nodes

    for node in iter_nodes(root):
        if isinstance(node, ast.Literal):
            yield node.value


# --------------------------------------------------------------------------- #
# plan cache
# --------------------------------------------------------------------------- #
class TestPlanCache:
    def test_repeated_select_hits(self, db):
        db.execute("SELECT SUM(b) FROM t")
        before = db.plan_cache.hits
        db.execute("SELECT  SUM(b)  FROM t")  # same after normalization
        assert db.plan_cache.hits == before + 1

    def test_only_selects_are_cached(self, db):
        db.execute("INSERT INTO t VALUES (4, 4.5, 'w')")
        assert db.plan_cache.get(normalize_sql(
            "INSERT INTO t VALUES (4, 4.5, 'w')")) is None

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        statement = parse_statement("SELECT 1")
        entry = lambda: __import__("repro.sqldb.cache", fromlist=["x"]) \
            .CachedPlan(statement, profile_statement(statement))
        cache.put("a", entry())
        cache.put("b", entry())
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", entry())
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.evictions == 1

    def test_drop_table_invalidates_cached_plan(self, db):
        db.execute("SELECT a FROM t")
        db.execute("SELECT a FROM t")
        assert db.plan_cache.hits >= 1
        db.execute("DROP TABLE t")
        # a cached plan must never read the dropped table
        with pytest.raises(CatalogError):
            db.execute("SELECT a FROM t")

    def test_recreated_table_gets_fresh_plan_and_data(self, db):
        db.execute("SELECT COUNT(*) FROM t")
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (42)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1
        assert db.execute("SELECT a FROM t").scalar() == 42

    def test_disabled_plan_cache(self):
        database = Database(plan_cache=0)
        database.execute("CREATE TABLE t (a INTEGER)")
        assert database.plan_cache is None
        assert database.execute("SELECT 1").scalar() == 1


# --------------------------------------------------------------------------- #
# result cache + invalidation guard
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_identical_select_hits(self, db):
        db.execute("SELECT SUM(b) FROM t")
        before = db.result_cache.hits
        assert db.execute("SELECT SUM(b) FROM t").scalar() == 7.5
        assert db.result_cache.hits == before + 1

    def test_insert_invalidates(self, db):
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3
        db.execute("INSERT INTO t VALUES (4, 4.5, 'w')")
        assert db.result_cache.invalidations >= 1
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 4

    def test_update_and_delete_invalidate(self, db):
        assert db.execute("SELECT SUM(a) FROM t").scalar() == 6
        db.execute("UPDATE t SET a = a + 10 WHERE a = 1")
        assert db.execute("SELECT SUM(a) FROM t").scalar() == 16
        db.execute("DELETE FROM t WHERE a = 11")
        assert db.execute("SELECT SUM(a) FROM t").scalar() == 5

    def test_full_table_delete_invalidates(self, db):
        # the dialect's TRUNCATE equivalent
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3
        db.execute("DELETE FROM t")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_udf_redefinition_invalidates(self, db):
        db.execute("CREATE FUNCTION boost(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x + 1 }")
        assert db.execute("SELECT SUM(boost(a)) FROM t").scalar() == 9
        db.execute("DROP FUNCTION boost")
        db.execute("CREATE FUNCTION boost(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x + 100 }")
        assert db.execute("SELECT SUM(boost(a)) FROM t").scalar() == 306

    def test_udf_results_not_cached_across_create_function_api(self, db):
        # the direct (non-SQL) registration path must also invalidate
        from repro.sqldb.schema import (
            FunctionParameter,
            FunctionSignature,
        )
        from repro.sqldb.types import SQLType

        def signature(body):
            return FunctionSignature(
                name="twice",
                parameters=[FunctionParameter("x", SQLType.INTEGER, 0)],
                return_type=SQLType.INTEGER, body=body)

        db.create_function(signature("return x * 2"))
        assert db.execute("SELECT SUM(twice(a)) FROM t").scalar() == 12
        db.create_function(signature("return x * 3"))
        assert db.execute("SELECT SUM(twice(a)) FROM t").scalar() == 18

    def test_table_functions_never_cached(self, db):
        db.execute("CREATE FUNCTION expand(n INTEGER) RETURNS TABLE(v INTEGER) "
                   "LANGUAGE PYTHON {\n"
                   "    if hasattr(n, '__len__'):\n"
                   "        n = int(numpy.asarray(n).ravel()[0])\n"
                   "    return {'v': numpy.arange(int(n))}\n}")
        before = db.result_cache.misses
        db.execute("SELECT * FROM expand(3)")
        db.execute("SELECT * FROM expand(3)")
        # table-function queries bypass the result cache entirely
        assert db.result_cache.misses == before
        assert db.result_cache.hits == 0

    def test_prepared_execution_uses_result_cache(self, db):
        db.prepare("sum_above", "SELECT SUM(b) FROM t WHERE a > ?")
        db.execute_prepared("sum_above", [1])
        before = db.result_cache.hits
        assert db.execute_prepared("sum_above", [1]).scalar() == 6.0
        assert db.result_cache.hits == before + 1
        # a different binding is a different cache entry
        assert db.execute_prepared("sum_above", [2]).scalar() == 3.5
        db.execute("INSERT INTO t VALUES (10, 10.0, 'q')")
        assert db.execute_prepared("sum_above", [1]).scalar() == 16.0

    def test_byte_budget_eviction(self):
        cache = ResultCache(max_bytes=1024)
        from repro.sqldb.result import QueryResult, ResultColumn
        from repro.sqldb.types import SQLType

        def result(rows):
            return QueryResult(
                columns=[ResultColumn("a", SQLType.INTEGER, list(range(rows)))],
                statement_type="SELECT")

        small = result(2)
        assert estimate_result_bytes(small) > 0
        cache.put("k1", small, frozenset({"t"}))
        assert cache.get("k1") is not None
        # an entry above a quarter of the budget is refused outright
        cache.put("huge", result(1000), frozenset({"t"}))
        assert cache.get("huge") is None

    def test_recovery_reopen_clears_caches(self, tmp_path):
        path = str(tmp_path / "db.repro")
        database = Database(path=path, result_cache_bytes=1 << 20)
        database.execute("CREATE TABLE t (a INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        assert database.execute("SELECT SUM(a) FROM t").scalar() == 3
        assert database.result_cache.used_bytes > 0 or \
            database.plan_cache.hits >= 0
        database.close()
        reopened = Database(path=path, result_cache_bytes=1 << 20)
        # recovery invalidates everything: counters start clean and the
        # recovered data is consulted, not a stale cache
        assert reopened.result_cache.used_bytes == 0
        assert reopened.execute("SELECT SUM(a) FROM t").scalar() == 3
        reopened.close()

    def test_cache_counters_shape(self, db):
        counters = db.cache_counters()
        for key in ("plan_cache_hits", "plan_cache_misses",
                    "plan_cache_evictions", "result_cache_hits",
                    "result_cache_misses", "result_cache_invalidations"):
            assert key in counters
