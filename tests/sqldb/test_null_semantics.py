"""Three-valued logic on the vectorised path.

Every test compares the NULL-aware vector kernels against the seed
row-at-a-time semantics: a plain-Python reference computed over the same
data (or the SQL-defined behaviour directly).  Covers the ISSUE checklist:
filters over NULLs, join keys containing NULL, COUNT(col) vs COUNT(*), and
dictionary-encoded GROUP BY equivalence.
"""

import numpy as np
import pytest

from repro.sqldb.database import Database
from repro.sqldb.vector import Vector


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (k INTEGER, v DOUBLE, name STRING, flag BOOLEAN)")
    table = database.storage.table("t")
    table.column("k").extend([1, 2, None, 1, 2, None, 3])
    table.column("v").extend([10.0, None, 30.0, 40.0, 5.0, None, 0.0])
    table.column("name").extend(["a", "b", None, "a", "", "b", None])
    table.column("flag").extend([True, None, False, True, None, False, True])
    return database


def rows(db, sql):
    return db.execute(sql).fetchall()


class TestNullFilters:
    def test_comparison_filter_excludes_nulls(self, db):
        # WHERE v > 5 : NULL comparisons are not true
        assert rows(db, "SELECT v FROM t WHERE v > 5") == [(10.0,), (30.0,), (40.0,)]

    def test_filter_runs_on_vector_path(self, db):
        """The predicate over a NULL-bearing column must stay typed."""
        batch_column = db.storage.table("t").column("v").scan_values()
        assert isinstance(batch_column, Vector)
        assert batch_column.data.dtype == np.float64

    def test_negated_filter_still_excludes_nulls(self, db):
        # NOT (v > 5) is false for v NULL as well
        assert rows(db, "SELECT v FROM t WHERE NOT (v > 5)") == [(5.0,), (0.0,)]

    def test_null_never_equal_to_null(self, db):
        assert rows(db, "SELECT k FROM t WHERE v = v") \
            == [(1,), (None,), (1,), (2,), (3,)]

    def test_is_null_and_is_not_null(self, db):
        assert rows(db, "SELECT k FROM t WHERE v IS NULL") == [(2,), (None,)]
        assert len(rows(db, "SELECT k FROM t WHERE v IS NOT NULL")) == 5

    def test_kleene_and_or(self, db):
        # flag AND v > 5: NULL AND false = false (row excluded either way),
        # NULL AND true = NULL (excluded); OR keeps rows with one true side.
        assert rows(db, "SELECT k FROM t WHERE flag AND v > 5") == [(1,), (1,)]
        assert rows(db, "SELECT k FROM t WHERE flag OR v > 5") \
            == [(1,), (None,), (1,), (3,)]

    def test_kleene_truth_table_projected(self, db):
        db.execute("CREATE TABLE b3 (x BOOLEAN, y BOOLEAN)")
        table = db.storage.table("b3")
        values = [True, False, None]
        for x in values:
            for y in values:
                table.insert_row([x, y])
        result = db.execute("SELECT x AND y, x OR y FROM b3").fetchall()

        def k_and(x, y):
            if x is False or y is False:
                return False
            if x is None or y is None:
                return None
            return True

        def k_or(x, y):
            if x is True or y is True:
                return True
            if x is None or y is None:
                return None
            return False

        expected = [(k_and(x, y), k_or(x, y)) for x in values for y in values]
        assert result == expected

    def test_kleene_with_boolean_literal_operand(self, db):
        # regression: a scalar bool operand must not poison the Kleene masks
        # (~False on a Python bool is the *integer* -1)
        got = rows(db, "SELECT (v > 15) OR FALSE FROM t")
        assert got == [(False,), (None,), (True,), (True,),
                       (False,), (None,), (False,)]
        got = rows(db, "SELECT (v > 15) AND TRUE FROM t")
        assert got == [(False,), (None,), (True,), (True,),
                       (False,), (None,), (False,)]
        got = rows(db, "SELECT (v > 15) AND NULL FROM t")
        assert got == [(False,), (None,), (None,), (None,),
                       (False,), (None,), (False,)]

    def test_between_with_nulls(self, db):
        assert rows(db, "SELECT v FROM t WHERE v BETWEEN 1 AND 30") \
            == [(10.0,), (30.0,), (5.0,)]

    def test_arithmetic_propagates_null(self, db):
        assert rows(db, "SELECT v + 1 FROM t") \
            == [(11.0,), (None,), (31.0,), (41.0,), (6.0,), (None,), (1.0,)]

    def test_division_by_zero_on_null_row_is_null_not_error(self, db):
        db.execute("CREATE TABLE dz (a DOUBLE, b DOUBLE)")
        table = db.storage.table("dz")
        table.insert_row([None, 0.0])
        table.insert_row([4.0, 2.0])
        # the NULL row's zero divisor must not raise: NULL / 0 is NULL
        assert rows(db, "SELECT a / b FROM dz") == [(None,), (2.0,)]

    def test_string_filter_with_nulls(self, db):
        assert rows(db, "SELECT k FROM t WHERE name = 'a'") == [(1,), (1,)]
        assert rows(db, "SELECT k FROM t WHERE name <> 'a'") == [(2,), (2,), (None,)]
        assert rows(db, "SELECT k FROM t WHERE name = ''") == [(2,)]

    def test_like_with_nulls_and_dictionary(self, db):
        assert rows(db, "SELECT k FROM t WHERE name LIKE 'a%'") == [(1,), (1,)]
        assert rows(db, "SELECT k FROM t WHERE name NOT LIKE 'a%'") \
            == [(2,), (2,), (None,)]


class TestNullJoinKeys:
    @pytest.fixture
    def join_db(self):
        database = Database()
        database.execute("CREATE TABLE l (k INTEGER, tag STRING)")
        database.execute("CREATE TABLE r (k INTEGER, y INTEGER)")
        left = database.storage.table("l")
        right = database.storage.table("r")
        left.column("k").extend([1, None, 2, 3])
        left.column("tag").extend(["l1", "l2", "l3", "l4"])
        right.column("k").extend([1, None, 2, 2])
        right.column("y").extend([10, 20, 30, 40])
        return database

    def test_null_keys_never_match(self, join_db):
        # NULL = NULL is not true: the None rows join to nothing
        assert rows(join_db, "SELECT l.tag, r.y FROM l JOIN r ON l.k = r.k") \
            == [("l1", 10), ("l3", 30), ("l3", 40)]

    def test_left_join_emits_null_key_rows_unmatched(self, join_db):
        assert rows(join_db,
                    "SELECT l.tag, r.y FROM l LEFT JOIN r ON l.k = r.k") \
            == [("l1", 10), ("l3", 30), ("l3", 40), ("l2", None), ("l4", None)]

    def test_string_join_with_null_keys(self):
        database = Database()
        database.execute("CREATE TABLE sl (s STRING)")
        database.execute("CREATE TABLE sr (s STRING, z INTEGER)")
        database.storage.table("sl").column("s").extend(["a", None, "b", ""])
        database.storage.table("sr").column("s").extend(["b", None, "a", "a", ""])
        database.storage.table("sr").column("z").extend([1, 2, 3, 4, 5])
        # dictionary-coded equi-join: NULLs drop, "" matches "" (not NULL)
        assert rows(database, "SELECT sl.s, sr.z FROM sl JOIN sr ON sl.s = sr.s") \
            == [("a", 3), ("a", 4), ("b", 1), ("", 5)]

    def test_mixed_int_float_join_beyond_float53_stays_exact(self):
        # regression: int64 keys beyond 2^53 must not collide with nearby
        # doubles through the float64 cast (Python equality is exact)
        database = Database()
        database.execute("CREATE TABLE bl (k BIGINT)")
        database.execute("CREATE TABLE br (k DOUBLE)")
        database.storage.table("bl").column("k").extend([2**53 + 1, 10])
        database.storage.table("br").column("k").extend([float(2**53), 10.0])
        assert rows(database, "SELECT bl.k FROM bl JOIN br ON bl.k = br.k") \
            == [(10,)]

    def test_join_matches_python_reference(self):
        rng = np.random.default_rng(11)
        database = Database()
        database.execute("CREATE TABLE jl (k INTEGER)")
        database.execute("CREATE TABLE jr (k INTEGER)")
        left_keys = [None if rng.random() < 0.2 else int(rng.integers(0, 20))
                     for _ in range(200)]
        right_keys = [None if rng.random() < 0.2 else int(rng.integers(0, 20))
                      for _ in range(150)]
        database.storage.table("jl").column("k").extend(left_keys)
        database.storage.table("jr").column("k").extend(right_keys)
        got = rows(database,
                   "SELECT jl.k, jr.k FROM jl JOIN jr ON jl.k = jr.k")
        expected = [
            (lk, rk)
            for lk in left_keys if lk is not None
            for rk in right_keys
            if rk is not None and lk == rk
        ]
        # same multiset and same (left-major, right row order) sequence
        assert got == [
            (lk, rk)
            for li, lk in enumerate(left_keys) if lk is not None
            for rk in right_keys if rk is not None and rk == lk
        ]
        assert sorted(got) == sorted(expected)


class TestCountSemantics:
    def test_count_col_vs_count_star(self, db):
        assert rows(db, "SELECT COUNT(*), COUNT(v), COUNT(name), COUNT(k) FROM t") \
            == [(7, 5, 5, 5)]

    def test_grouped_count_col_vs_star(self, db):
        got = rows(db, "SELECT k, COUNT(*), COUNT(v) FROM t GROUP BY k")
        assert got == [(1, 2, 2), (2, 2, 1), (None, 2, 1), (3, 1, 1)]

    def test_masked_aggregates_match_python_reference(self, db):
        table = db.storage.table("t").to_dict()
        present = [v for v in table["v"] if v is not None]
        got = rows(db, "SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t")[0]
        assert got == (sum(present), sum(present) / len(present),
                       min(present), max(present))

    def test_aggregate_over_all_null_group_is_null(self):
        database = Database()
        database.execute("CREATE TABLE g (k INTEGER, v DOUBLE)")
        table = database.storage.table("g")
        table.column("k").extend([1, 1, 2])
        table.column("v").extend([None, None, 3.0])
        assert rows(database,
                    "SELECT k, SUM(v), AVG(v), MIN(v), MAX(v), COUNT(v) "
                    "FROM g GROUP BY k") \
            == [(1, None, None, None, None, 0), (2, 3.0, 3.0, 3.0, 3.0, 1)]


class TestDictionaryGroupBy:
    def test_group_by_string_matches_seed_semantics(self, db):
        """Dictionary-coded GROUP BY: first-appearance order, NULLs as one
        group, '' distinct from NULL — exactly the per-row dict behaviour."""
        got = rows(db, "SELECT name, COUNT(*), SUM(v) FROM t GROUP BY name")
        # seed reference: python dict over rows in order
        table = db.storage.table("t").to_dict()
        reference = {}
        order = []
        for name, v in zip(table["name"], table["v"]):
            if name not in reference:
                reference[name] = [0, []]
                order.append(name)
            reference[name][0] += 1
            if v is not None:
                reference[name][1].append(v)
        expected = [
            (name, reference[name][0],
             sum(reference[name][1]) if reference[name][1] else None)
            for name in order
        ]
        assert got == expected

    def test_group_by_nullable_int_groups_nulls_together(self, db):
        got = rows(db, "SELECT k, COUNT(*) FROM t GROUP BY k")
        assert got == [(1, 2), (2, 2), (None, 2), (3, 1)]

    def test_string_min_max_on_codes(self, db):
        # dictionary is sorted, so MIN/MAX run on codes; NULLs excluded
        assert rows(db, "SELECT MIN(name), MAX(name) FROM t") == [("", "b")]
        got = rows(db, "SELECT k, MIN(name) FROM t GROUP BY k")
        assert got == [(1, "a"), (2, ""), (None, "b"), (3, None)]

    def test_group_by_string_large_random_equivalence(self):
        rng = np.random.default_rng(5)
        database = Database()
        database.execute("CREATE TABLE big (name STRING, v INTEGER)")
        table = database.storage.table("big")
        names = [None if rng.random() < 0.1
                 else f"g{int(rng.integers(0, 30))}" for _ in range(2000)]
        values = [None if rng.random() < 0.3 else int(rng.integers(0, 100))
                  for _ in range(2000)]
        table.column("name").extend(names)
        table.column("v").extend(values)
        got = rows(database,
                   "SELECT name, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v) "
                   "FROM big GROUP BY name")
        groups: dict = {}
        order = []
        for name, v in zip(names, values):
            if name not in groups:
                groups[name] = []
                order.append(name)
            groups[name].append(v)
        expected = []
        for name in order:
            vals = groups[name]
            present = [v for v in vals if v is not None]
            expected.append((
                name, len(vals), len(present),
                sum(present) if present else None,
                min(present) if present else None,
                max(present) if present else None,
            ))
        assert got == expected

    def test_order_by_string_column(self, db):
        got = rows(db, "SELECT name FROM t ORDER BY name")
        assert got == [("",), ("a",), ("a",), ("b",), ("b",), (None,), (None,)]


class TestDistinctAndCase:
    def test_distinct_over_nullable_strings(self, db):
        got = rows(db, "SELECT DISTINCT name FROM t")
        assert got == [("a",), ("b",), (None,), ("",)]

    def test_case_over_vector_column(self, db):
        got = rows(db, "SELECT CASE WHEN v > 5 THEN 'big' ELSE 'small' END "
                       "FROM t")
        # NULL > 5 is not true -> ELSE branch, matching the seed behaviour
        assert got == [("big",), ("small",), ("big",), ("big",),
                       ("small",), ("small",), ("small",)]
