"""Tests for the vectorised execution engine.

Covers the storage layer's cached numpy materialisation, the hash-join vs
nested fallback equivalence, hash aggregation vs the per-group path, and the
NULL-ordering guarantees of the vectorised ORDER BY.
"""

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.sqldb.database import Database
from repro.sqldb.schema import ColumnDef, TableSchema
from repro.sqldb.storage import Table
from repro.sqldb.types import ColumnType, SQLType


def make_table(name: str = "t") -> Table:
    return Table(TableSchema(name, [
        ColumnDef("i", ColumnType(SQLType.INTEGER)),
        ColumnDef("s", ColumnType(SQLType.STRING)),
    ]))


# --------------------------------------------------------------------------- #
# storage: cached to_numpy with dirty-bit invalidation
# --------------------------------------------------------------------------- #
class TestColumnArrayCache:
    def test_repeated_to_numpy_returns_cached_array(self):
        table = make_table()
        table.insert_rows([(1, "a"), (2, "b")])
        column = table.column("i")
        first = column.to_numpy()
        assert column.to_numpy() is first

    def test_cached_array_is_read_only(self):
        table = make_table()
        table.insert_row([1, "a"])
        array = table.column("i").to_numpy()
        with pytest.raises(ValueError):
            array[0] = 99

    def test_append_invalidates_cache(self):
        table = make_table()
        table.insert_row([1, "a"])
        column = table.column("i")
        first = column.to_numpy()
        column.append(2)
        second = column.to_numpy()
        assert second is not first
        assert second.tolist() == [1, 2]

    def test_extend_invalidates_cache_and_bulk_coerces(self):
        table = make_table()
        column = table.column("i")
        first = column.to_numpy()
        column.extend(["3", 4.0, True])
        assert column.values == [3, 4, 1]
        assert column.to_numpy() is not first
        with pytest.raises(TypeMismatchError):
            column.extend([1.5])

    def test_delete_update_truncate_invalidate_cache(self):
        table = make_table()
        table.insert_rows([(1, "a"), (2, "b"), (3, "c")])
        column = table.column("i")

        before = column.to_numpy()
        table.delete_rows([True, False, True])
        assert column.to_numpy() is not before
        assert column.to_numpy().tolist() == [1, 3]

        before = column.to_numpy()
        table.update_rows([True, False], {"i": [9, 9]})
        assert column.to_numpy() is not before
        assert column.to_numpy().tolist() == [9, 3]

        before = column.to_numpy()
        table.truncate()
        assert len(column.to_numpy()) == 0

    def test_delete_rows_count_with_list_and_array_masks(self):
        table = make_table()
        table.insert_rows([(1, "a"), (2, "b"), (3, "c"), (4, "d")])
        assert table.delete_rows([True, False, False, True]) == 2
        assert table.delete_rows(np.array([False, True])) == 1
        assert [row[0] for row in table.rows()] == [4]


# --------------------------------------------------------------------------- #
# joins: hash path vs nested fallback must agree
# --------------------------------------------------------------------------- #
def join_db() -> Database:
    database = Database()
    database.execute("CREATE TABLE l (k INTEGER, tag STRING)")
    database.execute("CREATE TABLE r (k INTEGER, score DOUBLE)")
    database.execute(
        "INSERT INTO l VALUES (1, 'one'), (2, 'two'), (2, 'dos'), "
        "(NULL, 'null-left'), (5, 'five')")
    database.execute(
        "INSERT INTO r VALUES (1, 10.0), (2, 20.0), (2, 21.0), "
        "(NULL, -1.0), (7, 70.0)")
    return database


# appending AND 1 = 1 defeats equi-detection, forcing the generic
# cross-product-mask path while keeping the condition's meaning
FALLBACK_SUFFIX = " AND 1 = 1"


class TestJoinEquivalence:
    def test_inner_join_with_duplicates_and_null_keys(self):
        db = join_db()
        base = "SELECT l.k, l.tag, r.score FROM l JOIN r ON l.k = r.k"
        hash_rows = db.execute(base).fetchall()
        fallback_rows = db.execute(base + FALLBACK_SUFFIX).fetchall()
        assert hash_rows == fallback_rows
        # 1x1 match + 2x2 duplicate matches; NULL keys never match
        assert len(hash_rows) == 5
        assert all(row[0] is not None for row in hash_rows)

    def test_left_join_unmatched_rows_agree(self):
        db = join_db()
        base = "SELECT l.tag, r.score FROM l LEFT JOIN r ON l.k = r.k"
        hash_rows = db.execute(base).fetchall()
        fallback_rows = db.execute(base + FALLBACK_SUFFIX).fetchall()
        assert hash_rows == fallback_rows
        unmatched = [row for row in hash_rows if row[1] is None]
        assert sorted(row[0] for row in unmatched) == ["five", "null-left"]

    def test_multi_key_and_of_equalities(self):
        db = Database()
        db.execute("CREATE TABLE a (x INTEGER, y INTEGER, v STRING)")
        db.execute("CREATE TABLE b (x INTEGER, y INTEGER, w STRING)")
        db.execute("INSERT INTO a VALUES (1, 1, 'a11'), (1, 2, 'a12'), (2, 1, 'a21')")
        db.execute("INSERT INTO b VALUES (1, 1, 'b11'), (1, 2, 'b12'), (3, 3, 'b33')")
        base = ("SELECT a.v, b.w FROM a JOIN b ON a.x = b.x AND a.y = b.y")
        assert db.execute(base).fetchall() == db.execute(base + FALLBACK_SUFFIX).fetchall()
        assert db.execute(base).fetchall() == [("a11", "b11"), ("a12", "b12")]

    def test_non_equi_condition_uses_vectorised_fallback(self):
        db = Database()
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y INTEGER)")
        db.execute("INSERT INTO a VALUES (1), (2), (3)")
        db.execute("INSERT INTO b VALUES (2), (3)")
        rows = db.execute("SELECT a.x, b.y FROM a JOIN b ON a.x < b.y").fetchall()
        expected = [(x, y) for x in (1, 2, 3) for y in (2, 3) if x < y]
        assert rows == expected

    def test_left_join_with_non_equi_condition(self):
        db = Database()
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y INTEGER)")
        db.execute("INSERT INTO a VALUES (1), (9)")
        db.execute("INSERT INTO b VALUES (5)")
        rows = db.execute("SELECT a.x, b.y FROM a LEFT JOIN b ON a.x < b.y").fetchall()
        assert rows == [(1, 5), (9, None)]

    def test_swapped_equi_sides_detected(self):
        db = join_db()
        forward = db.execute("SELECT l.tag, r.score FROM l JOIN r ON l.k = r.k").fetchall()
        swapped = db.execute("SELECT l.tag, r.score FROM l JOIN r ON r.k = l.k").fetchall()
        assert forward == swapped

    def test_string_keys_hash_join(self):
        db = Database()
        db.execute("CREATE TABLE a (name STRING)")
        db.execute("CREATE TABLE b (name STRING, v INTEGER)")
        db.execute("INSERT INTO a VALUES ('x'), ('y'), (NULL)")
        db.execute("INSERT INTO b VALUES ('y', 1), (NULL, 2)")
        base = "SELECT a.name, b.v FROM a JOIN b ON a.name = b.name"
        assert db.execute(base).fetchall() == [("y", 1)]
        assert db.execute(base).fetchall() == db.execute(base + FALLBACK_SUFFIX).fetchall()


# --------------------------------------------------------------------------- #
# aggregation: hash aggregation vs the per-group path must agree
# --------------------------------------------------------------------------- #
def agg_db() -> Database:
    database = Database()
    database.execute("CREATE TABLE m (k STRING, g INTEGER, v DOUBLE)")
    database.execute(
        "INSERT INTO m VALUES "
        "('a', 1, 1.0), ('b', 1, 2.0), ('a', 2, NULL), ('a', 1, 4.0), "
        "(NULL, 2, 5.0), ('b', NULL, 6.0), ('a', 2, 7.0)")
    return database


class TestAggregationEquivalence:
    def test_group_by_with_null_keys_and_null_values(self):
        db = agg_db()
        rows = db.execute(
            "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) "
            "FROM m GROUP BY k").fetchall()
        # first-appearance order: 'a', 'b', NULL
        assert rows == [
            ("a", 4, 3, 12.0, 4.0, 1.0, 7.0),
            ("b", 2, 2, 8.0, 4.0, 2.0, 6.0),
            (None, 1, 1, 5.0, 5.0, 5.0, 5.0),
        ]

    def test_numeric_key_vector_path_matches_per_group_path(self):
        db = Database()
        db.execute("CREATE TABLE n (g INTEGER, v DOUBLE)")
        for i in range(50):
            db.execute(f"INSERT INTO n VALUES ({i % 7}, {i * 0.5})")
        db.execute("CREATE FUNCTION ident(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x }")
        vectorised = db.execute(
            "SELECT g, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) "
            "FROM n GROUP BY g").fetchall()
        # a UDF in the select list routes the whole query to the per-group path
        per_group = db.execute(
            "SELECT ident(g), COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) "
            "FROM n GROUP BY g").fetchall()
        assert vectorised == per_group

    def test_null_key_object_path_matches_per_group_path(self):
        db = agg_db()
        db.execute("CREATE FUNCTION identd(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x }")
        hashed = db.execute(
            "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM m GROUP BY g").fetchall()
        per_group = db.execute(
            "SELECT identd(g), COUNT(*), SUM(v), MIN(v), MAX(v) FROM m GROUP BY g"
        ).fetchall()
        assert hashed == per_group

    def test_udf_aggregate_runs_once_per_group(self):
        db = Database()
        db.execute("CREATE TABLE t (g INTEGER, v DOUBLE)")
        db.execute("INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)")
        db.execute("CREATE FUNCTION total(v DOUBLE) RETURNS DOUBLE "
                   "LANGUAGE PYTHON { return float(numpy.sum(v)) }")
        rows = db.execute("SELECT g, total(v) FROM t GROUP BY g").fetchall()
        assert rows == [(1, 3.0), (2, 3.0), (3, 4.0)]
        assert db.udf_runtime.invocation_counts["total"] == 3

    def test_empty_groups_and_empty_input(self):
        db = agg_db()
        empty = db.execute("SELECT k, COUNT(*) FROM m WHERE v > 100 GROUP BY k")
        assert empty.fetchall() == []
        implicit = db.execute("SELECT COUNT(*), COUNT(v), SUM(v), AVG(v) "
                              "FROM m WHERE v > 100")
        assert implicit.fetchall() == [(0, 0, None, None)]

    def test_having_filters_groups(self):
        db = agg_db()
        rows = db.execute(
            "SELECT g, COUNT(*) FROM m GROUP BY g HAVING COUNT(*) > 2").fetchall()
        assert rows == [(1, 3), (2, 3)]

    def test_aggregate_arithmetic_and_group_key_expressions(self):
        db = agg_db()
        rows = db.execute(
            "SELECT g, SUM(v) / COUNT(v) AS manual_avg, AVG(v) "
            "FROM m WHERE v IS NOT NULL GROUP BY g ORDER BY g").fetchall()
        for _, manual_avg, avg in rows:
            assert manual_avg == pytest.approx(avg)

    def test_count_distinct_matches_python(self):
        db = agg_db()
        rows = db.execute("SELECT g, COUNT(DISTINCT k) FROM m GROUP BY g").fetchall()
        assert rows == [(1, 2), (2, 1), (None, 1)]

    def test_group_output_preserves_first_appearance_order(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER)")
        db.execute("INSERT INTO t VALUES (30), (10), (30), (20), (10)")
        rows = db.execute("SELECT k, COUNT(*) FROM t GROUP BY k").fetchall()
        assert rows == [(30, 2), (10, 2), (20, 1)]

    def test_median_and_stddev_still_python_tier(self):
        db = Database()
        db.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 1), (1, 2), (1, 3), (2, 5), (2, 7)")
        rows = db.execute("SELECT g, MEDIAN(v), STDDEV(v) FROM t GROUP BY g").fetchall()
        assert rows[0][0] == 1 and rows[0][1] == 2
        assert rows[0][2] == pytest.approx(1.0)
        assert rows[1][1] == 6.0


# --------------------------------------------------------------------------- #
# ORDER BY: NULLs sort last under both directions
# --------------------------------------------------------------------------- #
class TestOrderByNulls:
    @pytest.fixture()
    def db(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        database.execute(
            "INSERT INTO t VALUES (2, 'b'), (NULL, 'n'), (1, 'a'), (3, NULL)")
        return database

    def test_nulls_last_ascending(self, db):
        rows = [r[0] for r in db.execute("SELECT i FROM t ORDER BY i").rows()]
        assert rows == [1, 2, 3, None]

    def test_nulls_last_descending(self, db):
        rows = [r[0] for r in db.execute("SELECT i FROM t ORDER BY i DESC").rows()]
        assert rows == [3, 2, 1, None]

    def test_string_keys_nulls_last_both_directions(self, db):
        asc = [r[0] for r in db.execute("SELECT s FROM t ORDER BY s").rows()]
        desc = [r[0] for r in db.execute("SELECT s FROM t ORDER BY s DESC").rows()]
        assert asc == ["a", "b", "n", None]
        assert desc == ["n", "b", "a", None]

    def test_multi_key_lexsort_matches_python_sort(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        values = [(i % 3, (i * 7) % 5) for i in range(40)]
        for a, b in values:
            db.execute(f"INSERT INTO t VALUES ({a}, {b})")
        rows = db.execute("SELECT a, b FROM t ORDER BY a, b DESC").fetchall()
        assert rows == sorted(values, key=lambda t: (t[0], -t[1]))


# --------------------------------------------------------------------------- #
# DML through vectorised masks
# --------------------------------------------------------------------------- #
class TestVectorisedDML:
    def test_delete_with_vector_mask(self):
        db = Database()
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        result = db.execute("DELETE FROM t WHERE i >= 3")
        assert result.affected_rows == 2
        assert db.execute("SELECT i FROM t").fetchall() == [(1,), (2,)]

    def test_update_with_vector_mask_invalidates_scan_cache(self):
        db = Database()
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert db.execute("SELECT SUM(i) FROM t").scalar() == 6
        db.execute("UPDATE t SET i = i * 10 WHERE i > 1")
        assert db.execute("SELECT SUM(i) FROM t").scalar() == 51


# --------------------------------------------------------------------------- #
# review regressions: semantics the vector fast paths must not change
# --------------------------------------------------------------------------- #
class TestVectorPathSemantics:
    def test_ambiguous_join_column_still_raises(self):
        db = Database()
        db.execute("CREATE TABLE a (id INTEGER, x INTEGER)")
        db.execute("CREATE TABLE b (id INTEGER, x INTEGER)")
        db.execute("CREATE TABLE c (k INTEGER, x INTEGER)")
        db.execute("INSERT INTO a VALUES (1, 1)")
        db.execute("INSERT INTO b VALUES (1, 1)")
        db.execute("INSERT INTO c VALUES (99, 1)")
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError, match="ambiguous"):
            db.execute("SELECT c.k FROM a JOIN b ON a.id = b.id JOIN c ON x = a.id")

    def test_int64_sum_overflow_stays_exact(self):
        db = Database()
        db.execute("CREATE TABLE big (v BIGINT, g INTEGER)")
        for _ in range(3):
            db.execute("INSERT INTO big VALUES (4611686018427387904, 1)")
        assert db.execute("SELECT SUM(v) FROM big").scalar() == 3 * 4611686018427387904
        assert db.execute("SELECT g, SUM(v) FROM big GROUP BY g").fetchall() == \
            [(1, 3 * 4611686018427387904)]

    def test_case_over_vector_column_yields_python_values(self):
        import json

        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (-2)")
        result = db.execute("SELECT CASE WHEN x > 0 THEN x ELSE 0 END FROM t")
        assert all(type(v) is int for v in result.columns[0].values)
        assert json.dumps(list(result.rows())) == "[[1], [0]]"

    def test_mutating_udf_fails_consistently(self):
        from repro.errors import UDFError

        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("CREATE FUNCTION mut(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { x[0] = 9; return x }")
        with pytest.raises(UDFError):
            db.execute("SELECT mut(x) FROM t")
        with pytest.raises(UDFError):
            db.execute("SELECT mut(x) FROM t WHERE x > 1")
        assert db.execute("SELECT x FROM t ORDER BY x").fetchall() == [(1,), (2,), (3,)]

    def test_int64_arithmetic_overflow_stays_exact(self):
        db = Database()
        db.execute("CREATE TABLE b (a BIGINT)")
        db.execute("INSERT INTO b VALUES (4611686018427387904)")
        assert db.execute("SELECT a + a FROM b").scalar() == 2 ** 63
        assert db.execute("SELECT a * 4 FROM b").scalar() == 2 ** 64
        assert db.execute("SELECT 0 - a FROM b").scalar() == -(2 ** 62)
