"""Unit tests for the unified vector representation (values+mask+dictionary)."""

import numpy as np
import pytest

from repro.sqldb.storage import (
    Column,
    arrays_to_values,
    values_to_arrays,
)
from repro.sqldb.schema import ColumnDef
from repro.sqldb.types import ColumnType, SQLType
from repro.sqldb.vector import (
    NULL_CODE,
    Vector,
    combine_masks,
    remap_to_shared_dictionary,
    vector_parts,
)


def make_column(sql_type, values):
    column = Column(ColumnDef("c", ColumnType(sql_type)))
    column.extend(values)
    return column


class TestVectorConstruction:
    def test_numeric_null_free_has_no_mask(self):
        vector = Vector.from_values([1, 2, 3], SQLType.INTEGER)
        assert vector.mask is None
        assert vector.dictionary is None
        assert vector.data.dtype == np.int64
        assert vector.to_list() == [1, 2, 3]

    def test_numeric_with_nulls_builds_mask(self):
        vector = Vector.from_values([1, None, 3], SQLType.INTEGER)
        assert vector.mask.tolist() == [False, True, False]
        assert vector.data.dtype == np.int64  # stays typed, no object fallback
        assert vector.to_list() == [1, None, 3]

    def test_strings_are_dictionary_encoded(self):
        vector = Vector.from_values(["b", "a", "b", "a"], SQLType.STRING)
        assert vector.is_dict
        # np.unique sorts: code order is string order
        assert vector.dictionary.tolist() == ["a", "b"]
        assert vector.data.tolist() == [1, 0, 1, 0]
        assert vector.to_list() == ["b", "a", "b", "a"]

    def test_null_strings_carry_null_code_and_mask(self):
        vector = Vector.from_values(["x", None], SQLType.STRING)
        assert vector.data.tolist()[1] == NULL_CODE
        assert vector.mask.tolist() == [False, True]
        assert vector.to_list() == ["x", None]

    def test_empty_column(self):
        vector = Vector.from_values([], SQLType.STRING)
        assert len(vector) == 0
        assert vector.to_list() == []

    def test_all_null_strings(self):
        vector = Vector.from_values([None, None], SQLType.STRING)
        assert vector.to_list() == [None, None]
        assert vector.null_count() == 2


class TestVectorAccess:
    def test_getitem_returns_python_values(self):
        vector = Vector.from_values(["a", None, "b"], SQLType.STRING)
        assert vector[0] == "a"
        assert vector[1] is None
        assert vector[2] == "b"

    def test_iteration_matches_to_list(self):
        vector = Vector.from_values([1.5, None, 2.5], SQLType.DOUBLE)
        assert list(vector) == vector.to_list()

    def test_take_preserves_mask_and_dictionary(self):
        vector = Vector.from_values(["a", None, "b", "a"], SQLType.STRING)
        taken = vector.take([3, 1, 0])
        assert taken.dictionary is vector.dictionary
        assert taken.to_list() == ["a", None, "a"]

    def test_to_numpy_matches_udf_format(self):
        nullable = Vector.from_values([1, None], SQLType.INTEGER)
        array = nullable.to_numpy()
        assert array.dtype == object
        assert array.tolist() == [1, None]
        strings = Vector.from_values(["x", "y"], SQLType.STRING)
        assert strings.to_numpy().dtype == object
        assert strings.to_numpy().tolist() == ["x", "y"]
        plain = Vector.from_values([1, 2], SQLType.INTEGER)
        assert plain.to_numpy().dtype == np.int64
        assert plain.to_numpy() is plain.data  # zero-copy

    def test_to_numpy_is_read_only(self):
        vector = Vector.from_values([1, 2], SQLType.INTEGER)
        with pytest.raises(ValueError):
            vector.to_numpy()[0] = 99


class TestSharedDictionary:
    def test_remap_is_order_preserving(self):
        left = Vector.from_values(["b", "d", "b"], SQLType.STRING)
        right = Vector.from_values(["a", "d", "c"], SQLType.STRING)
        left_codes, right_codes = remap_to_shared_dictionary(left, right)
        # shared sorted space: a<b<c<d — code comparisons == string comparisons
        assert (left_codes[1] > right_codes[2]) == ("d" > "c")
        assert left_codes[1] == right_codes[1]  # both "d"
        assert left_codes[0] == left_codes[2]


class TestVectorParts:
    def test_parts_for_each_backing(self):
        array = np.array([1, 2, 3])
        assert vector_parts(array) == (array, None, None)
        vector = Vector.from_values(["a"], SQLType.STRING)
        data, mask, dictionary = vector_parts(vector)
        assert data is vector.data and dictionary is vector.dictionary
        assert vector_parts([1, 2]) is None
        assert vector_parts(np.array(["a"], dtype=object)) is None

    def test_combine_masks(self):
        a = np.array([True, False])
        b = np.array([False, True])
        assert combine_masks(None, None) is None
        assert combine_masks(a, None) is a
        assert combine_masks(a, b).tolist() == [True, True]


class TestColumnScanValues:
    def test_null_free_numeric_stays_plain_array(self):
        column = make_column(SQLType.INTEGER, [1, 2, 3])
        scanned = column.scan_values()
        assert isinstance(scanned, np.ndarray)
        assert scanned.dtype == np.int64

    def test_nullable_numeric_becomes_vector(self):
        column = make_column(SQLType.DOUBLE, [1.0, None])
        scanned = column.scan_values()
        assert isinstance(scanned, Vector)
        assert scanned.data.dtype == np.float64  # no object-array fallback

    def test_string_column_becomes_dictionary_vector(self):
        column = make_column(SQLType.STRING, ["x", "y", "x"])
        scanned = column.scan_values()
        assert isinstance(scanned, Vector)
        assert scanned.is_dict

    def test_scan_cache_invalidated_on_mutation(self):
        column = make_column(SQLType.STRING, ["x"])
        first = column.scan_values()
        assert column.scan_values() is first  # cached
        column.append("y")
        second = column.scan_values()
        assert second is not first
        assert second.to_list() == ["x", "y"]

    def test_scan_representation_follows_nulls(self):
        column = make_column(SQLType.INTEGER, [1, 2])
        assert isinstance(column.scan_values(), np.ndarray)
        column.append(None)
        assert isinstance(column.scan_values(), Vector)


class TestBufferPairRoundTrip:
    """The mask — not the placeholder — is the source of truth for NULLs."""

    CASES = [
        (SQLType.STRING, ["", None, "x", ""]),
        (SQLType.BLOB, [b"", None, b"y"]),
        (SQLType.INTEGER, [0, None, 5, 0]),
        (SQLType.BOOLEAN, [False, None, True, False]),
        (SQLType.DOUBLE, [0.0, None, 1.5]),
        (SQLType.BIGINT, [0, None, 2**40]),
    ]

    @pytest.mark.parametrize("sql_type,values", CASES)
    def test_sentinel_equal_values_round_trip(self, sql_type, values):
        """Values equal to the NULL placeholder survive the export/import."""
        data, mask = values_to_arrays(values, sql_type)
        assert arrays_to_values(data, mask) == values

    @pytest.mark.parametrize("sql_type,values", CASES)
    def test_vector_round_trip_preserves_sentinels(self, sql_type, values):
        if sql_type is SQLType.BLOB:
            pytest.skip("BLOB columns are not vectorised")
        vector = Vector.from_values(values, sql_type)
        assert vector.to_list() == values
        data, mask = vector.buffer_arrays()
        assert arrays_to_values(data, mask) == values

    def test_no_mask_when_no_nulls(self):
        data, mask = values_to_arrays(["", "x"], SQLType.STRING)
        assert mask is None
        assert arrays_to_values(data, mask) == ["", "x"]
