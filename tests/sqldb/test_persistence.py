"""Durable storage: single-file format, WAL, checkpointing, crash recovery.

The crash matrix required by the acceptance criteria — {clean close, kill
after WAL write, kill mid-checkpoint, truncated WAL tail} — simulates each
crash by copying the database file + WAL to a fresh path mid-stream (the
live process never gets to shut down cleanly) and reopening from the copy.
Every recovered state is compared against an in-memory reference database
that replayed the same committed statements.
"""

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ExecutionError, PersistenceError
from repro.netproto.columnar import decode_chunk
from repro.sqldb.database import Database
from repro.sqldb.persist import format as persist_format
from repro.sqldb.persist import read_wal, wal_path_for
from repro.sqldb.persist.recovery import apply_record, tmp_path_for

#: One WAL record per statement (CREATE TABLE = 1, every DML = 1), covering
#: NULLs, dictionary strings, floats, booleans, BIGINT and BLOB columns.
STATEMENTS = [
    "CREATE TABLE events (id INTEGER, name STRING, score DOUBLE, "
    "big BIGINT, flag BOOLEAN, payload BLOB)",
    "INSERT INTO events VALUES (1, 'alpha', 1.5, 9000000000, TRUE, 'blob-a')",
    "INSERT INTO events VALUES (2, NULL, NULL, NULL, NULL, NULL), "
    "(3, 'alpha', -0.25, -1, FALSE, 'blob-b'), "
    "(4, 'beta', 0.0, 0, TRUE, '')",
    "UPDATE events SET score = 99.5, name = 'gamma' WHERE id = 3",
    "DELETE FROM events WHERE id = 2",
    "INSERT INTO events VALUES (5, '', 2.25, 123, FALSE, 'blob-c')",
]

PROBES = [
    "SELECT * FROM events ORDER BY id",
    "SELECT name, COUNT(*), SUM(score) FROM events GROUP BY name ORDER BY name",
    "SELECT id FROM events WHERE name = 'alpha' ORDER BY id",
    "SELECT SUM(big), COUNT(flag) FROM events",
]


def reference_database(statements=STATEMENTS) -> Database:
    database = Database()
    for sql in statements:
        database.execute(sql)
    return database


def assert_matches_reference(database: Database, reference: Database) -> None:
    assert database.table_names() == reference.table_names()
    for name in reference.table_names():
        assert (database.storage.table(name).to_dict()
                == reference.storage.table(name).to_dict())
    for sql in PROBES:
        assert database.execute(sql).fetchall() == reference.execute(sql).fetchall()


def crash_copy(path: Path, target: Path) -> Path:
    """Simulate a crash: snapshot the db file + WAL as they are right now."""
    if path.exists():
        shutil.copy(path, target)
    wal = wal_path_for(path)
    if wal.exists():
        shutil.copy(wal, wal_path_for(target))
    return target


class TestCrashMatrix:
    def test_clean_close(self, tmp_path):
        path = tmp_path / "clean.db"
        database = Database(path=path)
        for sql in STATEMENTS:
            database.execute(sql)
        database.close()
        # a clean close checkpoints: the WAL is empty and the image is full
        assert read_wal(wal_path_for(path)).records == []
        reopened = Database(path=path)
        assert_matches_reference(reopened, reference_database())
        assert reopened.persistence.last_recovery.wal_records_replayed == 0
        reopened.close()

    def test_kill_after_wal_write(self, tmp_path):
        path = tmp_path / "live.db"
        database = Database(path=path)
        for sql in STATEMENTS:
            database.execute(sql)
        crashed = crash_copy(path, tmp_path / "crash.db")
        reopened = Database(path=crashed)
        assert_matches_reference(reopened, reference_database())
        report = reopened.persistence.last_recovery
        assert report.wal_records_replayed == len(STATEMENTS)
        assert not report.wal_torn_tail
        reopened.close()
        database.close()

    def test_kill_mid_checkpoint(self, tmp_path):
        path = tmp_path / "live.db"
        database = Database(path=path)
        for sql in STATEMENTS[:3]:
            database.execute(sql)
        database.checkpoint()
        for sql in STATEMENTS[3:]:
            database.execute(sql)
        crashed = crash_copy(path, tmp_path / "crash.db")
        # the next checkpoint died after writing half its temp image
        tmp_path_for(crashed).write_bytes(b"REPRODB1half-written-garbage")
        reopened = Database(path=crashed)
        assert_matches_reference(reopened, reference_database())
        report = reopened.persistence.last_recovery
        assert report.removed_tmp_file
        assert report.wal_records_replayed == len(STATEMENTS) - 3
        assert not tmp_path_for(crashed).exists()
        reopened.close()
        database.close()

    def test_truncated_wal_tail(self, tmp_path):
        path = tmp_path / "live.db"
        database = Database(path=path)
        for sql in STATEMENTS:
            database.execute(sql)
        crashed = crash_copy(path, tmp_path / "crash.db")
        # tear the last record: chop a few bytes off the end of the log
        wal = wal_path_for(crashed)
        data = wal.read_bytes()
        wal.write_bytes(data[:-3])
        reopened = Database(path=crashed)
        # the torn record is the final INSERT: recovered state must equal the
        # reference that committed everything *except* that statement
        assert_matches_reference(reopened, reference_database(STATEMENTS[:-1]))
        report = reopened.persistence.last_recovery
        assert report.wal_torn_tail
        assert report.wal_records_replayed == len(STATEMENTS) - 1
        # the tail was truncated away: appends resume from a sane log
        reopened.execute(
            "INSERT INTO events VALUES (6, 'post', 1.0, 1, TRUE, 'x')")
        recovered_again = Database(
            path=crash_copy(crashed, tmp_path / "crash2.db"))
        assert recovered_again.row_count("events") == reopened.row_count("events")
        recovered_again.close()
        reopened.close()
        database.close()

    def test_stale_wal_after_checkpoint_replace(self, tmp_path):
        """Crash between the atomic image replace and the WAL reset."""
        path = tmp_path / "live.db"
        database = Database(path=path)
        for sql in STATEMENTS:
            database.execute(sql)
        pre_checkpoint_wal = (tmp_path / "old.wal")
        shutil.copy(wal_path_for(path), pre_checkpoint_wal)
        database.checkpoint()
        database.close()
        # put the old-generation log back: its records are already inside
        # the image, so replaying them would double-apply every statement
        shutil.copy(pre_checkpoint_wal, wal_path_for(path))
        reopened = Database(path=path)
        assert reopened.persistence.last_recovery.wal_was_stale
        assert_matches_reference(reopened, reference_database())
        reopened.close()


class TestSegmentsShareWireCodec:
    def test_segment_decodes_through_netproto_decode_chunk(self, tmp_path):
        """Acceptance: on-disk segments are wire-format chunk blobs."""
        path = tmp_path / "seg.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        names = ["x", "y", None] * 8  # low cardinality: dictionary-encodes
        rows = ", ".join(
            f"({index}, {'NULL' if name is None else repr(name)})"
            for index, name in enumerate(names))
        database.execute(f"INSERT INTO t VALUES {rows}")
        database.close()

        data = path.read_bytes()
        footer = persist_format.read_footer(data, path)
        [table_meta] = footer["tables"]
        [segment] = table_meta["segments"]
        blob = data[segment["offset"]:segment["offset"] + segment["length"]]
        # decoded by the *shared* wire path, not a persistence-specific codec
        row_count, columns = decode_chunk(blob)
        assert row_count == len(names)
        assert [column.name for column in columns] == ["i", "s"]
        i_data, i_mask = columns[0].materialise()
        assert i_mask is None and i_data.tolist() == list(range(len(names)))
        s_vector, _ = columns[1].materialise()
        # low-cardinality strings keep their dictionary encoding on disk
        assert s_vector.is_dict
        assert s_vector.to_list() == names

    def test_multi_segment_round_trip(self, tmp_path):
        path = tmp_path / "multi.db"
        database = Database(path=path, segment_rows=16)
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        rows = ", ".join(f"({i}, 'name_{i % 7}')" for i in range(100))
        database.execute(f"INSERT INTO t VALUES {rows}")
        database.close()
        data = path.read_bytes()
        footer = persist_format.read_footer(data, path)
        [table_meta] = footer["tables"]
        assert len(table_meta["segments"]) == 7  # ceil(100 / 16)
        # every segment is independently decodable (dictionary inlined)
        for segment in table_meta["segments"]:
            blob = data[segment["offset"]:segment["offset"] + segment["length"]]
            rows_decoded, _ = decode_chunk(blob)
            assert rows_decoded == segment["rows"]
        reopened = Database(path=path)
        assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 100
        assert (reopened.execute("SELECT s FROM t WHERE i = 42").scalar()
                == "name_0")
        reopened.close()


class TestCheckpoint:
    def test_checkpoint_statement_truncates_wal(self, tmp_path):
        path = tmp_path / "cp.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        assert len(read_wal(wal_path_for(path)).records) == 2
        result = database.execute("CHECKPOINT")
        assert result.statement_type == "CHECKPOINT"
        row = dict(zip(result.column_names, result.fetchall()[0]))
        assert row["generation"] == 1
        assert row["rows"] == 2
        assert row["wal_records_truncated"] == 2
        assert read_wal(wal_path_for(path)).records == []
        assert read_wal(wal_path_for(path)).generation == 1
        database.close()

    def test_checkpoint_in_memory_raises(self):
        database = Database()
        with pytest.raises(ExecutionError, match="persistent"):
            database.execute("CHECKPOINT")

    def test_generation_increments_and_wal_resets(self, tmp_path):
        path = tmp_path / "gen.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        first = database.checkpoint()
        second = database.checkpoint()
        assert (first.generation, second.generation) == (1, 2)
        database.close()  # third checkpoint
        reopened = Database(path=path)
        assert reopened.persistence.generation == 3
        reopened.close()

    def test_writes_after_close_raise(self, tmp_path):
        path = tmp_path / "closed.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.close()
        with pytest.raises(PersistenceError, match="closed"):
            database.execute("INSERT INTO t VALUES (1)")

    def test_direct_storage_mutations_persist_via_checkpoint(self, tmp_path):
        # bulk loads that poke storage bypass the WAL by design; a checkpoint
        # captures them because it snapshots the live tables
        path = tmp_path / "bulk.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.storage.table("t").column("i").extend(range(1000))
        database.close()
        reopened = Database(path=path)
        assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 1000
        reopened.close()


class TestFunctionsPersist:
    def test_udf_survives_reopen_and_runs(self, tmp_path):
        path = tmp_path / "udf.db"
        database = Database(path=path)
        database.execute("CREATE TABLE n (i INTEGER)")
        database.execute("INSERT INTO n VALUES (1), (2), (3)")
        database.execute(
            "CREATE FUNCTION triple(column INTEGER) RETURNS INTEGER "
            "LANGUAGE PYTHON { return column * 3 }")
        crashed = crash_copy(path, tmp_path / "crash.db")
        reopened = Database(path=crashed)
        assert reopened.has_function("triple")
        assert (reopened.execute("SELECT triple(i) FROM n ORDER BY i").fetchall()
                == [(3,), (6,), (9,)])
        reopened.close()
        # ...and again from the checkpointed image (no WAL replay)
        rereopened = Database(path=crashed)
        assert rereopened.persistence.last_recovery.wal_records_replayed == 0
        assert rereopened.has_function("triple")
        rereopened.close()
        database.close()

    def test_drop_function_persists(self, tmp_path):
        path = tmp_path / "dropfn.db"
        database = Database(path=path)
        database.execute(
            "CREATE FUNCTION f(column INTEGER) RETURNS INTEGER "
            "LANGUAGE PYTHON { return column }")
        database.execute("DROP FUNCTION f")
        reopened = Database(path=crash_copy(path, tmp_path / "crash.db"))
        assert not reopened.has_function("f")
        reopened.close()
        database.close()


class TestDDLPersistence:
    def test_drop_table_and_idempotent_ddl(self, tmp_path):
        path = tmp_path / "ddl.db"
        database = Database(path=path)
        database.execute("CREATE TABLE IF NOT EXISTS t (i INTEGER)")
        database.execute("CREATE TABLE IF NOT EXISTS t (i INTEGER)")  # no-op
        database.execute("INSERT INTO t VALUES (1)")
        database.execute("CREATE TABLE gone (i INTEGER)")
        database.execute("DROP TABLE gone")
        database.execute("DROP TABLE IF EXISTS never_there")  # no-op, no record
        contents = read_wal(wal_path_for(path))
        assert [record["op"] for record in contents.records] == [
            "create_table", "insert", "create_table", "drop_table"]
        reopened = Database(path=crash_copy(path, tmp_path / "crash.db"))
        assert reopened.table_names() == ["t"]
        reopened.close()
        database.close()

    def test_create_table_as_select_persists(self, tmp_path):
        path = tmp_path / "ctas.db"
        database = Database(path=path)
        database.execute("CREATE TABLE src (i INTEGER, s STRING)")
        database.execute("INSERT INTO src VALUES (1, 'a'), (2, 'b'), (3, 'a')")
        database.execute(
            "CREATE TABLE dst AS SELECT s, COUNT(*) AS n FROM src GROUP BY s")
        reopened = Database(path=crash_copy(path, tmp_path / "crash.db"))
        assert (reopened.execute("SELECT * FROM dst ORDER BY s").fetchall()
                == [("a", 2), ("b", 1)])
        reopened.close()
        database.close()

    def test_copy_into_replays_without_the_csv(self, tmp_path):
        csv_file = tmp_path / "data.csv"
        csv_file.write_text("1,x\n2,y\n", encoding="utf-8")
        path = tmp_path / "copy.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        database.execute(f"COPY INTO t FROM '{csv_file}'")
        crashed = crash_copy(path, tmp_path / "crash.db")
        csv_file.unlink()  # the file is gone by the time recovery replays
        reopened = Database(path=crashed)
        assert (reopened.execute("SELECT * FROM t ORDER BY i").fetchall()
                == [(1, "x"), (2, "y")])
        reopened.close()
        database.close()


class TestReplayCacheConsistency:
    def test_recovery_replayed_update_invalidates_cached_vector(self):
        """A cached ``to_vector()`` must never serve pre-UPDATE data."""
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        database.execute("INSERT INTO t VALUES (1, 'old'), (2, 'keep')")
        table = database.storage.table("t")
        # warm every scan cache the way queries do
        before = table.column("s").to_vector()
        table.column("s").to_numpy()
        table.column("i").to_vector()
        assert before.to_list() == ["old", "keep"]
        apply_record(database, {
            "op": "update", "table": "t",
            "indices": [0], "count": 2,
            "columns": {"s": ["new"]},
        })
        assert table.column("s").to_vector().to_list() == ["new", "keep"]
        assert table.column("s").to_numpy().tolist() == ["new", "keep"]
        assert (database.execute("SELECT s FROM t ORDER BY i").fetchall()
                == [("new",), ("keep",)])

    def test_failed_update_leaves_no_partial_mutation(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        table = database.storage.table("t")
        table.column("i").to_vector()  # warm the cache
        with pytest.raises(ExecutionError):
            # 2.5 cannot be stored in an INTEGER column: the whole statement
            # must fail without touching row 1
            table.update_rows([True, True, False],
                              {"i": [10, 2.5, None]})
        assert table.column("i").values == [1, 2, 3]
        assert table.column("i").to_vector().data.tolist() == [1, 2, 3]

    def test_failed_extend_leaves_no_partial_mutation(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER)")
        column = database.storage.table("t").column("i")
        column.extend([1, 2])
        column.to_vector()
        with pytest.raises(ExecutionError):
            column.extend([3, "not-an-int", 5])
        assert column.values == [1, 2]
        assert column.to_vector().data.tolist() == [1, 2]

    def test_failed_insert_row_keeps_columns_aligned(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        table = database.storage.table("t")
        table.insert_row([1, "a"])
        with pytest.raises(ExecutionError):
            table.insert_row([2.5, "b"])  # bad INTEGER in column 0
        assert table.row_count == 1
        assert [len(column) for column in table.columns] == [1, 1]


class TestWalDetails:
    def test_replay_is_idempotent(self, tmp_path):
        """Replaying a WAL twice (crash during recovery) converges."""
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER)")
        schema_record = {
            "op": "create_table",
            "schema": {"name": "t", "columns": [["i", "INTEGER", True]]},
        }
        apply_record(database, schema_record)  # table exists: must not raise
        apply_record(database, {"op": "drop_table", "name": "ghost"})
        assert database.table_names() == ["t"]

    def test_unknown_record_op_raises(self):
        database = Database()
        with pytest.raises(PersistenceError, match="unknown WAL record"):
            apply_record(database, {"op": "explode"})

    def test_corrupt_segment_detected(self, tmp_path):
        path = tmp_path / "corrupt.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2), (3)")
        database.close()
        data = bytearray(path.read_bytes())
        footer = persist_format.read_footer(bytes(data), path)
        segment = footer["tables"][0]["segments"][0]
        data[segment["offset"] + 10] ^= 0xFF  # flip a byte inside the blob
        path.write_bytes(bytes(data))
        with pytest.raises(PersistenceError, match="checksum"):
            Database(path=path)

    def test_wal_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.db"
        wal_path_for(path).write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(PersistenceError, match="bad magic"):
            Database(path=path)

    def test_torn_wal_header_recovers(self, tmp_path):
        """Crash between a WAL reset's truncate and header write: the short
        file must not brick the database — the image is still authoritative."""
        path = tmp_path / "tornhdr.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        database.close()  # checkpoint: everything lives in the image
        for torn_bytes in (b"", b"REPRO"):
            wal_path_for(path).write_bytes(torn_bytes)
            reopened = Database(path=path)
            assert reopened.persistence.last_recovery.wal_torn_header
            assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 2
            # the recreated log is immediately usable
            reopened.execute("INSERT INTO t VALUES (3)")
            reopened.persistence.close(checkpoint=False)

    def test_failed_insert_statement_is_atomic_live_and_recovered(self, tmp_path):
        """A mid-statement coercion error must not leave rows that are
        visible live but absent from the WAL (state divergence)."""
        path = tmp_path / "atomic.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExecutionError):
            database.execute("INSERT INTO t VALUES (2), (3), ('boom')")
        live_rows = database.execute("SELECT i FROM t ORDER BY i").fetchall()
        assert live_rows == [(1,)]  # the failed statement fully rolled back
        recovered = Database(path=crash_copy(path, tmp_path / "crash.db"))
        assert (recovered.execute("SELECT i FROM t ORDER BY i").fetchall()
                == live_rows)
        recovered.close()
        database.close()

    def test_bulk_insert_logs_bounded_chunked_records(self, tmp_path):
        from repro.sqldb.executor import Executor

        path = tmp_path / "bulk.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        chunk = Executor._WAL_INSERT_CHUNK_ROWS
        table = database.storage.table("t")
        before = table.row_count
        table.column("i").extend(range(chunk * 2 + 5))
        database._executor._log_inserted(table, before)
        records = read_wal(wal_path_for(path)).records
        inserts = [r for r in records if r["op"] == "insert"]
        assert [len(r["rows"]) for r in inserts] == [chunk, chunk, 5]
        recovered = Database(path=crash_copy(path, tmp_path / "crash.db"))
        assert recovered.row_count("t") == chunk * 2 + 5
        recovered.close()
        database.close()

    def test_torn_chunk_group_discards_whole_statement(self, tmp_path, monkeypatch):
        """A bulk INSERT logged as several chunk records must replay
        all-or-nothing: losing the tail of the group discards the whole
        statement, never a prefix of it."""
        from repro.sqldb.executor import Executor

        monkeypatch.setattr(Executor, "_WAL_INSERT_CHUNK_ROWS", 4)
        path = tmp_path / "group.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (100)")
        values = ", ".join(f"({i})" for i in range(10))
        database.execute(f"INSERT INTO t VALUES {values}")  # 3 records: 4+4+2
        crashed = crash_copy(path, tmp_path / "crash.db")
        wal = wal_path_for(crashed)
        contents = read_wal(wal)
        assert [r.get("more", False) for r in contents.records if r["op"] == "insert"] \
            == [False, True, True, False]
        # crash persisted only the first two chunks of the bulk statement
        wal.write_bytes(wal.read_bytes()[:contents.record_offsets[-1]])
        reopened = Database(path=crashed)
        assert reopened.persistence.last_recovery.wal_torn_tail
        # the whole 10-row statement is gone; the earlier statement survives
        assert reopened.execute("SELECT i FROM t").fetchall() == [(100,)]
        # the incomplete group was truncated away: new appends replay cleanly
        reopened.execute("INSERT INTO t VALUES (200)")
        again = Database(path=crash_copy(crashed, tmp_path / "crash2.db"))
        assert again.execute("SELECT i FROM t ORDER BY i").fetchall() \
            == [(100,), (200,)]
        again.close()
        reopened.close()
        database.close()

    def test_failed_checkpoint_prepare_keeps_store_usable(self, tmp_path, monkeypatch):
        """ENOSPC (etc.) while writing the temp image is retryable: nothing
        durable changed, so the store must not seal itself."""
        from repro.sqldb.persist import checkpoint as checkpoint_mod

        path = tmp_path / "prep.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        real_write = checkpoint_mod.format_mod.write_database
        monkeypatch.setattr(checkpoint_mod.format_mod, "write_database",
                            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(PersistenceError, match="retryable"):
            database.checkpoint()
        assert not (tmp_path / "prep.db.tmp").exists()
        # still fully usable: appends and a retried checkpoint succeed
        database.execute("INSERT INTO t VALUES (1)")
        monkeypatch.setattr(checkpoint_mod.format_mod, "write_database", real_write)
        assert database.checkpoint().generation == 1
        database.close()

    def test_failed_checkpoint_commit_seals_store(self, tmp_path, monkeypatch):
        """A failure after the atomic image replace must seal the store:
        appending to the old-generation WAL would be silently discarded as
        stale by the next recovery."""
        path = tmp_path / "commit.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        monkeypatch.setattr(database.persistence.wal, "reset",
                            lambda generation: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            database.checkpoint()
        with pytest.raises(PersistenceError, match="closed"):
            database.execute("INSERT INTO t VALUES (2)")
        # on-disk state is still consistent: new image, stale WAL to reset
        reopened = Database(path=path)
        assert reopened.persistence.last_recovery.wal_was_stale
        assert reopened.execute("SELECT i FROM t").fetchall() == [(1,)]
        reopened.close()

    def test_wal_append_failure_rolls_back_applied_rows(self, tmp_path, monkeypatch):
        """If the WAL itself fails (e.g. ENOSPC) after rows were applied in
        memory, the statement must roll back — otherwise live state shows
        rows a crash-reopen would not recover."""
        path = tmp_path / "walboom.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        monkeypatch.setattr(
            database.persistence.wal, "append_group",
            lambda records: (_ for _ in ()).throw(OSError("disk full")))
        for sql in ("INSERT INTO t VALUES (2), (3)",
                    "UPDATE t SET i = 9 WHERE i = 1",
                    "DELETE FROM t WHERE i = 1",
                    "DELETE FROM t"):
            with pytest.raises(OSError):
                database.execute(sql)
        # every failed statement left memory untouched, matching the WAL
        assert database.execute("SELECT i FROM t").fetchall() == [(1,)]
        monkeypatch.undo()
        recovered = Database(path=crash_copy(path, tmp_path / "crash.db"))
        assert recovered.execute("SELECT i FROM t").fetchall() == [(1,)]
        recovered.close()
        database.close()

    def test_fsync_failure_truncates_unacknowledged_group(self, tmp_path, monkeypatch):
        """A failed batch fsync must truncate the group: the statement
        errored, so its records must not survive in the WAL where a later
        successful append would make them recoverable."""
        from repro.sqldb.persist import wal as wal_mod

        path = tmp_path / "fsyncboom.db"
        database = Database(path=path, wal_fsync_batch=1)  # sync every append
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        real_fsync = wal_mod.os.fsync
        monkeypatch.setattr(wal_mod.os, "fsync",
                            lambda fd: (_ for _ in ()).throw(OSError("EIO")))
        with pytest.raises(PersistenceError, match="rolled back"):
            database.execute("INSERT INTO t VALUES (2)")
        monkeypatch.setattr(wal_mod.os, "fsync", real_fsync)
        assert database.execute("SELECT i FROM t").fetchall() == [(1,)]
        database.execute("INSERT INTO t VALUES (3)")  # appends still work
        recovered = Database(path=crash_copy(path, tmp_path / "crash.db"))
        # the failed statement's record was truncated: live == recovered
        assert recovered.execute("SELECT i FROM t ORDER BY i").fetchall() \
            == [(1,), (3,)]
        recovered.close()
        database.close()

    def test_ctas_create_and_rows_recover_atomically(self, tmp_path, monkeypatch):
        """CTAS logs create_table + rows as one group: losing the group's
        tail must not recover an empty table."""
        from repro.sqldb.executor import Executor

        monkeypatch.setattr(Executor, "_WAL_INSERT_CHUNK_ROWS", 2)
        path = tmp_path / "ctas.db"
        database = Database(path=path)
        database.execute("CREATE TABLE src (i INTEGER)")
        database.execute("INSERT INTO src VALUES (1), (2), (3), (4), (5)")
        database.execute("CREATE TABLE dst AS SELECT i FROM src")
        crashed = crash_copy(path, tmp_path / "crash.db")
        wal = wal_path_for(crashed)
        contents = read_wal(wal)
        assert contents.records[-1]["op"] == "insert"  # dst group's last chunk
        # crash persisted the create_table record and 2 of 3 row chunks
        wal.write_bytes(wal.read_bytes()[:contents.record_offsets[-1]])
        reopened = Database(path=crashed)
        assert reopened.persistence.last_recovery.wal_torn_tail
        # the whole CTAS is gone — not an empty (or half-filled) dst
        assert "dst" not in reopened.table_names()
        assert reopened.row_count("src") == 5
        reopened.close()
        database.close()

    def test_failed_image_swap_keeps_store_usable(self, tmp_path, monkeypatch):
        """os.replace failing is pre-point-of-no-return: retryable."""
        import os as os_mod

        from repro.sqldb.persist import checkpoint as checkpoint_mod

        path = tmp_path / "swap.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        real_replace = os_mod.replace
        monkeypatch.setattr(checkpoint_mod.os, "replace",
                            lambda *a: (_ for _ in ()).throw(OSError("EACCES")))
        with pytest.raises(PersistenceError, match="swap"):
            database.checkpoint()
        monkeypatch.setattr(checkpoint_mod.os, "replace", real_replace)
        # still fully usable: appends and a retried checkpoint succeed
        database.execute("INSERT INTO t VALUES (2)")
        assert database.checkpoint().generation == 1
        database.close()
        reopened = Database(path=path)
        assert reopened.execute("SELECT i FROM t ORDER BY i").fetchall() \
            == [(1,), (2,)]
        reopened.close()

    def test_second_writer_on_same_file_is_rejected(self, tmp_path):
        pytest.importorskip("fcntl")
        path = tmp_path / "locked.db"
        first = Database(path=path)
        first.execute("CREATE TABLE t (i INTEGER)")
        with pytest.raises(PersistenceError, match="locked by another"):
            Database(path=path)
        first.close()
        # the lock is released on close: a new writer may open
        second = Database(path=path)
        assert second.table_names() == ["t"]
        second.close()

    def test_fsync_batching_still_flushes_every_record(self, tmp_path):
        # group commit defers fsync, not the OS-level write: a copied file
        # (process-crash simulation) always contains every appended record
        path = tmp_path / "batch.db"
        database = Database(path=path, wal_fsync_batch=1000)
        database.execute("CREATE TABLE t (i INTEGER)")
        for index in range(10):
            database.execute(f"INSERT INTO t VALUES ({index})")
        crashed = crash_copy(path, tmp_path / "crash.db")
        reopened = Database(path=crashed)
        assert reopened.execute("SELECT COUNT(*) FROM t").scalar() == 10
        reopened.close()
        database.close()
