"""Tests for QueryResult."""

import numpy as np
import pytest

from repro.sqldb.result import QueryResult, ResultColumn
from repro.sqldb.types import SQLType


@pytest.fixture()
def result() -> QueryResult:
    return QueryResult([
        ResultColumn("i", SQLType.INTEGER, [1, 2, 3]),
        ResultColumn("s", SQLType.STRING, ["a", None, "c"]),
    ])


class TestShape:
    def test_counts(self, result):
        assert result.row_count == 3
        assert result.column_count == 2
        assert len(result) == 3
        assert result.column_names == ["i", "s"]

    def test_empty_result(self):
        empty = QueryResult.empty(affected_rows=5, statement_type="INSERT")
        assert empty.row_count == 0
        assert empty.affected_rows == 5
        assert empty.statement_type == "INSERT"


class TestAccess:
    def test_rows_and_fetch(self, result):
        assert result.fetchall() == [(1, "a"), (2, None), (3, "c")]
        assert result.fetchone() == (1, "a")

    def test_column_access(self, result):
        assert result.column("I").values == [1, 2, 3]
        assert result["s"] == ["a", None, "c"]
        with pytest.raises(KeyError):
            result.column("missing")

    def test_scalar(self):
        single = QueryResult([ResultColumn("x", SQLType.DOUBLE, [4.2])])
        assert single.scalar() == 4.2

    def test_scalar_requires_1x1(self, result):
        with pytest.raises(ValueError):
            result.scalar()

    def test_to_dict_and_numpy(self, result):
        assert result.to_dict() == {"i": [1, 2, 3], "s": ["a", None, "c"]}
        arrays = result.to_numpy_dict()
        assert isinstance(arrays["i"], np.ndarray)
        assert arrays["i"].dtype == np.int64
        assert arrays["s"].dtype == object

    def test_from_dict_infers_types(self):
        built = QueryResult.from_dict({"a": [1, 2], "b": ["x", "y"], "c": [None, None]})
        assert built.column("a").sql_type is SQLType.INTEGER
        assert built.column("b").sql_type is SQLType.STRING
        assert built.column("c").sql_type is SQLType.STRING


class TestFormatting:
    def test_format_table_contains_values(self, result):
        text = result.format_table()
        assert "| i" in text
        assert "NULL" in text
        assert "| 3" in text

    def test_format_table_truncates_rows(self):
        big = QueryResult([ResultColumn("i", SQLType.INTEGER, list(range(100)))])
        text = big.format_table(max_rows=5)
        assert "100 rows total" in text

    def test_format_of_ddl_result(self):
        text = QueryResult.empty(statement_type="CREATE TABLE").format_table()
        assert "CREATE TABLE" in text
