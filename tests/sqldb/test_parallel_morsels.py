"""Morsel-boundary correctness: the parallel pipeline must match the
sequential engine exactly.

Every query shape that crosses morsel boundaries — joins (probe order,
LEFT-join unmatched rows), GROUP BY (first-appearance group order, partial
merge), DISTINCT, ORDER BY + LIMIT, NULL-heavy aggregates — is run over
morsel sizes {1, 7, 65536} x workers {1, 4} and compared row-for-row
against a single-morsel reference.  The data uses exactly-representable
values (integers and quarters), so even float partials merge exactly.
"""

import pytest

from repro.sqldb.database import Database
from repro.sqldb.parallel import MorselScheduler

ROWS = 211  # prime: morsel size 7 leaves a ragged final morsel


def populate(db: Database) -> None:
    db.execute(
        "CREATE TABLE t (k INTEGER, v DOUBLE, name STRING, nv DOUBLE)")
    table = db.storage.table("t")
    for i in range(ROWS):
        table.insert_row([
            i % 7,
            i * 0.25,
            f"cat_{i % 5}" if i % 11 else None,
            None if i % 3 == 0 else float(i % 13),
        ])
    db.execute("CREATE TABLE r (k INTEGER, w DOUBLE)")
    side = db.storage.table("r")
    for i in range(5):
        side.insert_row([i, i * 10.0])


QUERIES = [
    # scans / filters / projections
    "SELECT k, v FROM t WHERE v > 10",
    "SELECT k * 2 + 1, v / 2 FROM t WHERE k IN (1, 3, 5)",
    "SELECT UPPER(name) FROM t WHERE name LIKE 'cat_%'",
    "SELECT name || '!' FROM t WHERE k = 2 AND v > 40",
    "SELECT nv FROM t WHERE nv IS NULL",
    # joins (inner / left / cross), probe order and unmatched rows
    "SELECT t.k, r.w FROM t JOIN r ON t.k = r.k WHERE t.v < 20",
    "SELECT t.k, r.w FROM t LEFT JOIN r ON t.k = r.k WHERE t.v < 20",
    "SELECT COUNT(*) FROM t, r",
    "SELECT t.k, r.w FROM t JOIN r ON t.k < r.k WHERE t.v < 3",
    # GROUP BY: partial merge, group order, NULL keys, HAVING
    "SELECT k, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY k",
    "SELECT name, COUNT(*), SUM(nv) FROM t GROUP BY name",
    "SELECT k, name, COUNT(*) FROM t GROUP BY k, name",
    "SELECT k + 1, SUM(v) / COUNT(*) FROM t GROUP BY k HAVING COUNT(*) > 20",
    "SELECT name, MIN(name), MAX(name) FROM t GROUP BY name",
    # implicit aggregation and NULL-heavy aggregates
    "SELECT SUM(nv), COUNT(nv), AVG(nv), MIN(nv), MAX(nv) FROM t",
    "SELECT COUNT(*) FROM t WHERE nv IS NULL",
    # sequential-only aggregates still split their scans
    "SELECT k, MEDIAN(v) FROM t GROUP BY k",
    "SELECT k, GROUP_CONCAT(name) FROM t WHERE v < 6 GROUP BY k",
    "SELECT COUNT(DISTINCT name) FROM t",
    # DISTINCT / ORDER BY / LIMIT-OFFSET breakers
    "SELECT DISTINCT k, name FROM t",
    "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 7",
    "SELECT v FROM t ORDER BY k, v LIMIT 10 OFFSET 100",
    "SELECT v FROM t LIMIT 5 OFFSET 190",
    "SELECT k FROM t WHERE v > 1 LIMIT 4",
]


@pytest.fixture(scope="module")
def reference():
    db = Database()  # workers=1, one morsel: the pre-pipeline code path
    populate(db)
    return {sql: db.execute(sql).fetchall() for sql in QUERIES}


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("morsel_rows", [1, 7, 65536])
def test_results_match_sequential_engine(reference, workers, morsel_rows):
    db = Database(workers=workers, morsel_rows=morsel_rows,
                  parallel_threshold=0)
    populate(db)
    try:
        for sql in QUERIES:
            assert db.execute(sql).fetchall() == reference[sql], sql
    finally:
        db.close()


def test_streamed_pieces_match_sequential(reference):
    db = Database(workers=4, morsel_rows=16, parallel_threshold=0)
    populate(db)
    try:
        for sql in ["SELECT k, v FROM t WHERE v > 10",
                    "SELECT v FROM t LIMIT 5 OFFSET 190"]:
            stream = db.execute_stream(sql, max_rows=16)
            rows = [row for piece in stream for row in piece.fetchall()]
            assert rows == reference[sql], sql
    finally:
        db.close()


def test_streamed_empty_result_keeps_schema():
    db = Database(workers=2, morsel_rows=4, parallel_threshold=0)
    populate(db)
    try:
        pieces = list(db.execute_stream("SELECT k, v FROM t WHERE v < 0"))
        assert len(pieces) >= 1
        assert pieces[0].column_names == ["k", "v"]
        assert sum(piece.row_count for piece in pieces) == 0
    finally:
        db.close()


def test_aggregates_and_breakers_do_not_stream():
    db = Database(workers=2, morsel_rows=4, parallel_threshold=0)
    populate(db)
    try:
        for sql in ["SELECT k, COUNT(*) FROM t GROUP BY k",
                    "SELECT DISTINCT k FROM t",
                    "SELECT k FROM t ORDER BY v LIMIT 2"]:
            outcome = db.execute_stream(sql)
            # non-streamable plans come back fully materialised
            assert outcome.fetchall() == db.execute(sql).fetchall()
    finally:
        db.close()


def test_udf_queries_stay_sequential_and_correct():
    """UDF invocation counts are observable: parallel execution must not
    change how often a scalar UDF runs (once per whole column)."""
    db = Database(workers=4, morsel_rows=1, parallel_threshold=0)
    populate(db)
    try:
        db.execute(
            "CREATE FUNCTION double_it(x DOUBLE) RETURNS DOUBLE "
            "LANGUAGE PYTHON { return x * 2 }")
        db.udf_runtime.invocation_counts.clear()
        result = db.execute("SELECT double_it(v) FROM t WHERE k = 0")
        expected = [(i * 0.25 * 2,) for i in range(ROWS) if i % 7 == 0]
        assert result.fetchall() == expected
        assert db.udf_runtime.invocation_counts.get("double_it") == 1
    finally:
        db.close()


class TestSchedulerPolicy:
    def test_single_worker_never_splits(self):
        scheduler = MorselScheduler(1, morsel_rows=10, parallel_threshold=0)
        assert scheduler.split(1000) == [(0, 1000)]

    def test_tiny_inputs_never_pay_pool_overhead(self):
        scheduler = MorselScheduler(4, morsel_rows=10, parallel_threshold=500)
        assert scheduler.split(499) == [(0, 499)]
        assert len(scheduler.split(500)) == 50

    def test_split_covers_every_row_exactly_once(self):
        scheduler = MorselScheduler(4, morsel_rows=7, parallel_threshold=0)
        ranges = scheduler.split(211)
        assert ranges[0][0] == 0 and ranges[-1][1] == 211
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_map_preserves_order(self):
        scheduler = MorselScheduler(4, morsel_rows=1, parallel_threshold=0)
        try:
            assert scheduler.map(lambda x: x * x, range(50)) == \
                [x * x for x in range(50)]
        finally:
            scheduler.shutdown()
