"""Thread safety of the storage layer's cached scans.

Concurrent morsel workers (and multi-threaded embedders) race cache builds
against each other and against mutations; the column's cache lock must
guarantee that (a) concurrent builders observe consistent arrays and (b) a
mutation invalidates any build it raced with, so no stale cache survives.
"""

import threading

import numpy as np
import pytest

from repro.sqldb.schema import ColumnDef
from repro.sqldb.storage import Column
from repro.sqldb.types import ColumnType, SQLType
from repro.sqldb.vector import Vector


def make_column(values, sql_type=SQLType.INTEGER):
    column = Column(ColumnDef("c", ColumnType(sql_type)))
    column.extend(values)
    return column


def hammer(workers, fn):
    start = threading.Barrier(workers)
    errors = []

    def run():
        start.wait()
        try:
            for _ in range(200):
                fn()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


def test_concurrent_scans_share_one_consistent_cache():
    column = make_column(range(1000))

    seen = set()

    def scan():
        array = column.to_numpy()
        assert len(array) == 1000 and array[-1] == 999
        seen.add(id(array))

    hammer(4, scan)
    assert len(seen) == 1  # one cached build shared by every thread


def test_concurrent_build_and_invalidation_never_leaves_stale_cache():
    column = make_column(range(100))
    stop = threading.Event()

    def mutate():
        while not stop.is_set():
            column.append(1)

    writer = threading.Thread(target=mutate)
    writer.start()
    try:
        for _ in range(300):
            array = column.to_numpy()
            # the array must always be a consistent prefix snapshot
            assert list(array[:100]) == list(range(100))
    finally:
        stop.set()
        writer.join()
    # after the writer stops, a fresh scan sees every append
    assert len(column.to_numpy()) == len(column.values)


def test_concurrent_vector_scans_string_column():
    column = make_column([f"s_{i % 7}" if i % 5 else None
                          for i in range(500)], SQLType.STRING)

    def scan():
        vector = column.to_vector()
        assert isinstance(vector, Vector)
        assert len(vector) == 500
        assert vector[0] is None

    hammer(4, scan)


def test_scan_vector_range_slices_are_zero_copy_views():
    column = make_column(range(100))
    full = column.scan_values()
    part = column.scan_vector(10, 20)
    assert isinstance(part, np.ndarray)
    assert list(part) == list(range(10, 20))
    assert part.base is full  # a view, not a copy
    # the full range returns the cached object itself
    assert column.scan_vector(0, 100) is full


def test_scan_vector_slices_share_vector_buffers():
    column = make_column([f"s_{i % 3}" for i in range(30)], SQLType.STRING)
    full = column.scan_values()
    part = column.scan_vector(5, 25)
    assert isinstance(part, Vector)
    assert len(part) == 20
    assert part.dictionary is full.dictionary
    assert part.to_list() == full.to_list()[5:25]


def test_mark_dirty_invalidates_slices_source():
    column = make_column(range(10))
    before = column.scan_vector(0, 10)
    column.append(11)
    after = column.scan_vector(0, 11)
    assert len(before) == 10  # old snapshot unaffected
    assert len(after) == 11


@pytest.mark.parametrize("workers", [2, 8])
def test_parallel_queries_share_scan_caches(workers):
    from repro.sqldb.database import Database

    db = Database(workers=workers, morsel_rows=64, parallel_threshold=0)
    db.execute("CREATE TABLE t (k INTEGER, v DOUBLE)")
    table = db.storage.table("t")
    for i in range(1000):
        table.insert_row([i % 10, i * 0.25])
    try:
        expected = db.execute("SELECT k, SUM(v) FROM t GROUP BY k").fetchall()
        results = []

        def query():
            results.append(
                db.execute("SELECT k, SUM(v) FROM t GROUP BY k").fetchall())

        threads = [threading.Thread(target=query) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == expected for result in results)
    finally:
        db.close()
