"""Tests for CSV ingestion and export helpers."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb.csvio import (
    load_csv_directory_into_table,
    load_csv_into_table,
    write_csv,
)
from repro.sqldb.schema import ColumnDef, TableSchema
from repro.sqldb.storage import Table
from repro.sqldb.types import ColumnType, SQLType


def int_table(name="numbers") -> Table:
    return Table(TableSchema(name, [ColumnDef("i", ColumnType(SQLType.INTEGER))]))


def typed_table() -> Table:
    return Table(TableSchema("t", [
        ColumnDef("i", ColumnType(SQLType.INTEGER)),
        ColumnDef("x", ColumnType(SQLType.DOUBLE)),
        ColumnDef("s", ColumnType(SQLType.STRING)),
        ColumnDef("b", ColumnType(SQLType.BOOLEAN)),
    ]))


class TestLoadCSV:
    def test_single_column(self, tmp_path):
        path = tmp_path / "a.csv"
        path.write_text("1\n2\n3\n")
        table = int_table()
        assert load_csv_into_table(table, path) == 3
        assert table.column("i").values == [1, 2, 3]

    def test_typed_columns_and_nulls(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,2.5,hello,true\n2,,NULL,false\n")
        table = typed_table()
        assert load_csv_into_table(table, path) == 2
        assert table.column("x").values == [2.5, None]
        assert table.column("s").values == ["hello", None]
        assert table.column("b").values == [True, False]

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("i\n5\n6\n")
        table = int_table()
        assert load_csv_into_table(table, path, header=True) == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("1;1.0;a;true\n")
        assert load_csv_into_table(typed_table(), path, delimiter=";") == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("1\n\n2\n\n")
        assert load_csv_into_table(int_table(), path) == 2

    def test_missing_file_raises(self):
        with pytest.raises(ExecutionError):
            load_csv_into_table(int_table(), "/no/such/file.csv")

    def test_field_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2\n")
        with pytest.raises(ExecutionError):
            load_csv_into_table(int_table(), path)


class TestLoadDirectory:
    def test_loads_all_files_sorted(self, tmp_path):
        for index in range(3):
            (tmp_path / f"file_{index}.csv").write_text(f"{index}\n{index}\n")
        table = int_table()
        assert load_csv_directory_into_table(table, tmp_path) == 6
        assert table.column("i").values == [0, 0, 1, 1, 2, 2]

    def test_directory_must_exist(self, tmp_path):
        with pytest.raises(ExecutionError):
            load_csv_directory_into_table(int_table(), tmp_path / "missing")

    def test_pattern_filter(self, tmp_path):
        (tmp_path / "keep.csv").write_text("1\n")
        (tmp_path / "skip.txt").write_text("2\n")
        table = int_table()
        assert load_csv_directory_into_table(table, tmp_path) == 1


class TestWriteCSV:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.csv"
        written = write_csv(path, ["i"], [(1,), (2,), (None,)])
        assert written == 3
        table = int_table()
        load_csv_into_table(table, path)
        assert table.column("i").values == [1, 2, None]

    def test_header_written(self, tmp_path):
        path = tmp_path / "h.csv"
        write_csv(path, ["a", "b"], [(1, 2)], header=True)
        assert path.read_text().splitlines()[0] == "a,b"
