"""Tests for the function catalog and the sys.* meta tables (Listing 1)."""

import pytest

from repro.errors import CatalogError
from repro.sqldb.catalog import (
    FUNCTION_TYPE_SCALAR,
    FUNCTION_TYPE_TABLE,
    FunctionCatalog,
    LANGUAGE_CODES,
    make_signature,
)
from repro.sqldb.types import SQLType


@pytest.fixture()
def catalog() -> FunctionCatalog:
    return FunctionCatalog()


def scalar_signature(name="f", body="return x"):
    return make_signature(name, [("x", SQLType.INTEGER)],
                          return_type=SQLType.DOUBLE, body=body)


def table_signature(name="t"):
    return make_signature(name, [("path", SQLType.STRING)], returns_table=True,
                          return_columns=[("i", SQLType.INTEGER)], body="return [1]")


class TestRegistration:
    def test_register_and_lookup(self, catalog):
        catalog.register(scalar_signature())
        assert catalog.has("F")
        assert catalog.get("f").signature.return_type is SQLType.DOUBLE
        assert catalog.names() == ["f"]

    def test_duplicate_requires_replace(self, catalog):
        catalog.register(scalar_signature())
        with pytest.raises(CatalogError):
            catalog.register(scalar_signature())
        catalog.register(scalar_signature(body="return x * 2"), replace=True)
        assert "x * 2" in catalog.get("f").signature.body

    def test_replace_keeps_oid(self, catalog):
        first = catalog.register(scalar_signature())
        second = catalog.register(scalar_signature(body="pass"), replace=True)
        assert first.oid == second.oid

    def test_drop(self, catalog):
        catalog.register(scalar_signature())
        catalog.drop("f")
        assert not catalog.has("f")
        with pytest.raises(CatalogError):
            catalog.drop("f")
        catalog.drop("f", if_exists=True)

    def test_python_functions_filter(self, catalog):
        catalog.register(scalar_signature("py_fn"))
        sql_fn = make_signature("sql_fn", [("x", SQLType.INTEGER)],
                                return_type=SQLType.INTEGER, language="SQL")
        catalog.register(sql_fn)
        assert [f.name for f in catalog.python_functions()] == ["py_fn"]

    def test_len(self, catalog):
        assert len(catalog) == 0
        catalog.register(scalar_signature())
        assert len(catalog) == 1


class TestMetaTables:
    def test_sys_functions_rows_shape(self, catalog):
        catalog.register(scalar_signature("mean_deviation",
                                          body="return sum(x) / len(x)"))
        rows = catalog.sys_functions_rows()
        assert len(rows) == 1
        oid, name, func, mod, language, func_type = rows[0]
        assert name == "mean_deviation"
        assert func.startswith("{")
        assert func.rstrip().endswith("};")
        assert "return sum(x) / len(x)" in func
        assert mod == "pyapi"
        assert language == LANGUAGE_CODES["PYTHON"]
        assert func_type == FUNCTION_TYPE_SCALAR

    def test_sys_functions_table_function_type(self, catalog):
        catalog.register(table_signature("loader"))
        rows = catalog.sys_functions_rows()
        assert rows[0][5] == FUNCTION_TYPE_TABLE

    def test_sys_args_input_and_output(self, catalog):
        catalog.register(table_signature("loader"))
        rows = catalog.sys_args_rows()
        inputs = [r for r in rows if r[5] == 1]
        outputs = [r for r in rows if r[5] == 0]
        assert [r[2] for r in inputs] == ["path"]
        assert [r[2] for r in outputs] == ["i"]

    def test_sys_args_scalar_return_row(self, catalog):
        catalog.register(scalar_signature())
        rows = catalog.sys_args_rows()
        outputs = [r for r in rows if r[5] == 0]
        assert outputs[0][2] == "result"
        assert outputs[0][3] == "DOUBLE"

    def test_sys_args_func_id_matches_function(self, catalog):
        entry = catalog.register(scalar_signature())
        rows = catalog.sys_args_rows()
        assert all(r[1] == entry.oid for r in rows)


class TestSignatureRendering:
    def test_to_create_sql_scalar(self):
        signature = scalar_signature("mean_deviation", body="return 1.0")
        sql = signature.to_create_sql()
        assert sql.startswith("CREATE FUNCTION mean_deviation(x INTEGER)")
        assert "RETURNS DOUBLE LANGUAGE PYTHON {" in sql
        assert sql.rstrip().endswith("};")

    def test_to_create_sql_or_replace(self):
        assert scalar_signature().to_create_sql(or_replace=True).startswith(
            "CREATE OR REPLACE FUNCTION")

    def test_to_create_sql_table(self):
        sql = table_signature("loadNumbers").to_create_sql()
        assert "RETURNS TABLE(i INTEGER)" in sql

    def test_create_sql_round_trips_through_parser(self):
        from repro.sqldb.parser import parse_statement

        signature = scalar_signature("roundtrip", body="return x * 3")
        statement = parse_statement(signature.to_create_sql())
        assert statement.name == "roundtrip"
        assert "return x * 3" in statement.body
