"""Unit tests for schema objects and CREATE FUNCTION rendering."""

import pytest

from repro.sqldb.catalog import make_signature
from repro.sqldb.schema import ColumnDef, FunctionParameter, FunctionSignature, TableSchema
from repro.sqldb.types import ColumnType, SQLType


class TestColumnDef:
    def test_str_and_type_shortcut(self):
        column = ColumnDef("i", ColumnType(SQLType.INTEGER, nullable=False))
        assert column.sql_type is SQLType.INTEGER
        assert str(column) == "i INTEGER NOT NULL"


class TestFunctionSignature:
    def test_parameter_names_ordered(self):
        signature = FunctionSignature(
            name="f",
            parameters=[FunctionParameter("a", SQLType.INTEGER, 0),
                        FunctionParameter("b", SQLType.DOUBLE, 1)])
        assert signature.parameter_names == ["a", "b"]

    def test_describe_returns_scalar(self):
        signature = make_signature("f", [("x", SQLType.INTEGER)],
                                   return_type=SQLType.DOUBLE)
        assert signature.describe_returns() == "DOUBLE"

    def test_describe_returns_table(self):
        signature = make_signature(
            "t", [("p", SQLType.STRING)], returns_table=True,
            return_columns=[("i", SQLType.INTEGER), ("s", SQLType.STRING)])
        assert signature.describe_returns() == "TABLE(i INTEGER, s STRING)"

    def test_describe_returns_defaults_to_double(self):
        signature = make_signature("f", [])
        assert signature.describe_returns() == "DOUBLE"

    def test_to_create_sql_contains_body_verbatim(self):
        body = "x = 1\nreturn x\n"
        signature = make_signature("f", [("a", SQLType.INTEGER)],
                                   return_type=SQLType.INTEGER, body=body)
        sql = signature.to_create_sql()
        assert "x = 1\nreturn x\n" in sql

    def test_to_create_sql_adds_trailing_newline_to_body(self):
        signature = make_signature("f", [], return_type=SQLType.INTEGER,
                                   body="return 1")
        assert "return 1\n}" in signature.to_create_sql()


class TestTableSchema:
    def test_column_names(self):
        schema = TableSchema("t", [
            ColumnDef("a", ColumnType(SQLType.INTEGER)),
            ColumnDef("b", ColumnType(SQLType.STRING)),
        ])
        assert schema.column_names == ["a", "b"]
        assert len(schema) == 2

    def test_missing_column_raises_keyerror(self):
        schema = TableSchema("t", [ColumnDef("a", ColumnType(SQLType.INTEGER))])
        with pytest.raises(KeyError):
            schema.column_index("zzz")
