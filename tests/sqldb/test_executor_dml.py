"""Tests for DDL/DML execution: CREATE/DROP/INSERT/UPDATE/DELETE/COPY."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sqldb.database import Database


@pytest.fixture()
def db() -> Database:
    return Database()


class TestCreateDropTable:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        assert "t" in db.table_names()
        db.execute("DROP TABLE t")
        assert "t" not in db.table_names()

    def test_create_duplicate_raises(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (i INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS t (i INTEGER)")  # no error

    def test_drop_missing_raises_unless_if_exists(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE t")
        db.execute("DROP TABLE IF EXISTS t")

    def test_create_table_as_select(self, db):
        db.execute("CREATE TABLE src (i INTEGER)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        result = db.execute("CREATE TABLE dst AS SELECT i * 10 AS v FROM src WHERE i > 1")
        assert result.affected_rows == 2
        assert db.execute("SELECT * FROM dst ORDER BY v").fetchall() == [(20,), (30,)]


class TestInsert:
    def test_insert_values(self, db):
        db.execute("CREATE TABLE t (i INTEGER, s STRING)")
        result = db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert result.affected_rows == 2
        assert db.row_count("t") == 2

    def test_insert_with_column_list(self, db):
        db.execute("CREATE TABLE t (i INTEGER, s STRING)")
        db.execute("INSERT INTO t (s) VALUES ('only-s')")
        assert db.execute("SELECT i, s FROM t").fetchall() == [(None, "only-s")]

    def test_insert_expressions(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("INSERT INTO t VALUES (2 + 3), (ABS(0 - 7))")
        assert db.execute("SELECT i FROM t ORDER BY i").fetchall() == [(5,), (7,)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE a (i INTEGER)")
        db.execute("CREATE TABLE b (i INTEGER)")
        db.execute("INSERT INTO a VALUES (1), (2), (3)")
        result = db.execute("INSERT INTO b SELECT i FROM a WHERE i > 1")
        assert result.affected_rows == 2

    def test_insert_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (i INTEGER, s STRING)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1)")


class TestUpdateDelete:
    @pytest.fixture()
    def populated(self, db):
        db.execute("CREATE TABLE t (i INTEGER, s STRING)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        return db

    def test_update_with_where(self, populated):
        result = populated.execute("UPDATE t SET s = 'updated' WHERE i >= 2")
        assert result.affected_rows == 2
        assert populated.execute("SELECT s FROM t WHERE i = 3").scalar() == "updated"

    def test_update_expression_referencing_column(self, populated):
        populated.execute("UPDATE t SET i = i * 10")
        assert populated.execute("SELECT SUM(i) FROM t").scalar() == 60

    def test_delete_with_where(self, populated):
        result = populated.execute("DELETE FROM t WHERE i = 2")
        assert result.affected_rows == 1
        assert populated.row_count("t") == 2

    def test_delete_all(self, populated):
        result = populated.execute("DELETE FROM t")
        assert result.affected_rows == 3
        assert populated.row_count("t") == 0


class TestCopyInto:
    def test_copy_csv(self, db, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1\n2\n3\n")
        db.execute("CREATE TABLE numbers (i INTEGER)")
        result = db.execute(f"COPY INTO numbers FROM '{path}'")
        assert result.affected_rows == 3
        assert db.execute("SELECT SUM(i) FROM numbers").scalar() == 6

    def test_copy_with_delimiter_and_header(self, db, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("i;s\n1;a\n2;b\n")
        db.execute("CREATE TABLE t (i INTEGER, s STRING)")
        result = db.execute(f"COPY INTO t FROM '{path}' DELIMITERS ';' HEADER")
        assert result.affected_rows == 2

    def test_copy_missing_file_raises(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        with pytest.raises(ExecutionError):
            db.execute("COPY INTO t FROM '/nonexistent/file.csv'")


class TestFunctionsDDL:
    CREATE = ("CREATE FUNCTION plus_one(x INTEGER) RETURNS INTEGER "
              "LANGUAGE PYTHON { return x + 1 }")

    def test_create_and_call(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute(self.CREATE)
        assert db.has_function("plus_one")
        assert db.execute("SELECT plus_one(i) FROM t").fetchall() == [(2,), (3,)]

    def test_duplicate_create_requires_or_replace(self, db):
        db.execute(self.CREATE)
        with pytest.raises(CatalogError):
            db.execute(self.CREATE)
        db.execute(self.CREATE.replace("CREATE FUNCTION", "CREATE OR REPLACE FUNCTION"))

    def test_drop_function(self, db):
        db.execute(self.CREATE)
        db.execute("DROP FUNCTION plus_one")
        assert not db.has_function("plus_one")
        with pytest.raises(CatalogError):
            db.execute("DROP FUNCTION plus_one")
        db.execute("DROP FUNCTION IF EXISTS plus_one")

    def test_replace_changes_behaviour(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute(self.CREATE)
        assert db.execute("SELECT plus_one(i) FROM t").scalar() == 2
        db.execute("CREATE OR REPLACE FUNCTION plus_one(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x + 100 }")
        assert db.execute("SELECT plus_one(i) FROM t").scalar() == 101


class TestExecuteScriptAndParameters:
    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (i INTEGER); INSERT INTO t VALUES (1), (2); SELECT SUM(i) FROM t;")
        assert len(results) == 3
        assert results[-1].scalar() == 3

    def test_parameter_substitution(self, db):
        db.execute("CREATE TABLE t (i INTEGER, s STRING)")
        db.execute("INSERT INTO t VALUES (%d, %s)", (7, "it's"))
        assert db.execute("SELECT i, s FROM t").fetchall() == [(7, "it's")]

    def test_statement_counter_and_log(self, db):
        db.execute("CREATE TABLE t (i INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.statements_executed == 2
        assert len(db.query_log) == 2
        db.reset_counters()
        assert db.statements_executed == 0
