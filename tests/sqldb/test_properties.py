"""Property-based tests (hypothesis) for the SQL engine's core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb.aggregates import call_aggregate
from repro.sqldb.catalog import make_signature
from repro.sqldb.database import Database
from repro.sqldb.parser import parse_statement
from repro.sqldb.render import render_select
from repro.sqldb.storage import column_to_numpy
from repro.sqldb.types import SQLType, coerce_value, infer_sql_type
from repro.sqldb.udf import build_udf_source, compile_udf

# keep hypothesis example counts modest: each example spins real engine machinery
_SETTINGS = settings(max_examples=50, deadline=None)

small_ints = st.integers(min_value=-10**6, max_value=10**6)
int_lists = st.lists(small_ints, min_size=1, max_size=50)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestCoercionProperties:
    @_SETTINGS
    @given(small_ints)
    def test_integer_coercion_is_identity(self, value):
        assert coerce_value(value, SQLType.INTEGER) == value

    @_SETTINGS
    @given(floats)
    def test_double_roundtrip(self, value):
        assert coerce_value(value, SQLType.DOUBLE) == pytest.approx(float(value))

    @_SETTINGS
    @given(st.text(max_size=50))
    def test_string_coercion_is_str(self, value):
        assert coerce_value(value, SQLType.STRING) == str(value)

    @_SETTINGS
    @given(st.one_of(st.none(), st.booleans(), small_ints, floats, st.text(max_size=20)))
    def test_inferred_type_can_hold_the_value(self, value):
        if value is None:
            return
        inferred = infer_sql_type(value)
        assert coerce_value(value, inferred) is not None


class TestAggregateProperties:
    @_SETTINGS
    @given(int_lists)
    def test_sum_matches_python(self, values):
        assert call_aggregate("SUM", values) == sum(values)

    @_SETTINGS
    @given(int_lists)
    def test_avg_matches_numpy(self, values):
        assert call_aggregate("AVG", values) == pytest.approx(float(np.mean(values)))

    @_SETTINGS
    @given(int_lists)
    def test_min_max_bound_all_values(self, values):
        low = call_aggregate("MIN", values)
        high = call_aggregate("MAX", values)
        assert all(low <= v <= high for v in values)

    @_SETTINGS
    @given(int_lists, st.lists(st.none(), max_size=10))
    def test_count_ignores_nulls(self, values, nulls):
        mixed = list(values) + list(nulls)
        assert call_aggregate("COUNT", mixed) == len(values)

    @_SETTINGS
    @given(int_lists)
    def test_median_is_between_min_and_max(self, values):
        median = call_aggregate("MEDIAN", values)
        assert min(values) <= median <= max(values)


class TestColumnConversionProperties:
    @_SETTINGS
    @given(int_lists)
    def test_numpy_conversion_preserves_values(self, values):
        array = column_to_numpy(values, SQLType.INTEGER)
        assert array.tolist() == values

    @_SETTINGS
    @given(st.lists(st.one_of(small_ints, st.none()), min_size=1, max_size=30))
    def test_nullable_columns_keep_none(self, values):
        array = column_to_numpy(values, SQLType.INTEGER)
        assert list(array) == values


class TestEngineProperties:
    @_SETTINGS
    @given(int_lists)
    def test_sql_aggregates_match_python(self, values):
        db = Database()
        db.execute("CREATE TABLE t (i BIGINT)")
        for value in values:
            db.execute(f"INSERT INTO t VALUES ({value})")
        total, count = db.execute("SELECT SUM(i), COUNT(*) FROM t").fetchone()
        assert total == sum(values)
        assert count == len(values)

    @_SETTINGS
    @given(int_lists)
    def test_where_partitions_rows(self, values):
        db = Database()
        db.execute("CREATE TABLE t (i BIGINT)")
        for value in values:
            db.execute(f"INSERT INTO t VALUES ({value})")
        positive = db.execute("SELECT COUNT(*) FROM t WHERE i > 0").scalar()
        non_positive = db.execute("SELECT COUNT(*) FROM t WHERE NOT i > 0").scalar()
        assert positive + non_positive == len(values)

    @_SETTINGS
    @given(int_lists)
    def test_order_by_sorts(self, values):
        db = Database()
        db.execute("CREATE TABLE t (i BIGINT)")
        for value in values:
            db.execute(f"INSERT INTO t VALUES ({value})")
        ordered = [r[0] for r in db.execute("SELECT i FROM t ORDER BY i").rows()]
        assert ordered == sorted(values)

    @_SETTINGS
    @given(int_lists)
    def test_scalar_udf_matches_numpy_sum(self, values):
        db = Database()
        db.execute("CREATE TABLE t (i BIGINT)")
        for value in values:
            db.execute(f"INSERT INTO t VALUES ({value})")
        db.execute("CREATE FUNCTION py_total(x BIGINT) RETURNS DOUBLE "
                   "LANGUAGE PYTHON { return float(numpy.sum(x)) }")
        assert db.execute("SELECT py_total(i) FROM t").scalar() == pytest.approx(
            float(sum(values)))


class TestRenderRoundTripProperties:
    """render(parse(q)) must parse again and mean the same thing."""

    _QUERIES = [
        "SELECT i FROM t WHERE i > {} ORDER BY i",
        "SELECT i + {} FROM t ORDER BY 1",
        "SELECT COUNT(*) FROM t WHERE i BETWEEN {} AND 1000",
        "SELECT s, SUM(i) FROM t GROUP BY s HAVING SUM(i) > {} ORDER BY s",
    ]

    @_SETTINGS
    @given(st.integers(min_value=-100, max_value=100),
           st.sampled_from(range(len(_QUERIES))))
    def test_render_preserves_semantics(self, constant, query_index):
        db = Database()
        db.execute("CREATE TABLE t (i BIGINT, s STRING)")
        for i in range(-5, 15):
            db.execute(f"INSERT INTO t VALUES ({i * 7}, '{chr(97 + i % 3)}')")
        sql = self._QUERIES[query_index].format(constant)
        original = db.execute(sql).fetchall()
        rendered = render_select(parse_statement(sql))
        assert db.execute(rendered).fetchall() == original


class TestUDFSourceProperties:
    @_SETTINGS
    @given(st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=5, unique=True))
    def test_generated_header_lists_parameters_in_order(self, param_names):
        signature = make_signature(
            "gen", [(name, SQLType.INTEGER) for name in param_names],
            return_type=SQLType.INTEGER, body="return 0")
        source = build_udf_source(signature)
        expected = ", ".join(param_names)
        assert source.startswith(f"def gen({expected}, _conn=None):")
        compile_udf(signature)  # must compile
