"""Tests for Python UDF execution: operator-at-a-time, table UDFs, loopback."""

import numpy as np
import pytest

from repro.errors import CatalogError, ExecutionError, UDFError
from repro.sqldb.catalog import make_signature
from repro.sqldb.database import Database
from repro.sqldb.types import SQLType
from repro.sqldb.udf import build_udf_source, compile_udf, convert_table_result


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE numbers (i INTEGER)")
    database.execute("INSERT INTO numbers VALUES (1), (2), (3), (4), (10)")
    return database


class TestScalarUDFs:
    def test_elementwise_udf(self, db):
        db.execute("CREATE FUNCTION double_it(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x * 2 }")
        result = db.execute("SELECT double_it(i) FROM numbers")
        assert [r[0] for r in result.rows()] == [2, 4, 6, 8, 20]

    def test_aggregating_udf_returns_one_row(self, db):
        """The paper's mean_deviation shape: column in, single DOUBLE out."""
        db.execute("CREATE FUNCTION col_mean(x INTEGER) RETURNS DOUBLE "
                   "LANGUAGE PYTHON { return float(numpy.mean(x)) }")
        result = db.execute("SELECT col_mean(i) FROM numbers")
        assert result.row_count == 1
        assert result.scalar() == 4.0

    def test_udf_receives_numpy_array(self, db):
        db.execute("CREATE FUNCTION type_name(x INTEGER) RETURNS STRING "
                   "LANGUAGE PYTHON { return type(x).__name__ }")
        assert db.execute("SELECT type_name(i) FROM numbers").scalar() == "ndarray"

    def test_operator_at_a_time_single_invocation(self, db):
        db.execute("CREATE FUNCTION identity_col(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x }")
        db.execute("SELECT identity_col(i) FROM numbers")
        assert db.udf_runtime.invocation_counts["identity_col"] == 1

    def test_udf_with_scalar_literal_argument(self, db):
        db.execute("CREATE FUNCTION add_n(x INTEGER, n INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x + n }")
        result = db.execute("SELECT add_n(i, 100) FROM numbers WHERE i <= 2")
        assert result.fetchall() == [(101,), (102,)]

    def test_udf_in_where_clause(self, db):
        db.execute("CREATE FUNCTION is_even(x INTEGER) RETURNS BOOLEAN "
                   "LANGUAGE PYTHON { return x % 2 == 0 }")
        result = db.execute("SELECT i FROM numbers WHERE is_even(i)")
        assert [r[0] for r in result.rows()] == [2, 4, 10]

    def test_udf_error_propagates_with_name(self, db):
        db.execute("CREATE FUNCTION broken(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { raise ValueError('kaput') }")
        with pytest.raises(UDFError, match="broken"):
            db.execute("SELECT broken(i) FROM numbers")

    def test_udf_body_syntax_error(self, db):
        db.execute("CREATE FUNCTION bad_syntax(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return ((( }")
        with pytest.raises(UDFError, match="compile"):
            db.execute("SELECT bad_syntax(i) FROM numbers")

    def test_unknown_function_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT no_such_function(i) FROM numbers")

    def test_wrong_arity_raises(self, db):
        db.execute("CREATE FUNCTION one_arg(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x }")
        with pytest.raises(ExecutionError):
            db.execute("SELECT one_arg(i, i) FROM numbers")


class TestTableUDFs:
    def test_table_udf_multiple_columns(self, db):
        db.execute(
            "CREATE FUNCTION stats(v INTEGER) RETURNS TABLE(lo INTEGER, hi INTEGER) "
            "LANGUAGE PYTHON { return {'lo': int(min(v)), 'hi': int(max(v))} }")
        result = db.execute("SELECT * FROM stats((SELECT i FROM numbers))")
        assert result.fetchall() == [(1, 10)]

    def test_table_udf_row_expansion(self, db):
        db.execute(
            "CREATE FUNCTION expand(n INTEGER) RETURNS TABLE(v INTEGER) "
            "LANGUAGE PYTHON {\n"
            "    if hasattr(n, '__len__'):\n"
            "        n = int(numpy.asarray(n).ravel()[0])\n"
            "    return {'v': numpy.arange(int(n))}\n}")
        result = db.execute("SELECT * FROM expand(4)")
        assert [r[0] for r in result.rows()] == [0, 1, 2, 3]

    def test_table_udf_scalar_broadcast(self, db):
        db.execute(
            "CREATE FUNCTION broadcast(v INTEGER) RETURNS TABLE(x INTEGER, tag STRING) "
            "LANGUAGE PYTHON { return {'x': v, 'tag': 'all'} }")
        result = db.execute("SELECT * FROM broadcast((SELECT i FROM numbers))")
        assert result.row_count == 5
        assert set(row[1] for row in result.rows()) == {"all"}

    def test_table_udf_used_in_further_query(self, db):
        db.execute(
            "CREATE FUNCTION expand2(n INTEGER) RETURNS TABLE(v INTEGER) "
            "LANGUAGE PYTHON {\n"
            "    if hasattr(n, '__len__'):\n"
            "        n = int(numpy.asarray(n).ravel()[0])\n"
            "    return {'v': numpy.arange(int(n))}\n}")
        result = db.execute("SELECT SUM(v) FROM expand2(5) WHERE v > 1")
        assert result.scalar() == 9

    def test_missing_return_column_raises(self, db):
        db.execute(
            "CREATE FUNCTION missing_col(v INTEGER) RETURNS TABLE(a INTEGER, b INTEGER) "
            "LANGUAGE PYTHON { return {'a': v} }")
        with pytest.raises(UDFError, match="missing"):
            db.execute("SELECT * FROM missing_col((SELECT i FROM numbers))")

    def test_table_udf_in_expression_position_rejected(self, db):
        db.execute(
            "CREATE FUNCTION table_fn(v INTEGER) RETURNS TABLE(a INTEGER) "
            "LANGUAGE PYTHON { return {'a': v} }")
        with pytest.raises(ExecutionError):
            db.execute("SELECT table_fn(i) FROM numbers")


class TestLoopback:
    def test_loopback_query(self, db):
        db.execute(
            "CREATE FUNCTION loop_sum(n INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n"
            "    res = _conn.execute('SELECT SUM(i) AS total FROM numbers')\n"
            "    return float(res['total'][0]) + n\n}")
        assert db.execute("SELECT loop_sum(5)").scalar() == 25.0

    def test_loopback_returns_numpy_arrays(self, db):
        db.execute(
            "CREATE FUNCTION loop_type(n INTEGER) RETURNS STRING LANGUAGE PYTHON {\n"
            "    res = _conn.execute('SELECT i FROM numbers')\n"
            "    return type(res['i']).__name__\n}")
        assert db.execute("SELECT loop_type(1)").scalar() == "ndarray"

    def test_nested_udf_via_loopback(self, db):
        db.execute("CREATE FUNCTION inner_double(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x * 2 }")
        db.execute(
            "CREATE FUNCTION outer_caller(n INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n"
            "    res = _conn.execute('SELECT inner_double(i) AS d FROM numbers')\n"
            "    return float(numpy.sum(res['d']))\n}")
        assert db.execute("SELECT outer_caller(0)").scalar() == 40.0


class TestCompileUDF:
    def test_build_udf_source_shape(self):
        signature = make_signature("f", [("a", SQLType.INTEGER), ("b", SQLType.DOUBLE)],
                                   return_type=SQLType.DOUBLE, body="return a + b")
        source = build_udf_source(signature)
        assert source.startswith("def f(a, b, _conn=None):")
        assert "    return a + b" in source

    def test_compile_and_call(self):
        signature = make_signature("add", [("a", SQLType.INTEGER), ("b", SQLType.INTEGER)],
                                   return_type=SQLType.INTEGER, body="return a + b")
        function = compile_udf(signature)
        assert function(2, 3) == 5

    def test_compiled_namespace_has_numpy(self):
        signature = make_signature("use_numpy", [("x", SQLType.DOUBLE)],
                                   return_type=SQLType.DOUBLE,
                                   body="return float(numpy.sum(x))")
        function = compile_udf(signature)
        assert function(np.array([1.0, 2.0])) == 3.0

    def test_empty_body_is_pass(self):
        signature = make_signature("noop", [], return_type=SQLType.INTEGER, body="")
        assert compile_udf(signature)() is None


class TestConvertTableResult:
    def test_dict_result(self):
        signature = make_signature(
            "t", [], returns_table=True,
            return_columns=[("a", SQLType.INTEGER), ("b", SQLType.STRING)])
        out = convert_table_result(signature, {"a": [1, 2], "b": ["x", "y"]})
        assert out == {"a": [1, 2], "b": ["x", "y"]}

    def test_single_column_list(self):
        signature = make_signature("t", [], returns_table=True,
                                   return_columns=[("v", SQLType.INTEGER)])
        assert convert_table_result(signature, [1, 2, 3]) == {"v": [1, 2, 3]}

    def test_case_insensitive_keys(self):
        signature = make_signature("t", [], returns_table=True,
                                   return_columns=[("Value", SQLType.INTEGER)])
        assert convert_table_result(signature, {"value": [1]}) == {"Value": [1]}

    def test_length_mismatch_raises(self):
        signature = make_signature(
            "t", [], returns_table=True,
            return_columns=[("a", SQLType.INTEGER), ("b", SQLType.INTEGER)])
        with pytest.raises(UDFError):
            convert_table_result(signature, {"a": [1, 2], "b": [1, 2, 3]})


class TestCatalogIntegration:
    def test_catalog_stores_body_only(self, db):
        db.execute("CREATE FUNCTION body_check(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x + 1 }")
        entry = db.catalog.get("body_check")
        assert "def " not in entry.signature.body
        assert "return x + 1" in entry.signature.body

    def test_sys_functions_wraps_body_in_braces(self, db):
        db.execute("CREATE FUNCTION wrapped(x INTEGER) RETURNS INTEGER "
                   "LANGUAGE PYTHON { return x }")
        func_text = db.execute(
            "SELECT func FROM sys.functions WHERE name = 'wrapped'").scalar()
        assert func_text.startswith("{")
        assert func_text.rstrip().endswith("};")

    def test_catalog_missing_function(self, db):
        with pytest.raises(CatalogError):
            db.catalog.get("missing")
