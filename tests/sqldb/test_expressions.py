"""Focused unit tests for the expression evaluator internals."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb.database import Database
from repro.sqldb.expressions import (
    Batch,
    BatchColumn,
    EvalResult,
    ExpressionEvaluator,
    default_output_name,
    expression_contains_aggregate,
)
from repro.sqldb.parser import Parser
from repro.sqldb.types import SQLType


def parse_expression(text: str):
    return Parser(text).parse_expression()


@pytest.fixture()
def batch() -> Batch:
    return Batch([
        BatchColumn("t", "i", SQLType.INTEGER, [1, 2, 3, 4]),
        BatchColumn("t", "x", SQLType.DOUBLE, [1.0, None, 3.0, 4.0]),
        BatchColumn("t", "s", SQLType.STRING, ["a", "b", "a", None]),
    ])


@pytest.fixture()
def evaluator(batch) -> ExpressionEvaluator:
    return ExpressionEvaluator(Database(), batch)


class TestBatch:
    def test_resolve_by_name_and_table(self, batch):
        assert batch.resolve("i").values == [1, 2, 3, 4]
        assert batch.resolve("i", "t").values == [1, 2, 3, 4]

    def test_resolve_unknown_column(self, batch):
        with pytest.raises(ExecutionError):
            batch.resolve("missing")

    def test_resolve_ambiguous_column(self):
        ambiguous = Batch([
            BatchColumn("a", "id", SQLType.INTEGER, [1]),
            BatchColumn("b", "id", SQLType.INTEGER, [2]),
        ])
        with pytest.raises(ExecutionError):
            ambiguous.resolve("id")
        assert ambiguous.resolve("id", "b").values == [2]

    def test_filter_and_take(self, batch):
        filtered = batch.filter([True, False, True, False])
        assert filtered.row_count == 2
        taken = batch.take([3, 0])
        assert taken.resolve("i").values == [4, 1]

    def test_columns_for_alias(self, batch):
        assert len(batch.columns_for("t")) == 3
        with pytest.raises(ExecutionError):
            batch.columns_for("other")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            Batch([
                BatchColumn(None, "a", SQLType.INTEGER, [1, 2]),
                BatchColumn(None, "b", SQLType.INTEGER, [1]),
            ])

    def test_empty_batch_has_one_row(self):
        assert Batch.empty().row_count == 1


class TestEvaluation:
    def test_literal_is_constant(self, evaluator):
        result = evaluator.evaluate(parse_expression("42"))
        assert result.values == [42]
        assert result.constant

    def test_column_ref(self, evaluator):
        result = evaluator.evaluate(parse_expression("i"))
        assert result.values == [1, 2, 3, 4]
        assert not result.constant

    def test_arithmetic_broadcast(self, evaluator):
        result = evaluator.evaluate(parse_expression("i * 10 + 1"))
        assert result.values == [11, 21, 31, 41]

    def test_null_propagation(self, evaluator):
        result = evaluator.evaluate(parse_expression("x + 1"))
        assert result.values[1] is None

    def test_comparison_and_logic(self, evaluator):
        result = evaluator.evaluate(parse_expression("i > 1 AND i < 4"))
        assert result.values == [False, True, True, False]

    def test_three_valued_logic_with_null(self, evaluator):
        result = evaluator.evaluate(parse_expression("x > 0 OR i > 100"))
        # row with NULL x: NULL OR False -> NULL
        assert result.values[1] is None

    def test_evaluate_mask_treats_null_as_false(self, evaluator):
        mask = evaluator.evaluate_mask(parse_expression("x > 0"))
        assert mask == [True, False, True, True]

    def test_string_concat(self, evaluator):
        result = evaluator.evaluate(parse_expression("s || '!'"))
        assert result.values[0] == "a!"
        assert result.values[3] is None

    def test_in_list_with_null_operand(self, evaluator):
        result = evaluator.evaluate(parse_expression("s IN ('a', 'z')"))
        assert result.values == [True, False, True, None]

    def test_case_expression(self, evaluator):
        result = evaluator.evaluate(parse_expression(
            "CASE WHEN i > 2 THEN 'big' WHEN i > 1 THEN 'mid' ELSE 'small' END"))
        assert result.values == ["small", "mid", "big", "big"]

    def test_between(self, evaluator):
        result = evaluator.evaluate(parse_expression("i BETWEEN 2 AND 3"))
        assert result.values == [False, True, True, False]

    def test_builtin_function(self, evaluator):
        result = evaluator.evaluate(parse_expression("ABS(1 - i)"))
        assert result.values == [0, 1, 2, 3]

    def test_coalesce_null_tolerant(self, evaluator):
        result = evaluator.evaluate(parse_expression("COALESCE(x, 0 - 1)"))
        assert result.values == [1.0, -1, 3.0, 4.0]

    def test_aggregate_rejected_outside_aggregate_context(self, evaluator):
        with pytest.raises(ExecutionError):
            evaluator.evaluate(parse_expression("SUM(i)"))

    def test_aggregate_allowed_in_aggregate_context(self, batch):
        agg_eval = ExpressionEvaluator(Database(), batch, allow_aggregates=True)
        assert agg_eval.evaluate(parse_expression("SUM(i)")).values == [10]

    def test_unknown_function(self, evaluator):
        with pytest.raises(ExecutionError):
            evaluator.evaluate(parse_expression("frobnicate(i)"))


class TestEvalResult:
    def test_broadcast(self):
        assert EvalResult([1], constant=True).broadcast(3) == [1, 1, 1]
        assert EvalResult([1, 2]).broadcast(2) == [1, 2]
        with pytest.raises(ExecutionError):
            EvalResult([1, 2]).broadcast(3)


class TestHelpers:
    def test_expression_contains_aggregate(self):
        assert expression_contains_aggregate(parse_expression("SUM(i) + 1"))
        assert expression_contains_aggregate(parse_expression("COUNT(*)"))
        assert not expression_contains_aggregate(parse_expression("i + 1"))
        assert expression_contains_aggregate(
            parse_expression("CASE WHEN MAX(i) > 1 THEN 1 ELSE 0 END"))

    def test_default_output_name(self):
        assert default_output_name(parse_expression("foo"), 0) == "foo"
        assert default_output_name(parse_expression("SUM(i)"), 0) == "sum"
        assert default_output_name(parse_expression("1 + 2"), 3) == "col3"
