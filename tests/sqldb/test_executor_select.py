"""Integration-level tests of SELECT execution against the embedded engine."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb.database import Database


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (i INTEGER, s STRING, x DOUBLE)")
    database.execute(
        "INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'a', 3.5), "
        "(4, 'c', NULL), (NULL, 'a', 0.5)")
    return database


class TestProjection:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM t")
        assert result.column_names == ["i", "s", "x"]
        assert result.row_count == 5

    def test_select_columns_and_aliases(self, db):
        result = db.execute("SELECT i AS number, s FROM t")
        assert result.column_names == ["number", "s"]

    def test_expression_projection(self, db):
        result = db.execute("SELECT i * 2 + 1 FROM t WHERE i = 3")
        assert result.fetchall() == [(7,)]

    def test_null_propagation_in_arithmetic(self, db):
        result = db.execute("SELECT i + 1 FROM t")
        assert result.columns[0].values[-1] is None

    def test_string_concatenation(self, db):
        result = db.execute("SELECT s || '!' FROM t WHERE i = 1")
        assert result.scalar() == "a!"

    def test_select_without_from(self, db):
        assert db.execute("SELECT 40 + 2").scalar() == 42

    def test_builtin_functions(self, db):
        result = db.execute("SELECT ABS(0 - i), UPPER(s) FROM t WHERE i = 2")
        assert result.fetchall() == [(2, "B")]

    def test_case_expression(self, db):
        result = db.execute(
            "SELECT CASE WHEN i > 2 THEN 'big' ELSE 'small' END FROM t WHERE i IS NOT NULL")
        assert [row[0] for row in result.rows()] == ["small", "small", "big", "big"]

    def test_cast(self, db):
        assert db.execute("SELECT CAST(i AS DOUBLE) FROM t WHERE i = 1").scalar() == 1.0

    def test_division_is_true_division(self, db):
        assert db.execute("SELECT 7 / 2").scalar() == 3.5

    def test_division_by_zero_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT 1 / 0")


class TestFiltering:
    def test_where_comparison(self, db):
        assert db.execute("SELECT i FROM t WHERE i > 2").fetchall() == [(3,), (4,)]

    def test_where_and_or(self, db):
        result = db.execute("SELECT i FROM t WHERE i > 1 AND s = 'a' OR i = 4")
        assert result.fetchall() == [(3,), (4,)]

    def test_where_in_list(self, db):
        assert db.execute("SELECT i FROM t WHERE i IN (1, 4)").fetchall() == [(1,), (4,)]

    def test_where_between(self, db):
        assert db.execute("SELECT i FROM t WHERE i BETWEEN 2 AND 3").fetchall() == [(2,), (3,)]

    def test_where_like(self, db):
        db.execute("INSERT INTO t VALUES (9, 'abc', 1.0)")
        assert db.execute("SELECT i FROM t WHERE s LIKE 'ab%'").fetchall() == [(9,)]

    def test_where_is_null(self, db):
        assert db.execute("SELECT s FROM t WHERE i IS NULL").fetchall() == [("a",)]
        assert db.execute("SELECT COUNT(*) FROM t WHERE x IS NOT NULL").scalar() == 4

    def test_null_comparisons_filtered_out(self, db):
        # NULL > 0 is unknown, so the NULL row must not appear
        assert (None,) not in db.execute("SELECT i FROM t WHERE i > 0").fetchall()


class TestAggregation:
    def test_simple_aggregates(self, db):
        result = db.execute("SELECT COUNT(*), COUNT(i), SUM(i), AVG(i), MIN(i), MAX(i) FROM t")
        assert result.fetchall() == [(5, 4, 10, 2.5, 1, 4)]

    def test_group_by(self, db):
        result = db.execute("SELECT s, COUNT(*) AS c FROM t GROUP BY s ORDER BY s")
        assert result.fetchall() == [("a", 3), ("b", 1), ("c", 1)]

    def test_group_by_with_having(self, db):
        result = db.execute(
            "SELECT s, COUNT(*) AS c FROM t GROUP BY s HAVING COUNT(*) > 1")
        assert result.fetchall() == [("a", 3)]

    def test_group_by_expression_output(self, db):
        result = db.execute("SELECT s, SUM(i) * 2 FROM t GROUP BY s ORDER BY s")
        assert result.fetchall()[0] == ("a", 8)

    def test_aggregate_over_empty_filter(self, db):
        result = db.execute("SELECT COUNT(*), SUM(i) FROM t WHERE i > 100")
        assert result.fetchall() == [(0, None)]

    def test_median_and_stddev(self, db):
        result = db.execute("SELECT MEDIAN(i), STDDEV(i) FROM t")
        median, stddev = result.fetchone()
        assert median == 2.5
        assert stddev == pytest.approx(1.2909944, rel=1e-6)

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT s) FROM t").scalar() == 3


class TestOrderingAndLimits:
    def test_order_by_asc_desc(self, db):
        asc = db.execute("SELECT i FROM t WHERE i IS NOT NULL ORDER BY i")
        desc = db.execute("SELECT i FROM t WHERE i IS NOT NULL ORDER BY i DESC")
        assert [r[0] for r in asc.rows()] == [1, 2, 3, 4]
        assert [r[0] for r in desc.rows()] == [4, 3, 2, 1]

    def test_order_by_alias(self, db):
        result = db.execute("SELECT i * -1 AS neg FROM t WHERE i IS NOT NULL ORDER BY neg")
        assert [r[0] for r in result.rows()] == [-4, -3, -2, -1]

    def test_order_by_positional(self, db):
        result = db.execute("SELECT s, i FROM t WHERE i IS NOT NULL ORDER BY 2 DESC")
        assert [r[1] for r in result.rows()] == [4, 3, 2, 1]

    def test_nulls_sort_last(self, db):
        result = db.execute("SELECT i FROM t ORDER BY i")
        assert result.columns[0].values[-1] is None

    def test_limit_offset(self, db):
        result = db.execute("SELECT i FROM t WHERE i IS NOT NULL ORDER BY i LIMIT 2 OFFSET 1")
        assert result.fetchall() == [(2,), (3,)]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT s FROM t ORDER BY s")
        assert result.fetchall() == [("a",), ("b",), ("c",)]


class TestJoins:
    @pytest.fixture()
    def join_db(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE left_t (id INTEGER, name STRING)")
        database.execute("CREATE TABLE right_t (id INTEGER, score DOUBLE)")
        database.execute("INSERT INTO left_t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        database.execute("INSERT INTO right_t VALUES (1, 10.0), (2, 20.0), (4, 40.0)")
        return database

    def test_inner_join(self, join_db):
        result = join_db.execute(
            "SELECT l.name, r.score FROM left_t l JOIN right_t r ON l.id = r.id ORDER BY l.id")
        assert result.fetchall() == [("one", 10.0), ("two", 20.0)]

    def test_left_join(self, join_db):
        result = join_db.execute(
            "SELECT l.name, r.score FROM left_t l LEFT JOIN right_t r ON l.id = r.id "
            "ORDER BY l.id")
        assert result.fetchall() == [("one", 10.0), ("two", 20.0), ("three", None)]

    def test_cross_join_row_count(self, join_db):
        result = join_db.execute("SELECT COUNT(*) FROM left_t, right_t")
        assert result.scalar() == 9

    def test_join_with_where(self, join_db):
        result = join_db.execute(
            "SELECT l.id FROM left_t l JOIN right_t r ON l.id = r.id WHERE r.score > 15")
        assert result.fetchall() == [(2,)]

    def test_ambiguous_column_raises(self, join_db):
        with pytest.raises(ExecutionError):
            join_db.execute("SELECT id FROM left_t l JOIN right_t r ON l.id = r.id")


class TestSubqueries:
    def test_subquery_in_from(self, db):
        result = db.execute(
            "SELECT doubled FROM (SELECT i * 2 AS doubled FROM t WHERE i IS NOT NULL) sub "
            "ORDER BY doubled")
        assert [r[0] for r in result.rows()] == [2, 4, 6, 8]

    def test_scalar_subquery(self, db):
        result = db.execute("SELECT i FROM t WHERE i = (SELECT MAX(i) FROM t)")
        assert result.fetchall() == [(4,)]

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT i FROM t WHERE i IN (SELECT i FROM t WHERE i > 2)")
        assert result.fetchall() == [(3,), (4,)]

    def test_exists_subquery(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM t WHERE EXISTS (SELECT 1 FROM t WHERE i = 4)")
        assert result.scalar() == 5


class TestMetaTables:
    def test_sys_tables(self, db):
        result = db.execute("SELECT name FROM sys.tables")
        assert ("t",) in result.fetchall()

    def test_sys_functions_empty_initially(self, db):
        assert db.execute("SELECT COUNT(*) FROM sys.functions").scalar() == 0

    def test_sys_functions_lists_created_udf(self, db):
        db.execute("CREATE FUNCTION f(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return x }")
        rows = db.execute(
            "SELECT name, func, language FROM sys.functions WHERE language = 6").fetchall()
        assert rows[0][0] == "f"
        assert rows[0][1].startswith("{")

    def test_sys_args_lists_parameters(self, db):
        db.execute("CREATEFUNCTION" if False else
                   "CREATE FUNCTION g(a INTEGER, b DOUBLE) RETURNS DOUBLE "
                   "LANGUAGE PYTHON { return b }")
        rows = db.execute(
            "SELECT name, type, inout FROM sys.args ORDER BY number").fetchall()
        names = [r[0] for r in rows if r[2] == 1]
        assert names == ["a", "b"]

    def test_unknown_table_raises(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT * FROM missing_table")
