"""Unit tests for the built-in scalar functions and aggregates."""

import math

import pytest

from repro.errors import ExecutionError
from repro.sqldb.aggregates import call_aggregate, is_aggregate
from repro.sqldb.functions import call_builtin_scalar, is_builtin_scalar


class TestScalarBuiltins:
    @pytest.mark.parametrize("name,args,expected", [
        ("ABS", [-3], 3),
        ("ROUND", [2.567, 1], 2.6),
        ("FLOOR", [2.7], 2),
        ("CEIL", [2.1], 3),
        ("SQRT", [16], 4.0),
        ("POWER", [2, 10], 1024),
        ("MOD", [10, 3], 1),
        ("SIGN", [-5], -1),
        ("SIGN", [0], 0),
        ("GREATEST", [1, 9, 4], 9),
        ("LEAST", [1, 9, 4], 1),
        ("LENGTH", ["hello"], 5),
        ("LOWER", ["MiXeD"], "mixed"),
        ("UPPER", ["MiXeD"], "MIXED"),
        ("TRIM", ["  x  "], "x"),
        ("SUBSTRING", ["abcdef", 2, 3], "bcd"),
        ("SUBSTRING", ["abcdef", 4], "def"),
        ("REPLACE", ["a-b-c", "-", "+"], "a+b+c"),
        ("CONCAT", ["a", 1, None, "b"], "a1b"),
        ("REVERSE", ["abc"], "cba"),
        ("STARTSWITH", ["devudf", "dev"], True),
        ("ENDSWITH", ["devudf", "udf"], True),
        ("CONTAINS", ["mean_deviation", "dev"], True),
    ])
    def test_builtin_values(self, name, args, expected):
        result = call_builtin_scalar(name, args)
        if isinstance(expected, float):
            assert result == pytest.approx(expected)
        else:
            assert result == expected

    def test_log_variants(self):
        assert call_builtin_scalar("LN", [math.e]) == pytest.approx(1.0)
        assert call_builtin_scalar("LOG10", [1000]) == pytest.approx(3.0)
        assert call_builtin_scalar("LOG", [8, 2]) == pytest.approx(3.0)

    def test_null_propagation(self):
        assert call_builtin_scalar("ABS", [None]) is None
        assert call_builtin_scalar("SUBSTRING", [None, 1, 2]) is None

    def test_null_tolerant_functions(self):
        assert call_builtin_scalar("COALESCE", [None, None, 7]) == 7
        assert call_builtin_scalar("COALESCE", [None, None]) is None
        assert call_builtin_scalar("IFNULL", [None, "default"]) == "default"
        assert call_builtin_scalar("IFNULL", ["value", "default"]) == "value"
        assert call_builtin_scalar("NULLIF", [3, 3]) is None
        assert call_builtin_scalar("NULLIF", [3, 4]) == 3
        assert call_builtin_scalar("ISNULL", [None]) is True

    def test_error_wrapped_as_execution_error(self):
        with pytest.raises(ExecutionError):
            call_builtin_scalar("SQRT", ["not a number"])
        with pytest.raises(ExecutionError):
            call_builtin_scalar("MOD", [1, 0])

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            call_builtin_scalar("FROBNICATE", [1])

    def test_is_builtin_scalar(self):
        assert is_builtin_scalar("abs")
        assert is_builtin_scalar("Coalesce")
        assert not is_builtin_scalar("sum")
        assert not is_builtin_scalar("mean_deviation")


class TestAggregates:
    def test_is_aggregate(self):
        assert is_aggregate("SUM") and is_aggregate("count") and is_aggregate("Median")
        assert not is_aggregate("ABS")

    def test_basic_aggregates(self):
        values = [4, 1, 3, 2]
        assert call_aggregate("SUM", values) == 10
        assert call_aggregate("AVG", values) == 2.5
        assert call_aggregate("MIN", values) == 1
        assert call_aggregate("MAX", values) == 4
        assert call_aggregate("COUNT", values) == 4
        assert call_aggregate("MEDIAN", values) == 2.5
        assert call_aggregate("MEDIAN", [1, 2, 3]) == 2

    def test_nulls_ignored(self):
        values = [1, None, 3, None]
        assert call_aggregate("SUM", values) == 4
        assert call_aggregate("COUNT", values) == 2
        assert call_aggregate("AVG", values) == 2.0

    def test_count_star_counts_nulls(self):
        assert call_aggregate("COUNT", [1, None, 3], is_star=True) == 3

    def test_empty_input(self):
        assert call_aggregate("SUM", []) is None
        assert call_aggregate("MIN", []) is None
        assert call_aggregate("COUNT", []) == 0
        assert call_aggregate("MEDIAN", []) is None

    def test_stddev_and_variance(self):
        values = [2, 4, 4, 4, 5, 5, 7, 9]
        assert call_aggregate("VAR_SAMP", values) == pytest.approx(4.571428, rel=1e-5)
        assert call_aggregate("STDDEV", values) == pytest.approx(2.13809, rel=1e-5)
        assert call_aggregate("STDDEV", [5]) is None

    def test_distinct(self):
        assert call_aggregate("SUM", [1, 1, 2, 2, 3], distinct=True) == 6
        assert call_aggregate("COUNT", [1, 1, 2], distinct=True) == 2

    def test_group_concat(self):
        assert call_aggregate("GROUP_CONCAT", ["a", None, "b"]) == "a,b"

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            call_aggregate("PRODUCT", [1, 2])
