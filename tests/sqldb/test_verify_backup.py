"""Online integrity: VERIFY scrub, corrupted-segment quarantine, BACKUP TO.

Corruption here is injected by byte surgery on closed files (the disk-fault
matrix in ``test_disk_faults.py`` covers live fault injection); these tests
pin the *detection and containment* contract:

* ``VERIFY`` finds every checksum violation and pins it to a table,
  row range, and file offset — without taking the database lock.
* ``salvage=True`` turns a fatal open into a quarantined one: every healthy
  table and segment loads; touching the damaged rows raises a structured
  :class:`CorruptionError`; TRUNCATE/DROP discard the quarantine.
* ``BACKUP TO`` writes a standalone image restorable with a plain
  ``Database(path=...)``.
"""

from pathlib import Path

import pytest

from repro.errors import CorruptionError, ExecutionError, PersistenceError
from repro.sqldb.database import Database
from repro.sqldb.persist import format as persist_format
from repro.sqldb.persist import verify_image, wal_path_for


def build_database(path: Path, *, rows: int = 50) -> None:
    """Two tables, multiple segments, then a clean close (checkpointed)."""
    database = Database(path=path, segment_rows=16)
    database.execute("CREATE TABLE good (i INTEGER, s STRING)")
    database.execute("CREATE TABLE bad (i INTEGER, s STRING)")
    for start in range(0, rows, 10):
        values = ", ".join(f"({i}, 'row-{i}')"
                           for i in range(start, min(start + 10, rows)))
        database.execute(f"INSERT INTO good VALUES {values}")
        database.execute(f"INSERT INTO bad VALUES {values}")
    database.close()


def corrupt_segment(path: Path, table: str, segment_index: int = 0) -> dict:
    """Flip one byte inside a chosen segment; returns the segment meta."""
    data = bytearray(path.read_bytes())
    footer = persist_format.read_footer(bytes(data), path)
    table_meta = next(t for t in footer["tables"] if t["schema"]["name"] == table)
    segment = table_meta["segments"][segment_index]
    data[segment["offset"] + 5] ^= 0xFF
    path.write_bytes(bytes(data))
    return segment


class TestVerify:
    def test_clean_database_verifies_ok(self, tmp_path):
        path = tmp_path / "clean.db"
        build_database(path)
        database = Database(path=path)
        result = database.execute("VERIFY")
        report = dict(zip(result.to_dict()["object"],
                          result.to_dict()["status"]))
        assert report == {"good": "ok", "bad": "ok", "(wal)": "ok"}
        assert database.persistence.last_verify.ok
        database.close()

    def test_fresh_database_without_image_verifies_ok(self, tmp_path):
        # the image file appears at the first checkpoint; before that the
        # store is new, not corrupt (--verify-on-start hits this state)
        path = tmp_path / "fresh.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")  # WAL only, no image
        assert not path.exists()
        report = database.verify()
        assert report.ok
        assert report.image.error is None
        database.persistence.close(checkpoint=False)

    def test_verify_pins_corruption_to_table_and_rows(self, tmp_path):
        path = tmp_path / "corrupt.db"
        build_database(path)
        segment = corrupt_segment(path, "bad", segment_index=1)
        report = verify_image(path)
        assert not report.ok
        assert len(report.faults) == 1
        fault = report.faults[0]
        assert fault.table == "bad"
        # segment_rows=16: segment #1 covers rows 16..32
        assert (fault.start_row, fault.stop_row) == (16, 32)
        assert fault.offset == segment["offset"]
        assert "checksum" in fault.reason

    def test_verify_statement_reports_corruption(self, tmp_path):
        path = tmp_path / "corrupt.db"
        build_database(path)
        corrupt_segment(path, "bad")
        database = Database(path=path, salvage=True)
        result = database.execute("VERIFY").to_dict()
        by_object = dict(zip(result["object"], result["status"]))
        assert by_object["bad"] == "corrupt"
        assert by_object["good"] == "ok"
        detail = dict(zip(result["object"], result["detail"]))["bad"]
        assert "checksum" in detail and "rows 0..16" in detail
        database.persistence.close(checkpoint=False)

    def test_verify_detects_damaged_footer(self, tmp_path):
        path = tmp_path / "tail.db"
        build_database(path)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # inside the fixed tail
        path.write_bytes(bytes(data))
        report = verify_image(path)
        assert not report.ok
        assert report.error is not None

    def test_verify_detects_wal_corruption(self, tmp_path):
        path = tmp_path / "walrot.db"
        database = Database(path=path)
        database.execute("CREATE TABLE t (i INTEGER)")
        database.execute("INSERT INTO t VALUES (1)")
        database.persistence.wal.flush()
        # flip a byte inside the first record's payload (header is 20 bytes:
        # 12 WAL header? no — header 20 = 8+2+2+8; record frame starts there)
        wal_bytes = bytearray(wal_path_for(path).read_bytes())
        wal_bytes[30] ^= 0xFF
        wal_path_for(path).write_bytes(bytes(wal_bytes))
        report = database.verify()
        assert report.wal_torn
        assert not report.ok
        database.persistence.close(checkpoint=False)

    def test_verify_requires_persistence(self):
        database = Database()
        with pytest.raises(ExecutionError, match="persistent"):
            database.execute("VERIFY")

    def test_verify_counters(self, tmp_path):
        path = tmp_path / "count.db"
        build_database(path)
        database = Database(path=path)
        assert database.persistence.verify_runs == 0
        database.execute("VERIFY")
        database.execute("VERIFY")
        assert database.persistence.verify_runs == 2
        assert database.persistence.corruption_detected == 0
        database.close()


class TestCorruptionErrors:
    def test_open_without_salvage_names_table_rows_offset(self, tmp_path):
        path = tmp_path / "named.db"
        build_database(path)
        segment = corrupt_segment(path, "bad", segment_index=2)
        with pytest.raises(CorruptionError) as info:
            Database(path=path)
        error = info.value
        assert error.table == "bad"
        assert error.row_range == (32, 48)
        assert error.offset == segment["offset"]
        # the satellite contract: the *message* names all three too
        assert "'bad'" in str(error)
        assert "rows 32..48" in str(error)
        assert str(segment["offset"]) in str(error)


class TestSalvage:
    def test_salvage_contains_damage_and_loads_the_rest(self, tmp_path):
        path = tmp_path / "salvage.db"
        build_database(path)
        corrupt_segment(path, "bad", segment_index=1)
        database = Database(path=path, salvage=True)
        report = database.persistence.last_recovery
        assert report.quarantined_segments == 1
        # every healthy table is fully usable
        assert database.execute("SELECT COUNT(*) FROM good").scalar() == 50
        # the damaged table refuses reads with the structured error
        with pytest.raises(CorruptionError) as info:
            database.execute("SELECT * FROM bad")
        assert info.value.table == "bad"
        assert info.value.row_range == (16, 32)
        with pytest.raises(CorruptionError):
            database.execute("DELETE FROM bad WHERE i = 1")
        with pytest.raises(CorruptionError):
            database.execute("UPDATE bad SET s = 'x' WHERE i = 1")
        # appends land after the damaged range: allowed
        database.execute("INSERT INTO bad VALUES (99, 'new')")
        database.persistence.close(checkpoint=False)

    def test_checkpoint_refused_while_quarantined(self, tmp_path):
        """A salvaged image must never be laundered into a 'healthy' one."""
        path = tmp_path / "launder.db"
        build_database(path)
        corrupt_segment(path, "bad")
        database = Database(path=path, salvage=True)
        with pytest.raises(CorruptionError, match="quarantined"):
            database.execute("CHECKPOINT")
        with pytest.raises(CorruptionError, match="quarantined"):
            database.backup(tmp_path / "out.db")
        # close() skips the closing checkpoint rather than laundering
        before = path.read_bytes()
        database.close()
        assert path.read_bytes() == before

    def test_truncate_discards_quarantine(self, tmp_path):
        path = tmp_path / "truncate.db"
        build_database(path)
        corrupt_segment(path, "bad")
        database = Database(path=path, salvage=True)
        database.execute("DELETE FROM bad")  # no WHERE: truncate
        # quarantine gone: reads work, checkpoint allowed again
        assert database.execute("SELECT COUNT(*) FROM bad").scalar() == 0
        database.execute("INSERT INTO bad VALUES (1, 'fresh')")
        database.execute("CHECKPOINT")
        database.close()
        reopened = Database(path=path)
        assert reopened.verify().ok
        assert reopened.execute("SELECT COUNT(*) FROM bad").scalar() == 1
        assert reopened.execute("SELECT COUNT(*) FROM good").scalar() == 50
        reopened.close()

    def test_drop_discards_quarantine(self, tmp_path):
        path = tmp_path / "drop.db"
        build_database(path)
        corrupt_segment(path, "bad")
        database = Database(path=path, salvage=True)
        database.execute("DROP TABLE bad")
        database.execute("CHECKPOINT")
        database.close()
        reopened = Database(path=path)
        assert reopened.verify().ok
        assert reopened.table_names() == ["good"]
        reopened.close()

    def test_wal_records_for_quarantined_table_are_skipped(self, tmp_path):
        """Replaying row-level records over NULL placeholders would corrupt
        row positions — salvage recovery must skip them, not crash."""
        path = tmp_path / "replay.db"
        database = Database(path=path, segment_rows=16)
        database.execute("CREATE TABLE bad (i INTEGER, s STRING)")
        database.execute("CREATE TABLE good (i INTEGER)")
        values = ", ".join(f"({i}, 'row-{i}')" for i in range(40))
        database.execute(f"INSERT INTO bad VALUES {values}")
        database.execute("CHECKPOINT")
        # post-checkpoint mutations live only in the WAL
        database.execute("INSERT INTO bad VALUES (100, 'wal-only')")
        database.execute("INSERT INTO good VALUES (7)")
        database.persistence.close(checkpoint=False)
        corrupt_segment(path, "bad")
        salvaged = Database(path=path, salvage=True)
        report = salvaged.persistence.last_recovery
        assert report.quarantined_segments == 1
        assert report.wal_records_skipped == 1   # the 'bad' insert
        assert report.wal_records_replayed == 1  # the 'good' insert
        assert salvaged.execute("SELECT COUNT(*) FROM good").scalar() == 1
        salvaged.persistence.close(checkpoint=False)


class TestBackup:
    def test_backup_and_restore(self, tmp_path):
        path = tmp_path / "live.db"
        build_database(path)
        database = Database(path=path)
        generation = database.persistence.generation
        target = tmp_path / "restore.db"
        result = database.execute(f"BACKUP TO '{target}'").to_dict()
        assert result["rows"] == [100]
        assert target.exists()
        # the live store is untouched: same generation, still writable
        assert database.persistence.generation == generation
        database.execute("INSERT INTO good VALUES (999, 'after-backup')")
        database.close()
        restored = Database(path=target)
        assert restored.execute("SELECT COUNT(*) FROM good").scalar() == 50
        assert restored.execute("SELECT COUNT(*) FROM bad").scalar() == 50
        assert restored.verify().ok
        # the backup is a first-class database: writable, checkpointable
        restored.execute("INSERT INTO good VALUES (1000, 'in-restore')")
        restored.close()

    def test_backup_refuses_live_path(self, tmp_path):
        path = tmp_path / "self.db"
        build_database(path)
        database = Database(path=path)
        with pytest.raises(PersistenceError, match="differ"):
            database.backup(path)
        database.close()

    def test_backup_requires_persistence(self, tmp_path):
        database = Database()
        with pytest.raises(ExecutionError, match="persistent"):
            database.execute(f"BACKUP TO '{tmp_path / 'nope.db'}'")

    def test_backup_counter_and_stats(self, tmp_path):
        path = tmp_path / "counted.db"
        build_database(path)
        database = Database(path=path)
        database.execute(f"BACKUP TO '{tmp_path / 'one.db'}'")
        database.execute(f"BACKUP TO '{tmp_path / 'two.db'}'")
        assert database.persistence.backups_taken == 2
        assert database.persistence.last_backup is not None
        database.close()


class TestShowStats:
    def test_show_stats_exposes_engine_and_persist_counters(self, tmp_path):
        path = tmp_path / "stats.db"
        build_database(path)
        database = Database(path=path)
        database.execute("VERIFY")
        result = database.execute("SHOW STATS").to_dict()
        stats = dict(zip(result["name"], result["value"]))
        assert stats["db.tables"] == 2
        assert stats["persist.verify_runs"] == 1
        assert stats["persist.corruption_detected"] == 0
        assert stats["persist.wal_sealed"] == 0
        assert stats["persist.backups_taken"] == 0
        database.close()

    def test_show_stats_counts_detected_corruption(self, tmp_path):
        path = tmp_path / "stats2.db"
        build_database(path)
        corrupt_segment(path, "bad")
        database = Database(path=path, salvage=True)
        database.execute("VERIFY")
        result = database.execute("SHOW STATS").to_dict()
        stats = dict(zip(result["name"], result["value"]))
        assert stats["persist.quarantined_tables"] == 1
        assert stats["persist.corruption_detected"] >= 1
        database.persistence.close(checkpoint=False)

    def test_show_stats_works_in_memory(self):
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER)")
        result = database.execute("SHOW STATS").to_dict()
        stats = dict(zip(result["name"], result["value"]))
        assert stats["db.tables"] == 1
        assert "persist.generation" not in stats
