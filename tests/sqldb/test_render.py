"""Tests for AST -> SQL rendering (used by the extract-query rewriter)."""

import pytest

from repro.sqldb.database import Database
from repro.sqldb.parser import parse_statement
from repro.sqldb.render import render_expression, render_select


def roundtrip(sql: str) -> str:
    """Parse, render, and re-parse to make sure the rendering is valid SQL."""
    statement = parse_statement(sql)
    rendered = render_select(statement)
    parse_statement(rendered)  # must not raise
    return rendered


class TestRenderSelect:
    @pytest.mark.parametrize("sql", [
        "SELECT i FROM numbers",
        "SELECT i AS value, s FROM t WHERE i > 2",
        "SELECT * FROM t",
        "SELECT COUNT(*), SUM(i) FROM t GROUP BY s HAVING COUNT(*) > 1",
        "SELECT i FROM t ORDER BY i DESC LIMIT 3 OFFSET 1",
        "SELECT DISTINCT s FROM t",
        "SELECT a.i FROM t a JOIN u b ON a.i = b.i",
        "SELECT a.i FROM t a LEFT JOIN u b ON a.i = b.i",
        "SELECT 1 FROM a, b",
        "SELECT x FROM (SELECT i AS x FROM t) sub",
        "SELECT * FROM loadNumbers('/data')",
        "SELECT * FROM train_rnforest((SELECT f0, f1 FROM trainingset), 5)",
        "SELECT CASE WHEN i > 0 THEN 'p' ELSE 'n' END FROM t",
        "SELECT CAST(i AS DOUBLE) FROM t",
        "SELECT i FROM t WHERE i IN (1, 2, 3) AND s LIKE 'a%' AND x IS NOT NULL",
        "SELECT i FROM t WHERE i BETWEEN 1 AND 5 OR NOT i = 3",
        "SELECT (SELECT MAX(i) FROM t) FROM u WHERE EXISTS (SELECT 1 FROM t)",
        "SELECT i FROM t WHERE i IN (SELECT i FROM u)",
        "SELECT mean_deviation(i) FROM numbers",
    ])
    def test_roundtrips_through_parser(self, sql):
        roundtrip(sql)

    def test_rendered_text_mentions_clauses(self):
        rendered = roundtrip(
            "SELECT i FROM t WHERE i > 1 GROUP BY i HAVING COUNT(*) > 0 "
            "ORDER BY i LIMIT 2")
        for clause in ("SELECT", "FROM", "WHERE", "GROUP BY", "HAVING", "ORDER BY", "LIMIT"):
            assert clause in rendered


class TestRenderedSemantics:
    """Rendering must preserve meaning, not just parse."""

    @pytest.fixture()
    def db(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE t (i INTEGER, s STRING)")
        database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a'), (4, NULL)")
        return database

    @pytest.mark.parametrize("sql", [
        "SELECT i FROM t WHERE i > 1 ORDER BY i",
        "SELECT s, COUNT(*) AS c FROM t GROUP BY s ORDER BY s",
        "SELECT i * 2 + 1 AS v FROM t ORDER BY v",
        "SELECT i FROM t WHERE s IS NULL OR s = 'a' ORDER BY i",
        "SELECT CASE WHEN i > 2 THEN 'hi' ELSE 'lo' END AS label, i FROM t ORDER BY i",
        "SELECT i FROM t WHERE i IN (1, 3) ORDER BY i",
    ])
    def test_same_result_after_rendering(self, db, sql):
        original = db.execute(sql).fetchall()
        rendered = render_select(parse_statement(sql))
        assert db.execute(rendered).fetchall() == original


class TestRenderExpressions:
    def test_string_literals_are_escaped(self):
        statement = parse_statement("SELECT 'it''s'")
        assert render_expression(statement.items[0].expression) == "'it''s'"

    def test_null_and_booleans(self):
        statement = parse_statement("SELECT NULL, TRUE, FALSE")
        rendered = [render_expression(item.expression) for item in statement.items]
        assert rendered == ["NULL", "TRUE", "FALSE"]
