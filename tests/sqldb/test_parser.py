"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_script, parse_statement
from repro.sqldb.types import SQLType


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT i FROM numbers")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 1
        assert isinstance(stmt.items[0].expression, ast.ColumnRef)
        assert isinstance(stmt.from_clause, ast.NamedTable)
        assert stmt.from_clause.name == "numbers"

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 2")
        assert stmt.from_clause is None

    def test_aliases(self):
        stmt = parse_statement("SELECT i AS value, i plain FROM numbers n")
        assert stmt.items[0].alias == "value"
        assert stmt.items[1].alias == "plain"
        assert stmt.from_clause.alias == "n"

    def test_where_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT i, COUNT(*) AS c FROM t WHERE i > 2 GROUP BY i "
            "HAVING COUNT(*) > 1 ORDER BY c DESC, i LIMIT 5 OFFSET 2"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert len(stmt.order_by) == 2
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT i FROM t").distinct is True

    def test_qualified_columns_and_schema_tables(self):
        stmt = parse_statement("SELECT f.name FROM sys.functions f")
        column = stmt.items[0].expression
        assert column.table == "f" and column.name == "name"
        assert stmt.from_clause.name == "sys.functions"
        assert stmt.from_clause.alias == "f"

    def test_join_parsing(self):
        stmt = parse_statement(
            "SELECT a.i FROM t a JOIN u b ON a.i = b.i LEFT JOIN v c ON a.i = c.i")
        outer = stmt.from_clause
        assert isinstance(outer, ast.Join)
        assert outer.join_type == "LEFT"
        inner = outer.left
        assert isinstance(inner, ast.Join)
        assert inner.join_type == "INNER"

    def test_comma_join_is_cross_join(self):
        stmt = parse_statement("SELECT 1 FROM a, b")
        assert isinstance(stmt.from_clause, ast.Join)
        assert stmt.from_clause.join_type == "CROSS"

    def test_subquery_in_from(self):
        stmt = parse_statement("SELECT x FROM (SELECT i AS x FROM t) sub")
        assert isinstance(stmt.from_clause, ast.SubquerySource)
        assert stmt.from_clause.alias == "sub"

    def test_table_function_in_from(self):
        stmt = parse_statement("SELECT * FROM loadNumbers('/data')")
        assert isinstance(stmt.from_clause, ast.TableFunctionCall)
        assert stmt.from_clause.name == "loadNumbers"
        assert isinstance(stmt.from_clause.args[0], ast.Literal)

    def test_table_function_with_subquery_argument(self):
        # the Listing 3 shape
        stmt = parse_statement(
            "SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 5)")
        call = stmt.from_clause
        assert isinstance(call, ast.TableFunctionCall)
        assert isinstance(call.args[0], ast.Select)
        assert isinstance(call.args[1], ast.Literal)
        assert call.args[1].value == 5


class TestExpressionParsing:
    def test_precedence(self):
        stmt = parse_statement("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expression
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_boolean_operators(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE a > 1 AND b < 2 OR NOT c = 3")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "OR"

    def test_in_between_like_isnull(self):
        stmt = parse_statement(
            "SELECT 1 FROM t WHERE a IN (1, 2) AND b BETWEEN 1 AND 5 "
            "AND c LIKE 'x%' AND d IS NOT NULL")
        text = repr(stmt.where)
        assert "InList" in text and "Between" in text and "Like" in text and "IsNull" in text

    def test_not_in(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE a NOT IN (1, 2)")
        node = stmt.where
        assert isinstance(node, ast.InList) and node.negated

    def test_case_expression(self):
        stmt = parse_statement(
            "SELECT CASE WHEN i > 0 THEN 'pos' WHEN i < 0 THEN 'neg' ELSE 'zero' END FROM t")
        case = stmt.items[0].expression
        assert isinstance(case, ast.CaseExpression)
        assert len(case.whens) == 2
        assert case.default is not None

    def test_cast(self):
        stmt = parse_statement("SELECT CAST(i AS DOUBLE) FROM t")
        cast = stmt.items[0].expression
        assert isinstance(cast, ast.Cast)
        assert cast.target_type is SQLType.DOUBLE

    def test_scalar_subquery_and_exists(self):
        stmt = parse_statement(
            "SELECT (SELECT MAX(i) FROM t) FROM u WHERE EXISTS (SELECT 1 FROM t)")
        assert isinstance(stmt.items[0].expression, ast.ScalarSubquery)
        assert isinstance(stmt.where, ast.ExistsSubquery)

    def test_in_subquery(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE i IN (SELECT i FROM u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_unary_minus_and_literals(self):
        stmt = parse_statement("SELECT -5, 2.5, 'text', NULL, TRUE, FALSE")
        values = stmt.items
        assert isinstance(values[0].expression, ast.UnaryOp)
        assert values[1].expression.value == 2.5
        assert values[2].expression.value == "text"
        assert values[3].expression.value is None
        assert values[4].expression.value is True
        assert values[5].expression.value is False

    def test_count_star(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expression
        assert isinstance(call, ast.FunctionCall)
        assert isinstance(call.args[0], ast.Star)

    def test_count_distinct(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT i) FROM t")
        assert stmt.items[0].expression.distinct is True


class TestDDLAndDML:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (i INTEGER NOT NULL, name VARCHAR, x DOUBLE)")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["i", "name", "x"]
        assert stmt.columns[0].col_type.nullable is False
        assert stmt.columns[1].sql_type is SQLType.STRING

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (i INT)")
        assert stmt.if_not_exists is True

    def test_create_table_as_select(self):
        stmt = parse_statement("CREATE TABLE copy AS SELECT i FROM t")
        assert stmt.as_select is not None

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable)
        assert stmt.if_exists is True

    def test_checkpoint(self):
        stmt = parse_statement("CHECKPOINT")
        assert isinstance(stmt, ast.Checkpoint)
        stmt = parse_statement("checkpoint;")
        assert isinstance(stmt, ast.Checkpoint)

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (i, s) VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.InsertValues)
        assert stmt.columns == ["i", "s"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT i FROM u")
        assert isinstance(stmt, ast.InsertSelect)

    def test_delete_and_update(self):
        delete = parse_statement("DELETE FROM t WHERE i > 3")
        assert isinstance(delete, ast.Delete) and delete.where is not None
        update = parse_statement("UPDATE t SET i = i + 1, s = 'x' WHERE i = 1")
        assert isinstance(update, ast.Update)
        assert len(update.assignments) == 2

    def test_copy_into(self):
        stmt = parse_statement("COPY INTO numbers FROM '/tmp/data.csv' DELIMITERS ';' HEADER")
        assert isinstance(stmt, ast.CopyInto)
        assert stmt.path == "/tmp/data.csv"
        assert stmt.delimiter == ";"
        assert stmt.header is True


class TestCreateFunction:
    MEAN_DEVIATION = (
        "CREATE FUNCTION mean_deviation(column INTEGER)\n"
        "RETURNS DOUBLE LANGUAGE PYTHON {\n"
        "    mean = 0\n"
        "    for i in range(0, len(column)):\n"
        "        mean += column[i]\n"
        "    return mean / len(column)\n"
        "};"
    )

    def test_scalar_function(self):
        stmt = parse_statement(self.MEAN_DEVIATION)
        assert isinstance(stmt, ast.CreateFunction)
        assert stmt.name == "mean_deviation"
        assert stmt.parameters[0].name == "column"
        assert stmt.parameters[0].sql_type is SQLType.INTEGER
        assert stmt.return_type is SQLType.DOUBLE
        assert stmt.returns_table is False
        assert "for i in range(0, len(column)):" in stmt.body

    def test_table_function(self):
        stmt = parse_statement(
            "CREATE FUNCTION loadNumbers(path STRING) RETURNS TABLE(i INTEGER) "
            "LANGUAGE PYTHON { return [1, 2, 3] };")
        assert stmt.returns_table is True
        assert stmt.return_columns[0].name == "i"

    def test_or_replace(self):
        stmt = parse_statement(
            "CREATE OR REPLACE FUNCTION f(x INT) RETURNS INT LANGUAGE PYTHON { return x };")
        assert stmt.or_replace is True

    def test_body_is_verbatim_python(self):
        sql = (
            "CREATE FUNCTION tricky(x INT) RETURNS INT LANGUAGE PYTHON {\n"
            "    d = {'a': 1}\n"
            "    s = 'a string with } brace'\n"
            "    # a comment with { brace\n"
            "    return d['a'] + x[0]\n"
            "};"
        )
        stmt = parse_statement(sql)
        assert "'a string with } brace'" in stmt.body
        assert "# a comment with { brace" in stmt.body

    def test_drop_function(self):
        stmt = parse_statement("DROP FUNCTION IF EXISTS mean_deviation")
        assert isinstance(stmt, ast.DropFunction)
        assert stmt.if_exists is True

    def test_multiple_parameters(self):
        stmt = parse_statement(
            "CREATE FUNCTION f(a INT, b DOUBLE, c STRING) RETURNS DOUBLE "
            "LANGUAGE PYTHON { return 1.0 };")
        assert [p.name for p in stmt.parameters] == ["a", "b", "c"]
        assert [p.number for p in stmt.parameters] == [0, 1, 2]


class TestScripts:
    def test_parse_script_multiple_statements(self):
        statements = parse_script(
            "CREATE TABLE t (i INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
        assert len(statements) == 3

    def test_parse_script_with_function_and_query(self):
        statements = parse_script(
            "CREATE FUNCTION f(x INT) RETURNS INT LANGUAGE PYTHON { return x };\n"
            "SELECT f(i) FROM t;")
        assert isinstance(statements[0], ast.CreateFunction)
        assert isinstance(statements[1], ast.Select)

    def test_empty_statements_skipped(self):
        assert len(parse_script(";;SELECT 1;;")) == 1


class TestParseErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT",
        "SELECT FROM t",
        "CREATE TABLE",
        "INSERT INTO t",
        "FROBNICATE x",
        "SELECT * FROM t WHERE",
        "CREATE FUNCTION f(x INT) RETURNS INT LANGUAGE PYTHON return x",
    ])
    def test_invalid_sql_raises(self, sql):
        with pytest.raises(ParseError):
            parse_statement(sql)
