"""EXPLAIN: the physical operator tree rendered without executing."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb.database import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (k INTEGER, v DOUBLE, name STRING)")
    table = database.storage.table("t")
    for i in range(100):
        table.insert_row([i % 3, i * 0.5, f"n_{i % 4}"])
    database.execute("CREATE TABLE r (k INTEGER, w DOUBLE)")
    database.execute("INSERT INTO r VALUES (1, 10.0)")
    return database


def plan_text(db, sql):
    result = db.execute(sql)
    assert result.statement_type == "EXPLAIN"
    assert result.column_names == ["plan"]
    return result["plan"]


def test_explain_scan_filter_project(db):
    lines = plan_text(db, "EXPLAIN SELECT v FROM t WHERE v > 1")
    assert lines[0].startswith("Project [v]")
    assert lines[1].strip().startswith("Filter [(v > 1)]")
    assert "Scan t [rows=100 morsels=1]" in lines[2]
    assert lines[-1].startswith("-- workers=1")


def test_explain_full_pipeline(db):
    lines = plan_text(
        db,
        "EXPLAIN SELECT t.k, SUM(v) FROM t JOIN r ON t.k = r.k "
        "WHERE v > 1 GROUP BY t.k ORDER BY t.k LIMIT 2")
    tree = "\n".join(lines)
    for operator in ("Limit [limit=2]", "Sort [t.k]", "HashAggregate",
                     "Filter", "HashJoin [INNER", "Scan t", "Scan r"):
        assert operator in tree, operator
    # the join's build side is indented under the join node
    join_depth = next(line for line in lines if "HashJoin" in line)
    scan_r = next(line for line in lines if "Scan r" in line)
    assert len(scan_r) - len(scan_r.lstrip()) \
        > len(join_depth) - len(join_depth.lstrip())


def test_explain_distinct(db):
    lines = plan_text(db, "EXPLAIN SELECT DISTINCT k FROM t")
    assert lines[0] == "Distinct"


def test_explain_reports_morsel_counts(db):
    parallel = Database(workers=4, morsel_rows=30, parallel_threshold=0)
    parallel.execute("CREATE TABLE t (k INTEGER)")
    table = parallel.storage.table("t")
    for i in range(100):
        table.insert_row([i])
    lines = plan_text(parallel, "EXPLAIN SELECT k FROM t")
    assert any("rows=100 morsels=4" in line for line in lines)
    assert lines[-1].startswith("-- workers=4 morsel_rows=30")
    parallel.close()


def test_explain_marks_udf_queries_not_parallel_safe(db):
    db.execute("CREATE FUNCTION f(x DOUBLE) RETURNS DOUBLE "
               "LANGUAGE PYTHON { return x }")
    lines = plan_text(db, "EXPLAIN SELECT f(v) FROM t")
    assert lines[-1].endswith("parallel_safe=no")
    lines = plan_text(db, "EXPLAIN SELECT v FROM t")
    assert lines[-1].endswith("parallel_safe=yes")


def test_explain_does_not_execute_the_query(db):
    """EXPLAIN of a UDF-calling query must not invoke the UDF."""
    db.execute("CREATE FUNCTION boom() RETURNS TABLE (x INTEGER) "
               "LANGUAGE PYTHON { raise RuntimeError('must not run') }")
    lines = plan_text(db, "EXPLAIN SELECT * FROM boom()")
    assert any("Scan boom()" in line for line in lines)


def test_explain_unknown_table_errors(db):
    with pytest.raises(Exception):
        db.execute("EXPLAIN SELECT * FROM nosuch")


def test_explain_requires_select(db):
    with pytest.raises(Exception):
        db.execute("EXPLAIN INSERT INTO t VALUES (1, 1.0, 'x')")


def test_explain_keyword_still_usable_as_identifier(db):
    db.execute("CREATE TABLE meta (explain INTEGER)")
    db.execute("INSERT INTO meta VALUES (7)")
    assert db.execute("SELECT explain FROM meta").scalar() == 7
