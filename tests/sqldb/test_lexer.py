"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sqldb.lexer import Lexer, TokenType


def token_values(sql: str) -> list[tuple[TokenType, str]]:
    return [(t.type, t.value) for t in Lexer(sql).tokens() if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_and_identifiers(self):
        tokens = token_values("SELECT foo FROM bar")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.IDENTIFIER, "foo"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.IDENTIFIER, "bar"),
        ]

    def test_keywords_case_insensitive(self):
        tokens = token_values("select From")
        assert all(t[0] is TokenType.KEYWORD for t in tokens)

    def test_numbers(self):
        tokens = token_values("1 2.5 1e3 3.5e-2")
        assert [t[1] for t in tokens] == ["1", "2.5", "1e3", "3.5e-2"]
        assert all(t[0] is TokenType.NUMBER for t in tokens)

    def test_strings(self):
        tokens = token_values("'hello' 'it''s'")
        assert tokens == [(TokenType.STRING, "hello"), (TokenType.STRING, "it's")]

    def test_operators(self):
        tokens = token_values("a <= b <> c || d")
        operators = [t[1] for t in tokens if t[0] is TokenType.OPERATOR]
        assert operators == ["<=", "<>", "||"]

    def test_punctuation(self):
        tokens = token_values("f(a, b);")
        punct = [t[1] for t in tokens if t[0] is TokenType.PUNCTUATION]
        assert punct == ["(", ",", ")", ";"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            Lexer("'oops").tokens()

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            Lexer("SELECT @foo").tokens()


class TestComments:
    def test_line_comment_skipped(self):
        tokens = token_values("SELECT 1 -- trailing comment\n")
        assert [t[1] for t in tokens] == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        tokens = token_values("SELECT /* inline */ 1")
        assert [t[1] for t in tokens] == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            Lexer("SELECT /* nope").tokens()


class TestBracedBlock:
    def test_simple_block(self):
        sql = "LANGUAGE PYTHON { return 1 };"
        lexer = Lexer(sql)
        position = sql.index("{")
        body, end = lexer.scan_braced_block(position)
        assert body.strip() == "return 1"
        assert sql[end - 1] == "}"

    def test_nested_braces(self):
        sql = "{ d = {'a': 1, 'b': {2: 3}}\n return d };"
        body, end = Lexer(sql).scan_braced_block(0)
        assert "{'a': 1" in body
        assert sql[end:] == ";"

    def test_braces_inside_strings_ignored(self):
        sql = "{ s = '}}}'\n return s }"
        body, _ = Lexer(sql).scan_braced_block(0)
        assert "'}}}'" in body

    def test_braces_inside_comments_ignored(self):
        sql = "{ x = 1  # closing } in a comment\n return x }"
        body, _ = Lexer(sql).scan_braced_block(0)
        assert "return x" in body

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            Lexer("{ return 1").scan_braced_block(0)

    def test_python_body_with_colons_and_quotes(self):
        body_text = (
            "\n    for i in range(0, 10):\n"
            "        print('value: {}'.format(i))\n"
            "    return i\n"
        )
        sql = "{" + body_text + "};"
        body, _ = Lexer(sql).scan_braced_block(0)
        assert body == body_text
