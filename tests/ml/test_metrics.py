"""Tests for the classification metrics and dataset helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.datasets import make_blobs, make_noisy_parity
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    correct_predictions,
    train_test_split,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0
        assert accuracy_score([1, 1, 1], [0, 0, 0]) == 0.0

    def test_partial(self):
        assert accuracy_score([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_correct_predictions_is_listing3_quantity(self):
        assert correct_predictions([1, 0, 1, 1], [1, 1, 1, 0]) == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
    def test_accuracy_consistent_with_correct_count(self, labels):
        predictions = list(reversed(labels))
        assert accuracy_score(labels, predictions) == pytest.approx(
            correct_predictions(labels, predictions) / len(labels))


class TestConfusionMatrix:
    def test_shape_and_totals(self):
        classes, matrix = confusion_matrix([0, 0, 1, 1, 2], [0, 1, 1, 1, 2])
        assert classes == [0, 1, 2]
        assert matrix.sum() == 5
        assert matrix[1, 1] == 2
        assert matrix[0, 1] == 1

    def test_diagonal_equals_correct_predictions(self):
        truth = [0, 1, 1, 0, 1]
        guess = [0, 1, 0, 0, 1]
        _, matrix = confusion_matrix(truth, guess)
        assert int(np.trace(matrix)) == correct_predictions(truth, guess)


class TestTrainTestSplit:
    def test_sizes(self):
        dataset = make_blobs(n_rows=100, seed=0)
        train_x, train_y, test_x, test_y = train_test_split(
            dataset.data, dataset.labels, test_fraction=0.25, seed=1)
        assert len(test_x) == 25
        assert len(train_x) == 75
        assert len(train_x) == len(train_y)

    def test_disjoint_and_complete(self):
        dataset = make_blobs(n_rows=40, seed=0)
        train_x, _, test_x, _ = train_test_split(dataset.data, dataset.labels, seed=2)
        assert len(train_x) + len(test_x) == 40

    def test_invalid_fraction(self):
        dataset = make_blobs(n_rows=10, seed=0)
        with pytest.raises(ValueError):
            train_test_split(dataset.data, dataset.labels, test_fraction=1.5)


class TestDatasets:
    def test_make_blobs_shape(self):
        dataset = make_blobs(n_rows=55, n_features=3, n_classes=4, seed=1)
        assert dataset.data.shape == (55, 3)
        assert set(np.unique(dataset.labels)) == {0, 1, 2, 3}
        assert dataset.n_rows == 55 and dataset.n_features == 3

    def test_make_blobs_deterministic(self):
        a = make_blobs(n_rows=30, seed=9)
        b = make_blobs(n_rows=30, seed=9)
        assert np.array_equal(a.data, b.data)

    def test_feature_columns(self):
        dataset = make_blobs(n_rows=20, n_features=2, seed=0)
        columns = dataset.feature_columns()
        assert set(columns) == {"f0", "f1", "label"}
        assert len(columns["f0"]) == 20

    def test_make_blobs_validates_rows(self):
        with pytest.raises(ValueError):
            make_blobs(n_rows=1, n_classes=3)

    def test_noisy_parity_labels_binary(self):
        dataset = make_noisy_parity(n_rows=100, seed=0)
        assert set(np.unique(dataset.labels)).issubset({0, 1})
