"""Tests for the random-forest classifier (the sklearn stand-in of Listing 1)."""

import pickle

import numpy as np
import pytest

from repro.ml.datasets import make_blobs, make_noisy_parity
from repro.ml.forest import RandomForestClassifier


class TestConstruction:
    def test_n_estimators_positional_like_the_paper(self):
        """Listing 1 constructs ``RandomForestClassifier(n)``."""
        forest = RandomForestClassifier(7)
        assert forest.n_estimators == 7

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)

    def test_max_features_resolution(self):
        assert RandomForestClassifier(1, max_features="sqrt")._resolve_max_features(9) == 3
        assert RandomForestClassifier(1, max_features=5)._resolve_max_features(3) == 3
        assert RandomForestClassifier(1, max_features=None)._resolve_max_features(4) is None
        with pytest.raises(ValueError):
            RandomForestClassifier(1, max_features="bogus")._resolve_max_features(4)


class TestFitPredict:
    def test_fits_all_estimators(self):
        dataset = make_blobs(n_rows=60, seed=1)
        forest = RandomForestClassifier(5, random_state=0).fit(dataset.data, dataset.labels)
        assert len(forest.estimators_) == 5

    def test_separable_data_high_accuracy(self):
        dataset = make_blobs(n_rows=120, separation=6.0, noise=0.8, seed=2)
        forest = RandomForestClassifier(10, random_state=0).fit(dataset.data, dataset.labels)
        assert forest.score(dataset.data, dataset.labels) >= 0.95

    def test_reproducible_with_random_state(self):
        dataset = make_noisy_parity(n_rows=150, seed=3)
        a = RandomForestClassifier(5, random_state=7).fit(dataset.data, dataset.labels)
        b = RandomForestClassifier(5, random_state=7).fit(dataset.data, dataset.labels)
        assert np.array_equal(a.predict(dataset.data), b.predict(dataset.data))

    def test_predict_proba_rows_sum_to_one(self):
        dataset = make_blobs(n_rows=60, seed=4)
        forest = RandomForestClassifier(9, random_state=1).fit(dataset.data, dataset.labels)
        proba = forest.predict_proba(dataset.data[:10])
        assert proba.shape == (10, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(3).predict([[1.0, 2.0]])

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(3).fit([], [])

    def test_more_trees_do_not_hurt_on_noisy_data(self):
        dataset = make_noisy_parity(n_rows=300, flip_fraction=0.1, seed=5)
        small = RandomForestClassifier(1, random_state=0, max_depth=4).fit(
            dataset.data, dataset.labels)
        big = RandomForestClassifier(15, random_state=0, max_depth=4).fit(
            dataset.data, dataset.labels)
        assert big.score(dataset.data, dataset.labels) >= \
            small.score(dataset.data, dataset.labels) - 0.05


class TestPickling:
    def test_pickle_roundtrip(self):
        """train_rnforest pickles the fitted forest into its result (Listing 1)."""
        dataset = make_blobs(n_rows=80, seed=6)
        forest = RandomForestClassifier(4, random_state=0).fit(dataset.data, dataset.labels)
        blob = pickle.dumps(forest)
        clone = pickle.loads(blob)
        assert np.array_equal(clone.predict(dataset.data), forest.predict(dataset.data))
        assert clone.n_estimators == 4
