"""Tests for the decision-tree classifier."""

import pickle

import numpy as np
import pytest

from repro.ml.datasets import make_blobs, make_noisy_parity
from repro.ml.tree import DecisionTreeClassifier, gini_impurity


class TestGini:
    def test_pure_set_is_zero(self):
        assert gini_impurity(np.array([1, 1, 1])) == 0.0

    def test_balanced_binary_is_half(self):
        assert gini_impurity(np.array([0, 1, 0, 1])) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert gini_impurity(np.array([])) == 0.0


class TestFitting:
    def test_separable_data_is_learned_perfectly(self):
        dataset = make_blobs(n_rows=100, separation=8.0, noise=0.5, seed=0)
        tree = DecisionTreeClassifier().fit(dataset.data, dataset.labels)
        assert tree.score(dataset.data, dataset.labels) == 1.0

    def test_xor_requires_depth(self):
        dataset = make_noisy_parity(n_rows=200, flip_fraction=0.0, seed=1)
        shallow = DecisionTreeClassifier(max_depth=1).fit(dataset.data, dataset.labels)
        deep = DecisionTreeClassifier(max_depth=6).fit(dataset.data, dataset.labels)
        assert deep.score(dataset.data, dataset.labels) > shallow.score(
            dataset.data, dataset.labels)

    def test_max_depth_respected(self):
        dataset = make_blobs(n_rows=150, seed=2)
        tree = DecisionTreeClassifier(max_depth=2).fit(dataset.data, dataset.labels)
        assert tree.depth() <= 2

    def test_min_samples_split(self):
        dataset = make_blobs(n_rows=60, seed=4)
        strict = DecisionTreeClassifier(min_samples_split=50).fit(
            dataset.data, dataset.labels)
        loose = DecisionTreeClassifier(min_samples_split=2).fit(
            dataset.data, dataset.labels)
        assert strict.node_count() <= loose.node_count()

    def test_single_feature_input(self):
        data = [[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]]
        labels = [0, 0, 0, 1, 1, 1]
        tree = DecisionTreeClassifier().fit(data, labels)
        assert tree.predict([[1.5], [11.5]]).tolist() == [0, 1]

    def test_1d_array_is_reshaped(self):
        tree = DecisionTreeClassifier().fit(np.array([0.0, 1.0, 10.0, 11.0]),
                                            np.array([0, 0, 1, 1]))
        assert tree.n_features_ == 1

    def test_errors_on_bad_input(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([], [])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1.0]], [0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_predict_wrong_feature_count(self):
        dataset = make_blobs(n_rows=40, seed=0)
        tree = DecisionTreeClassifier().fit(dataset.data, dataset.labels)
        with pytest.raises(ValueError):
            tree.predict([[1.0, 2.0, 3.0]])

    def test_string_labels(self):
        data = [[0.0], [1.0], [10.0], [11.0]]
        labels = ["low", "low", "high", "high"]
        tree = DecisionTreeClassifier().fit(data, labels)
        assert tree.predict([[0.5]])[0] == "low"
        assert set(tree.classes_) == {"low", "high"}


class TestPickling:
    def test_fitted_tree_round_trips_through_pickle(self):
        """The paper's UDFs pickle fitted models into the result table."""
        dataset = make_blobs(n_rows=80, seed=5)
        tree = DecisionTreeClassifier(random_state=0).fit(dataset.data, dataset.labels)
        clone = pickle.loads(pickle.dumps(tree))
        assert np.array_equal(clone.predict(dataset.data), tree.predict(dataset.data))
